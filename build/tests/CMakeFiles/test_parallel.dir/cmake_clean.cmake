file(REMOVE_RECURSE
  "CMakeFiles/test_parallel.dir/parallel/test_disk_model.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_disk_model.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_network.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_network.cpp.o.d"
  "CMakeFiles/test_parallel.dir/parallel/test_pgf_server.cpp.o"
  "CMakeFiles/test_parallel.dir/parallel/test_pgf_server.cpp.o.d"
  "CMakeFiles/test_parallel.dir/sim/test_des.cpp.o"
  "CMakeFiles/test_parallel.dir/sim/test_des.cpp.o.d"
  "test_parallel"
  "test_parallel.pdb"
  "test_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
