
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/test_disk_model.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_disk_model.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_disk_model.cpp.o.d"
  "/root/repo/tests/parallel/test_network.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_network.cpp.o.d"
  "/root/repo/tests/parallel/test_pgf_server.cpp" "tests/CMakeFiles/test_parallel.dir/parallel/test_pgf_server.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/parallel/test_pgf_server.cpp.o.d"
  "/root/repo/tests/sim/test_des.cpp" "tests/CMakeFiles/test_parallel.dir/sim/test_des.cpp.o" "gcc" "tests/CMakeFiles/test_parallel.dir/sim/test_des.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
