
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_kernighan_lin.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_kernighan_lin.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_kernighan_lin.cpp.o.d"
  "/root/repo/tests/graph/test_prim.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_prim.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_prim.cpp.o.d"
  "/root/repo/tests/graph/test_spanning_path.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_spanning_path.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_spanning_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
