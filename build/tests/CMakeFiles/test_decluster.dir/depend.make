# Empty dependencies file for test_decluster.
# This may be replaced when dependencies are built.
