
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decluster/test_conflict.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_conflict.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_conflict.cpp.o.d"
  "/root/repo/tests/decluster/test_index_based.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_index_based.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_index_based.cpp.o.d"
  "/root/repo/tests/decluster/test_minimax.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_minimax.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_minimax.cpp.o.d"
  "/root/repo/tests/decluster/test_online.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_online.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_online.cpp.o.d"
  "/root/repo/tests/decluster/test_properties.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_properties.cpp.o.d"
  "/root/repo/tests/decluster/test_registry.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_registry.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_registry.cpp.o.d"
  "/root/repo/tests/decluster/test_similarity.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_similarity.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_similarity.cpp.o.d"
  "/root/repo/tests/decluster/test_weights.cpp" "tests/CMakeFiles/test_decluster.dir/decluster/test_weights.cpp.o" "gcc" "tests/CMakeFiles/test_decluster.dir/decluster/test_weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
