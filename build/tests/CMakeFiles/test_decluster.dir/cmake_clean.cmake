file(REMOVE_RECURSE
  "CMakeFiles/test_decluster.dir/decluster/test_conflict.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_conflict.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_index_based.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_index_based.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_minimax.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_minimax.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_online.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_online.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_properties.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_properties.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_registry.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_registry.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_similarity.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_similarity.cpp.o.d"
  "CMakeFiles/test_decluster.dir/decluster/test_weights.cpp.o"
  "CMakeFiles/test_decluster.dir/decluster/test_weights.cpp.o.d"
  "test_decluster"
  "test_decluster.pdb"
  "test_decluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
