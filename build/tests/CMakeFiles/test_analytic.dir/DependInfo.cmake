
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic/test_dm_theory.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/test_dm_theory.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/test_dm_theory.cpp.o.d"
  "/root/repo/tests/analytic/test_fx_theory.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/test_fx_theory.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/test_fx_theory.cpp.o.d"
  "/root/repo/tests/analytic/test_optimal.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/test_optimal.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/test_optimal.cpp.o.d"
  "/root/repo/tests/analytic/test_partial_match_theory.cpp" "tests/CMakeFiles/test_analytic.dir/analytic/test_partial_match_theory.cpp.o" "gcc" "tests/CMakeFiles/test_analytic.dir/analytic/test_partial_match_theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
