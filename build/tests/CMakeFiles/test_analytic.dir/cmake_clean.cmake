file(REMOVE_RECURSE
  "CMakeFiles/test_analytic.dir/analytic/test_dm_theory.cpp.o"
  "CMakeFiles/test_analytic.dir/analytic/test_dm_theory.cpp.o.d"
  "CMakeFiles/test_analytic.dir/analytic/test_fx_theory.cpp.o"
  "CMakeFiles/test_analytic.dir/analytic/test_fx_theory.cpp.o.d"
  "CMakeFiles/test_analytic.dir/analytic/test_optimal.cpp.o"
  "CMakeFiles/test_analytic.dir/analytic/test_optimal.cpp.o.d"
  "CMakeFiles/test_analytic.dir/analytic/test_partial_match_theory.cpp.o"
  "CMakeFiles/test_analytic.dir/analytic/test_partial_match_theory.cpp.o.d"
  "test_analytic"
  "test_analytic.pdb"
  "test_analytic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
