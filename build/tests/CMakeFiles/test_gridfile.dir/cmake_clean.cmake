file(REMOVE_RECURSE
  "CMakeFiles/test_gridfile.dir/gridfile/test_cartesian_file.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_cartesian_file.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_directory.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_directory.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_fuzz.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_fuzz.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_grid_file.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_grid_file.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_partial_match.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_partial_match.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_scales.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_scales.cpp.o.d"
  "CMakeFiles/test_gridfile.dir/gridfile/test_structure.cpp.o"
  "CMakeFiles/test_gridfile.dir/gridfile/test_structure.cpp.o.d"
  "test_gridfile"
  "test_gridfile.pdb"
  "test_gridfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
