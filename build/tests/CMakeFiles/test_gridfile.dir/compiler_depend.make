# Empty compiler generated dependencies file for test_gridfile.
# This may be replaced when dependencies are built.
