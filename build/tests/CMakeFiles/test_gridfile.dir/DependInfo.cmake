
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gridfile/test_cartesian_file.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_cartesian_file.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_cartesian_file.cpp.o.d"
  "/root/repo/tests/gridfile/test_directory.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_directory.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_directory.cpp.o.d"
  "/root/repo/tests/gridfile/test_fuzz.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_fuzz.cpp.o.d"
  "/root/repo/tests/gridfile/test_grid_file.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_grid_file.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_grid_file.cpp.o.d"
  "/root/repo/tests/gridfile/test_partial_match.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_partial_match.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_partial_match.cpp.o.d"
  "/root/repo/tests/gridfile/test_scales.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_scales.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_scales.cpp.o.d"
  "/root/repo/tests/gridfile/test_structure.cpp" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_structure.cpp.o" "gcc" "tests/CMakeFiles/test_gridfile.dir/gridfile/test_structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
