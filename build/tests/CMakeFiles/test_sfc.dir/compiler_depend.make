# Empty compiler generated dependencies file for test_sfc.
# This may be replaced when dependencies are built.
