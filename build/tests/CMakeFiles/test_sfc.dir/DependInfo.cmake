
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sfc/test_curve.cpp" "tests/CMakeFiles/test_sfc.dir/sfc/test_curve.cpp.o" "gcc" "tests/CMakeFiles/test_sfc.dir/sfc/test_curve.cpp.o.d"
  "/root/repo/tests/sfc/test_gray.cpp" "tests/CMakeFiles/test_sfc.dir/sfc/test_gray.cpp.o" "gcc" "tests/CMakeFiles/test_sfc.dir/sfc/test_gray.cpp.o.d"
  "/root/repo/tests/sfc/test_hilbert.cpp" "tests/CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o" "gcc" "tests/CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o.d"
  "/root/repo/tests/sfc/test_zorder.cpp" "tests/CMakeFiles/test_sfc.dir/sfc/test_zorder.cpp.o" "gcc" "tests/CMakeFiles/test_sfc.dir/sfc/test_zorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
