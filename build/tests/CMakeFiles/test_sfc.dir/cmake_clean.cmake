file(REMOVE_RECURSE
  "CMakeFiles/test_sfc.dir/sfc/test_curve.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_curve.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_gray.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_gray.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_hilbert.cpp.o.d"
  "CMakeFiles/test_sfc.dir/sfc/test_zorder.cpp.o"
  "CMakeFiles/test_sfc.dir/sfc/test_zorder.cpp.o.d"
  "test_sfc"
  "test_sfc.pdb"
  "test_sfc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
