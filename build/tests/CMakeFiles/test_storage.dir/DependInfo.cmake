
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/test_buffer_pool.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_buffer_pool.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_buffer_pool.cpp.o.d"
  "/root/repo/tests/storage/test_gridfile_io.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_gridfile_io.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_gridfile_io.cpp.o.d"
  "/root/repo/tests/storage/test_page_file.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_page_file.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_page_file.cpp.o.d"
  "/root/repo/tests/storage/test_paged_grid_file.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_paged_grid_file.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_paged_grid_file.cpp.o.d"
  "/root/repo/tests/storage/test_partition.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_partition.cpp.o.d"
  "/root/repo/tests/storage/test_serializer.cpp" "tests/CMakeFiles/test_storage.dir/storage/test_serializer.cpp.o" "gcc" "tests/CMakeFiles/test_storage.dir/storage/test_serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
