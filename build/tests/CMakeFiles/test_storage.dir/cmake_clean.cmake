file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/test_buffer_pool.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_buffer_pool.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/test_gridfile_io.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_gridfile_io.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/test_page_file.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_page_file.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/test_paged_grid_file.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_paged_grid_file.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/test_partition.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_partition.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/test_serializer.cpp.o"
  "CMakeFiles/test_storage.dir/storage/test_serializer.cpp.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
