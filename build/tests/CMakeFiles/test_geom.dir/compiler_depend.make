# Empty compiler generated dependencies file for test_geom.
# This may be replaced when dependencies are built.
