# Empty dependencies file for test_disksim.
# This may be replaced when dependencies are built.
