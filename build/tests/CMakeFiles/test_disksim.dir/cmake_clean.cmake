file(REMOVE_RECURSE
  "CMakeFiles/test_disksim.dir/disksim/test_metrics.cpp.o"
  "CMakeFiles/test_disksim.dir/disksim/test_metrics.cpp.o.d"
  "CMakeFiles/test_disksim.dir/disksim/test_simulator.cpp.o"
  "CMakeFiles/test_disksim.dir/disksim/test_simulator.cpp.o.d"
  "test_disksim"
  "test_disksim.pdb"
  "test_disksim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
