
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_check.cpp" "tests/CMakeFiles/test_util.dir/util/test_check.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_check.cpp.o.d"
  "/root/repo/tests/util/test_cli.cpp" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o.d"
  "/root/repo/tests/util/test_points_io.cpp" "tests/CMakeFiles/test_util.dir/util/test_points_io.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_points_io.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pgf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
