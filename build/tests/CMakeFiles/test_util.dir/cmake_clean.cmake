file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_check.cpp.o"
  "CMakeFiles/test_util.dir/util/test_check.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_cli.cpp.o"
  "CMakeFiles/test_util.dir/util/test_cli.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_points_io.cpp.o"
  "CMakeFiles/test_util.dir/util/test_points_io.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/test_util.dir/util/test_thread_pool.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
