# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_sfc[1]_include.cmake")
include("/root/repo/build/tests/test_gridfile[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_decluster[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_disksim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_analytic[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
