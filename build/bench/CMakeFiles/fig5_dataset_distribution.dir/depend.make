# Empty dependencies file for fig5_dataset_distribution.
# This may be replaced when dependencies are built.
