file(REMOVE_RECURSE
  "CMakeFiles/fig7_query_size.dir/fig7_query_size.cpp.o"
  "CMakeFiles/fig7_query_size.dir/fig7_query_size.cpp.o.d"
  "fig7_query_size"
  "fig7_query_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_query_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
