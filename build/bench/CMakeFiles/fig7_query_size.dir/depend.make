# Empty dependencies file for fig7_query_size.
# This may be replaced when dependencies are built.
