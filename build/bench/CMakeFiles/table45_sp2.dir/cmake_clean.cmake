file(REMOVE_RECURSE
  "CMakeFiles/table45_sp2.dir/table45_sp2.cpp.o"
  "CMakeFiles/table45_sp2.dir/table45_sp2.cpp.o.d"
  "table45_sp2"
  "table45_sp2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table45_sp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
