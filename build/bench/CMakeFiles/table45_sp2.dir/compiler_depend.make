# Empty compiler generated dependencies file for table45_sp2.
# This may be replaced when dependencies are built.
