file(REMOVE_RECURSE
  "CMakeFiles/fig2_dataset_structure.dir/fig2_dataset_structure.cpp.o"
  "CMakeFiles/fig2_dataset_structure.dir/fig2_dataset_structure.cpp.o.d"
  "fig2_dataset_structure"
  "fig2_dataset_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dataset_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
