# Empty compiler generated dependencies file for fig2_dataset_structure.
# This may be replaced when dependencies are built.
