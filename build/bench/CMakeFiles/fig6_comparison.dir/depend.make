# Empty dependencies file for fig6_comparison.
# This may be replaced when dependencies are built.
