file(REMOVE_RECURSE
  "CMakeFiles/fig6_comparison.dir/fig6_comparison.cpp.o"
  "CMakeFiles/fig6_comparison.dir/fig6_comparison.cpp.o.d"
  "fig6_comparison"
  "fig6_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
