file(REMOVE_RECURSE
  "CMakeFiles/table23_closest_pairs.dir/table23_closest_pairs.cpp.o"
  "CMakeFiles/table23_closest_pairs.dir/table23_closest_pairs.cpp.o.d"
  "table23_closest_pairs"
  "table23_closest_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table23_closest_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
