# Empty dependencies file for table23_closest_pairs.
# This may be replaced when dependencies are built.
