# Empty compiler generated dependencies file for ext_concurrency.
# This may be replaced when dependencies are built.
