file(REMOVE_RECURSE
  "CMakeFiles/ext_concurrency.dir/ext_concurrency.cpp.o"
  "CMakeFiles/ext_concurrency.dir/ext_concurrency.cpp.o.d"
  "ext_concurrency"
  "ext_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
