file(REMOVE_RECURSE
  "libpgf_bench_common.a"
)
