# Empty dependencies file for pgf_bench_common.
# This may be replaced when dependencies are built.
