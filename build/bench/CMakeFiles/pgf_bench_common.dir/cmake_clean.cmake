file(REMOVE_RECURSE
  "CMakeFiles/pgf_bench_common.dir/common.cpp.o"
  "CMakeFiles/pgf_bench_common.dir/common.cpp.o.d"
  "libpgf_bench_common.a"
  "libpgf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
