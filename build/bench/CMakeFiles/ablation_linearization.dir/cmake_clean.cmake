file(REMOVE_RECURSE
  "CMakeFiles/ablation_linearization.dir/ablation_linearization.cpp.o"
  "CMakeFiles/ablation_linearization.dir/ablation_linearization.cpp.o.d"
  "ablation_linearization"
  "ablation_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
