file(REMOVE_RECURSE
  "CMakeFiles/ext_mhd_comparison.dir/ext_mhd_comparison.cpp.o"
  "CMakeFiles/ext_mhd_comparison.dir/ext_mhd_comparison.cpp.o.d"
  "ext_mhd_comparison"
  "ext_mhd_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mhd_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
