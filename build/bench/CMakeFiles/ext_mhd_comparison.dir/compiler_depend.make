# Empty compiler generated dependencies file for ext_mhd_comparison.
# This may be replaced when dependencies are built.
