# Empty dependencies file for ext_partial_match.
# This may be replaced when dependencies are built.
