file(REMOVE_RECURSE
  "CMakeFiles/ext_partial_match.dir/ext_partial_match.cpp.o"
  "CMakeFiles/ext_partial_match.dir/ext_partial_match.cpp.o.d"
  "ext_partial_match"
  "ext_partial_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partial_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
