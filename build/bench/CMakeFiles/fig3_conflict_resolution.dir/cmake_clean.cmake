file(REMOVE_RECURSE
  "CMakeFiles/fig3_conflict_resolution.dir/fig3_conflict_resolution.cpp.o"
  "CMakeFiles/fig3_conflict_resolution.dir/fig3_conflict_resolution.cpp.o.d"
  "fig3_conflict_resolution"
  "fig3_conflict_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_conflict_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
