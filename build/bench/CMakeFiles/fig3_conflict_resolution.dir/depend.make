# Empty dependencies file for fig3_conflict_resolution.
# This may be replaced when dependencies are built.
