file(REMOVE_RECURSE
  "CMakeFiles/ablation_minimax.dir/ablation_minimax.cpp.o"
  "CMakeFiles/ablation_minimax.dir/ablation_minimax.cpp.o.d"
  "ablation_minimax"
  "ablation_minimax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_minimax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
