# Empty dependencies file for ablation_minimax.
# This may be replaced when dependencies are built.
