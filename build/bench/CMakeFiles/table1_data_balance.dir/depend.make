# Empty dependencies file for table1_data_balance.
# This may be replaced when dependencies are built.
