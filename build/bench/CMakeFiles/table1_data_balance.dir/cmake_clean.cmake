file(REMOVE_RECURSE
  "CMakeFiles/table1_data_balance.dir/table1_data_balance.cpp.o"
  "CMakeFiles/table1_data_balance.dir/table1_data_balance.cpp.o.d"
  "table1_data_balance"
  "table1_data_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_data_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
