file(REMOVE_RECURSE
  "CMakeFiles/fig4_declustering.dir/fig4_declustering.cpp.o"
  "CMakeFiles/fig4_declustering.dir/fig4_declustering.cpp.o.d"
  "fig4_declustering"
  "fig4_declustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_declustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
