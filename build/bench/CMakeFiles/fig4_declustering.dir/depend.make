# Empty dependencies file for fig4_declustering.
# This may be replaced when dependencies are built.
