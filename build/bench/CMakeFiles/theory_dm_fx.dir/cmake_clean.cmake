file(REMOVE_RECURSE
  "CMakeFiles/theory_dm_fx.dir/theory_dm_fx.cpp.o"
  "CMakeFiles/theory_dm_fx.dir/theory_dm_fx.cpp.o.d"
  "theory_dm_fx"
  "theory_dm_fx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_dm_fx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
