# Empty dependencies file for theory_dm_fx.
# This may be replaced when dependencies are built.
