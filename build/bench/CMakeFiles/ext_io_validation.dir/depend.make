# Empty dependencies file for ext_io_validation.
# This may be replaced when dependencies are built.
