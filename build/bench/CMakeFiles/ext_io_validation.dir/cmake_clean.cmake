file(REMOVE_RECURSE
  "CMakeFiles/ext_io_validation.dir/ext_io_validation.cpp.o"
  "CMakeFiles/ext_io_validation.dir/ext_io_validation.cpp.o.d"
  "ext_io_validation"
  "ext_io_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_io_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
