# Empty dependencies file for ext_particle_tracing.
# This may be replaced when dependencies are built.
