file(REMOVE_RECURSE
  "CMakeFiles/ext_particle_tracing.dir/ext_particle_tracing.cpp.o"
  "CMakeFiles/ext_particle_tracing.dir/ext_particle_tracing.cpp.o.d"
  "ext_particle_tracing"
  "ext_particle_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_particle_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
