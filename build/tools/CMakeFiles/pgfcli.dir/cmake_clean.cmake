file(REMOVE_RECURSE
  "CMakeFiles/pgfcli.dir/pgfcli.cpp.o"
  "CMakeFiles/pgfcli.dir/pgfcli.cpp.o.d"
  "pgfcli"
  "pgfcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgfcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
