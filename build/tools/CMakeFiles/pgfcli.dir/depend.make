# Empty dependencies file for pgfcli.
# This may be replaced when dependencies are built.
