# Empty compiler generated dependencies file for pgfcli.
# This may be replaced when dependencies are built.
