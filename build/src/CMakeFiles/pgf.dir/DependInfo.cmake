
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/dm_theory.cpp" "src/CMakeFiles/pgf.dir/analytic/dm_theory.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/analytic/dm_theory.cpp.o.d"
  "/root/repo/src/analytic/fx_theory.cpp" "src/CMakeFiles/pgf.dir/analytic/fx_theory.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/analytic/fx_theory.cpp.o.d"
  "/root/repo/src/analytic/optimal.cpp" "src/CMakeFiles/pgf.dir/analytic/optimal.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/analytic/optimal.cpp.o.d"
  "/root/repo/src/core/declusterer.cpp" "src/CMakeFiles/pgf.dir/core/declusterer.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/core/declusterer.cpp.o.d"
  "/root/repo/src/decluster/conflict.cpp" "src/CMakeFiles/pgf.dir/decluster/conflict.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/conflict.cpp.o.d"
  "/root/repo/src/decluster/index_based.cpp" "src/CMakeFiles/pgf.dir/decluster/index_based.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/index_based.cpp.o.d"
  "/root/repo/src/decluster/minimax.cpp" "src/CMakeFiles/pgf.dir/decluster/minimax.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/minimax.cpp.o.d"
  "/root/repo/src/decluster/online.cpp" "src/CMakeFiles/pgf.dir/decluster/online.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/online.cpp.o.d"
  "/root/repo/src/decluster/registry.cpp" "src/CMakeFiles/pgf.dir/decluster/registry.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/registry.cpp.o.d"
  "/root/repo/src/decluster/similarity.cpp" "src/CMakeFiles/pgf.dir/decluster/similarity.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/decluster/similarity.cpp.o.d"
  "/root/repo/src/disksim/metrics.cpp" "src/CMakeFiles/pgf.dir/disksim/metrics.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/disksim/metrics.cpp.o.d"
  "/root/repo/src/disksim/simulator.cpp" "src/CMakeFiles/pgf.dir/disksim/simulator.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/disksim/simulator.cpp.o.d"
  "/root/repo/src/geom/proximity.cpp" "src/CMakeFiles/pgf.dir/geom/proximity.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/geom/proximity.cpp.o.d"
  "/root/repo/src/graph/kernighan_lin.cpp" "src/CMakeFiles/pgf.dir/graph/kernighan_lin.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/graph/kernighan_lin.cpp.o.d"
  "/root/repo/src/graph/prim.cpp" "src/CMakeFiles/pgf.dir/graph/prim.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/graph/prim.cpp.o.d"
  "/root/repo/src/graph/spanning_path.cpp" "src/CMakeFiles/pgf.dir/graph/spanning_path.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/graph/spanning_path.cpp.o.d"
  "/root/repo/src/gridfile/scales.cpp" "src/CMakeFiles/pgf.dir/gridfile/scales.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/gridfile/scales.cpp.o.d"
  "/root/repo/src/gridfile/structure.cpp" "src/CMakeFiles/pgf.dir/gridfile/structure.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/gridfile/structure.cpp.o.d"
  "/root/repo/src/parallel/disk_model.cpp" "src/CMakeFiles/pgf.dir/parallel/disk_model.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/parallel/disk_model.cpp.o.d"
  "/root/repo/src/parallel/network.cpp" "src/CMakeFiles/pgf.dir/parallel/network.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/parallel/network.cpp.o.d"
  "/root/repo/src/sfc/curve.cpp" "src/CMakeFiles/pgf.dir/sfc/curve.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/sfc/curve.cpp.o.d"
  "/root/repo/src/sfc/gray.cpp" "src/CMakeFiles/pgf.dir/sfc/gray.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/sfc/gray.cpp.o.d"
  "/root/repo/src/sfc/hilbert.cpp" "src/CMakeFiles/pgf.dir/sfc/hilbert.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/sfc/hilbert.cpp.o.d"
  "/root/repo/src/sfc/zorder.cpp" "src/CMakeFiles/pgf.dir/sfc/zorder.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/sfc/zorder.cpp.o.d"
  "/root/repo/src/storage/buffer_pool.cpp" "src/CMakeFiles/pgf.dir/storage/buffer_pool.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/storage/buffer_pool.cpp.o.d"
  "/root/repo/src/storage/page_file.cpp" "src/CMakeFiles/pgf.dir/storage/page_file.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/storage/page_file.cpp.o.d"
  "/root/repo/src/storage/partition.cpp" "src/CMakeFiles/pgf.dir/storage/partition.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/storage/partition.cpp.o.d"
  "/root/repo/src/storage/serializer.cpp" "src/CMakeFiles/pgf.dir/storage/serializer.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/storage/serializer.cpp.o.d"
  "/root/repo/src/util/check.cpp" "src/CMakeFiles/pgf.dir/util/check.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/check.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/pgf.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/points_io.cpp" "src/CMakeFiles/pgf.dir/util/points_io.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/points_io.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pgf.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/pgf.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/pgf.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/pgf.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/datasets.cpp" "src/CMakeFiles/pgf.dir/workload/datasets.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/workload/datasets.cpp.o.d"
  "/root/repo/src/workload/query_gen.cpp" "src/CMakeFiles/pgf.dir/workload/query_gen.cpp.o" "gcc" "src/CMakeFiles/pgf.dir/workload/query_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
