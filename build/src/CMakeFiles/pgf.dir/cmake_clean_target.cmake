file(REMOVE_RECURSE
  "libpgf.a"
)
