# Empty compiler generated dependencies file for pgf.
# This may be replaced when dependencies are built.
