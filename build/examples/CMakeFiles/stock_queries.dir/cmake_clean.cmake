file(REMOVE_RECURSE
  "CMakeFiles/stock_queries.dir/stock_queries.cpp.o"
  "CMakeFiles/stock_queries.dir/stock_queries.cpp.o.d"
  "stock_queries"
  "stock_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
