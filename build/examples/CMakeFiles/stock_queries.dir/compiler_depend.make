# Empty compiler generated dependencies file for stock_queries.
# This may be replaced when dependencies are built.
