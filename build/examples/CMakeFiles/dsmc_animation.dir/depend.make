# Empty dependencies file for dsmc_animation.
# This may be replaced when dependencies are built.
