file(REMOVE_RECURSE
  "CMakeFiles/dsmc_animation.dir/dsmc_animation.cpp.o"
  "CMakeFiles/dsmc_animation.dir/dsmc_animation.cpp.o.d"
  "dsmc_animation"
  "dsmc_animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsmc_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
