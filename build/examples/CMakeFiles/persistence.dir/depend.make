# Empty dependencies file for persistence.
# This may be replaced when dependencies are built.
