file(REMOVE_RECURSE
  "CMakeFiles/persistence.dir/persistence.cpp.o"
  "CMakeFiles/persistence.dir/persistence.cpp.o.d"
  "persistence"
  "persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
