// Theorems 1 & 2 — analytic scalability of DM and FX on Cartesian product
// files, validated against brute-force enumeration.
//
// Table A: Theorem 1 closed form vs exact DM response for l x l queries as
// M grows (the saturation at R = l for M > l is the paper's headline
// scalability argument). Any formula/brute-force disagreement is flagged.
// Table B: Theorem 2's FX regimes: exact optimality for M = 2^n <= 2^m = l,
// bounded saturation above, and the 3/4 scaling floor.
#include <iostream>

#include "common.hpp"

#include "pgf/analytic/dm_theory.hpp"
#include "pgf/analytic/fx_theory.hpp"
#include "pgf/analytic/optimal.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Theorems 1-2 — analytic study of DM and FX",
                 "closed forms vs brute-force enumeration on Cartesian "
                 "product files");

    TextTable t1({"l", "M", "theorem1", "exact", "optimal", "strictly opt",
                  "agree"});
    std::size_t disagreements = 0;
    for (std::uint32_t l : {4u, 8u, 10u, 16u, 20u}) {
        for (std::uint32_t m : {2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
            DmPrediction p = dm_theorem1(l, m);
            std::uint64_t exact = dm_response_exact(l, m);
            bool agree = p.response == exact;
            disagreements += agree ? 0 : 1;
            t1.add(l, m, p.response, exact, optimal_square_response(l, m),
                   p.strictly_optimal ? "yes" : "no", agree ? "yes" : "NO");
        }
    }
    emit(opt, t1, "theorem1_dm");
    std::cout << (disagreements == 0
                      ? "Theorem 1 closed form matches brute force on every "
                        "configuration.\n"
                      : "WARNING: closed form disagreed with brute force on " +
                            std::to_string(disagreements) +
                            " configurations (trust brute force).\n");

    TextTable t2({"l=2^m", "M=2^n", "regime", "bound lo", "bound hi",
                  "measured E[R]", "worst", "best", "within"});
    for (unsigned m = 2; m <= 5; ++m) {
        for (unsigned n = 1; n <= m + 3; ++n) {
            const std::uint32_t l = 1u << m;
            const std::uint32_t disks = 1u << n;
            FxBounds b = fx_theorem2(m, n);
            FxMeasurement meas =
                fx_response_measure(l, disks, std::max(4 * l, 64u));
            bool within = meas.expected >= b.lower - 1e-9 &&
                          meas.expected <= b.upper + 1e-9;
            t2.add(l, disks, b.exact ? "exact (i)" : "bounded (ii)",
                   format_double(b.lower), format_double(b.upper),
                   format_double(meas.expected), meas.worst, meas.best,
                   within ? "yes" : "NO");
        }
    }
    emit(opt, t2, "theorem2_fx");

    // Clause (iii): scaling floor when doubling disks beyond M = l.
    TextTable t3({"l", "M -> 2M", "E[R](M)", "E[R](2M)", "ratio",
                  ">= 0.75"});
    for (unsigned m = 2; m <= 4; ++m) {
        const std::uint32_t l = 1u << m;
        for (unsigned n = m + 1; n <= m + 3; ++n) {
            FxMeasurement a = fx_response_measure(l, 1u << n, 4 * l);
            FxMeasurement b = fx_response_measure(l, 1u << (n + 1), 4 * l);
            double ratio = b.expected / a.expected;
            t3.add(l, std::to_string(1u << n) + " -> " +
                           std::to_string(1u << (n + 1)),
                   format_double(a.expected), format_double(b.expected),
                   format_double(ratio), ratio >= 0.75 - 1e-9 ? "yes" : "NO");
        }
    }
    emit(opt, t3, "theorem2_fx_scaling_floor");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
