// Theorems 1 & 2 — analytic scalability of DM and FX on Cartesian product
// files, validated against brute-force enumeration.
//
// Table A: Theorem 1 closed form vs exact DM response for l x l queries as
// M grows (the saturation at R = l for M > l is the paper's headline
// scalability argument). Any formula/brute-force disagreement is flagged.
// Table B: Theorem 2's FX regimes: exact optimality for M = 2^n <= 2^m = l,
// bounded saturation above, and the 3/4 scaling floor.
#include <iostream>

#include "common.hpp"

#include "pgf/analytic/dm_theory.hpp"
#include "pgf/analytic/fx_theory.hpp"
#include "pgf/analytic/optimal.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "theory_dm_fx");
    print_banner(opt, "Theorems 1-2 — analytic study of DM and FX",
                 "closed forms vs brute-force enumeration on Cartesian "
                 "product files");

    struct DmConfig {
        std::uint32_t l = 0;
        std::uint32_t m = 0;
    };
    std::vector<DmConfig> dm_configs;
    for (std::uint32_t l : {4u, 8u, 10u, 16u, 20u}) {
        for (std::uint32_t m : {2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
            dm_configs.push_back({l, m});
        }
    }
    struct DmCell {
        DmPrediction prediction;
        std::uint64_t exact = 0;
        std::uint64_t optimal = 0;
    };
    auto dm_cells = harness.sweep(
        "theorem1_dm", dm_configs, [&](const DmConfig& c, const SweepTask&) {
            return DmCell{dm_theorem1(c.l, c.m), dm_response_exact(c.l, c.m),
                          optimal_square_response(c.l, c.m)};
        });

    TextTable t1({"l", "M", "theorem1", "exact", "optimal", "strictly opt",
                  "agree"});
    std::size_t disagreements = 0;
    for (std::size_t i = 0; i < dm_configs.size(); ++i) {
        const DmCell& cell = dm_cells[i];
        bool agree = cell.prediction.response == cell.exact;
        disagreements += agree ? 0 : 1;
        t1.add(dm_configs[i].l, dm_configs[i].m, cell.prediction.response,
               cell.exact, cell.optimal,
               cell.prediction.strictly_optimal ? "yes" : "no",
               agree ? "yes" : "NO");
    }
    emit(opt, t1, "theorem1_dm");
    std::cout << (disagreements == 0
                      ? "Theorem 1 closed form matches brute force on every "
                        "configuration.\n"
                      : "WARNING: closed form disagreed with brute force on " +
                            std::to_string(disagreements) +
                            " configurations (trust brute force).\n");

    struct FxConfig {
        unsigned m = 0;
        unsigned n = 0;
    };
    std::vector<FxConfig> fx_configs;
    for (unsigned m = 2; m <= 5; ++m) {
        for (unsigned n = 1; n <= m + 3; ++n) fx_configs.push_back({m, n});
    }
    struct FxCell {
        FxBounds bounds;
        FxMeasurement measurement;
    };
    auto fx_cells = harness.sweep(
        "theorem2_fx", fx_configs, [&](const FxConfig& c, const SweepTask&) {
            const std::uint32_t l = 1u << c.m;
            return FxCell{fx_theorem2(c.m, c.n),
                          fx_response_measure(l, 1u << c.n,
                                              std::max(4 * l, 64u))};
        });

    TextTable t2({"l=2^m", "M=2^n", "regime", "bound lo", "bound hi",
                  "measured E[R]", "worst", "best", "within"});
    for (std::size_t i = 0; i < fx_configs.size(); ++i) {
        const FxBounds& b = fx_cells[i].bounds;
        const FxMeasurement& meas = fx_cells[i].measurement;
        bool within = meas.expected >= b.lower - 1e-9 &&
                      meas.expected <= b.upper + 1e-9;
        t2.add(1u << fx_configs[i].m, 1u << fx_configs[i].n,
               b.exact ? "exact (i)" : "bounded (ii)",
               format_double(b.lower), format_double(b.upper),
               format_double(meas.expected), meas.worst, meas.best,
               within ? "yes" : "NO");
    }
    emit(opt, t2, "theorem2_fx");

    // Clause (iii): scaling floor when doubling disks beyond M = l.
    struct FloorConfig {
        unsigned m = 0;
        unsigned n = 0;
    };
    std::vector<FloorConfig> floor_configs;
    for (unsigned m = 2; m <= 4; ++m) {
        for (unsigned n = m + 1; n <= m + 3; ++n) {
            floor_configs.push_back({m, n});
        }
    }
    struct FloorCell {
        FxMeasurement at_m;
        FxMeasurement at_2m;
    };
    auto floor_cells = harness.sweep(
        "theorem2_fx_scaling_floor", floor_configs,
        [&](const FloorConfig& c, const SweepTask&) {
            const std::uint32_t l = 1u << c.m;
            return FloorCell{fx_response_measure(l, 1u << c.n, 4 * l),
                             fx_response_measure(l, 1u << (c.n + 1), 4 * l)};
        });

    TextTable t3({"l", "M -> 2M", "E[R](M)", "E[R](2M)", "ratio",
                  ">= 0.75"});
    for (std::size_t i = 0; i < floor_configs.size(); ++i) {
        const FxMeasurement& a = floor_cells[i].at_m;
        const FxMeasurement& b = floor_cells[i].at_2m;
        double ratio = b.expected / a.expected;
        t3.add(1u << floor_configs[i].m,
               std::to_string(1u << floor_configs[i].n) + " -> " +
                   std::to_string(1u << (floor_configs[i].n + 1)),
               format_double(a.expected), format_double(b.expected),
               format_double(ratio), ratio >= 0.75 - 1e-9 ? "yes" : "NO");
    }
    emit(opt, t3, "theorem2_fx_scaling_floor");
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
