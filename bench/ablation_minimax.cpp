// Ablations of the minimax algorithm's design choices (DESIGN.md §4):
//   1. edge weights: proximity index (paper) vs Euclidean-center similarity;
//   2. seeding: random (paper) vs farthest-first;
//   3. KL-style local-search refinement stacked on each algorithm's output
//      (the paper excludes KL for its unbounded pass count — this measures
//      what that exclusion costs).
#include <iostream>

#include "common.hpp"

#include "pgf/decluster/minimax.hpp"
#include "pgf/decluster/weights.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/graph/kernighan_lin.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Ablation — minimax design choices",
                 "hot.2d, r = 0.01; average response time and closest-pair "
                 "quality under variations of weights/seeding/refinement");
    auto inner_pool = make_inner_pool(opt);
    Rng rng(opt.seed);
    auto wb = cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                                  [](Rng& r) { return make_hotspot2d(r); });
    const Workbench<2>& bench = *wb;
    std::cout << bench.summary() << "\n";
    auto qb = bench.workload(0.01, opt.queries, opt.seed + 6000);

    // 1 + 2: weight kind x seeding.
    TextTable t1({"disks", "prox+random", "prox+farthest", "eucl+random",
                  "eucl+farthest", "optimal"});
    TextTable t1p({"disks", "prox+random", "prox+farthest", "eucl+random",
                   "eucl+farthest"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        std::vector<std::string> prow{std::to_string(m)};
        double optimal = 0.0;
        for (WeightKind w : {WeightKind::kProximityIndex,
                             WeightKind::kCenterSimilarity}) {
            for (MinimaxSeeding s : {MinimaxSeeding::kRandom,
                                     MinimaxSeeding::kFarthestFirst}) {
                MinimaxOptions mo;
                mo.seed = opt.seed + 29;
                mo.weight = w;
                mo.seeding = s;
                mo.pool = inner_pool.get();
                Assignment a = minimax_decluster(bench.gs, m, mo);
                WorkloadStats st = evaluate_workload(qb, a);
                row.push_back(format_double(st.avg_response));
                prow.push_back(std::to_string(closest_pairs_same_disk(
                    bench.gs, a, w, inner_pool.get())));
                optimal = st.optimal;
            }
        }
        row.push_back(format_double(optimal));
        t1.add_row(std::move(row));
        t1p.add_row(std::move(prow));
    }
    emit(opt, t1, "ablation_minimax_weights_seeding_response");
    emit(opt, t1p, "ablation_minimax_weights_seeding_closest_pairs");

    // 3: KL refinement on top of each algorithm.
    TextTable t2({"method", "response M=16", "after KL", "KL swaps",
                  "internal before", "internal after"});
    BucketWeights weights(bench.gs);
    for (Method method : {Method::kDiskModulo, Method::kHilbert, Method::kSsp,
                          Method::kMinimax}) {
        DeclusterOptions dopt;
        dopt.seed = opt.seed + 31;
        dopt.pool = inner_pool.get();
        Assignment a = decluster(bench.gs, method, 16, dopt);
        double before = evaluate_workload(qb, a).avg_response;
        KlResult kl =
            kl_refine(a.disk_of, a.num_disks, weights, 4, inner_pool.get());
        double after = evaluate_workload(qb, a).avg_response;
        t2.add(is_index_based(method) ? to_string(method) + "/D"
                                      : to_string(method),
               format_double(before), format_double(after), kl.swaps,
               format_double(kl.internal_before),
               format_double(kl.internal_after));
    }
    emit(opt, t2, "ablation_kl_refinement");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
