// Extension experiment — real concurrent query serving on the paged
// backend.
//
// Where ext_concurrency overlaps queries inside the discrete-event
// *simulation*, this bench drives the threaded pgf::QueryEngine against
// the actual disk-backed grid file: per-node worker teams read bucket
// pages through their node's own latched BufferPool, and the front end
// keeps a closed-loop window of queries in flight. The sweep is worker
// threads per node x admission concurrency x declustering method on the
// 4-d DSMC workload; the headline numbers are wall-clock queries/sec and
// p50/p95/p99 latency — the simulated result (good declusterings widen
// their lead as concurrency grows) replayed with real threads.
//
// Correctness anchor, asserted on every configuration: the engine's
// per-query record multisets must equal the serial PagedGridFile query
// path (any mismatch aborts the run with exit code 1).
//
// --bench-json <file> writes the machine-readable artifact (schema
// pgf-bench-serving-v1, understood by tools/bench_diff, which compares
// p99 latency). Note: on a single-core container every worker count
// timeshares one CPU, so qps cannot scale with workers there; the
// committed bench/results/BENCH_serving.json records the shape measured
// on the reference box.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

#include "pgf/parallel/query_engine.hpp"

namespace pgf::bench {
namespace {

/// Short method tag for config names in the JSON artifact.
std::string method_tag(Method m) {
    switch (m) {
        case Method::kDiskModulo: return "dm";
        case Method::kHilbert: return "hcam";
        case Method::kMinimax: return "minimax";
        default: return to_string(m);
    }
}

/// Records sorted by id — the order-insensitive form both paths must
/// agree on (record ids are unique per workbench build).
template <std::size_t D>
std::vector<GridRecord<D>> sorted_by_id(std::vector<GridRecord<D>> records) {
    std::sort(records.begin(), records.end(),
              [](const GridRecord<D>& a, const GridRecord<D>& b) {
                  return a.id < b.id;
              });
    return records;
}

template <std::size_t D>
bool same_records(const std::vector<GridRecord<D>>& a,
                  const std::vector<GridRecord<D>>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].id != b[i].id || a[i].point != b[i].point) return false;
    }
    return true;
}

struct ConfigResult {
    std::string name;
    std::string method;
    unsigned workers = 0;
    std::size_t concurrency = 0;
    ServingReport report;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t prefetch_issued = 0;
    std::uint64_t prefetch_hits = 0;
};

bool write_serving_json(const Options& opt, const std::string& path,
                        std::uint32_t nodes, std::size_t pool_pages,
                        const std::vector<ConfigResult>& results) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench-json] FAILED to write " << path << "\n";
        return false;
    }
    out << "{\n"
        << "  \"schema\": \"pgf-bench-serving-v1\",\n"
        << "  \"binary\": \"ext_serving\",\n"
        << "  \"queries\": " << opt.queries << ",\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"nodes\": " << nodes << ",\n"
        << "  \"pool_pages\": " << pool_pages << ",\n"
        << "  \"policy\": \"" << opt.policy << "\",\n"
        << "  \"prefetch\": " << (opt.prefetch ? "true" : "false") << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ConfigResult& r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"method\": \""
            << r.method << "\", \"workers\": " << r.workers
            << ", \"concurrency\": " << r.concurrency
            << ", \"qps\": " << r.report.qps
            << ", \"wall_s\": " << r.report.wall_s
            << ", \"mean_ms\": " << r.report.mean_ms
            << ", \"p50_ms\": " << r.report.p50_ms
            << ", \"p95_ms\": " << r.report.p95_ms
            << ", \"p99_ms\": " << r.report.p99_ms
            << ", \"max_ms\": " << r.report.max_ms
            << ", \"total_blocks\": " << r.report.total_blocks
            << ", \"records\": " << r.report.records_returned
            << ", \"pool_hits\": " << r.pool_hits
            << ", \"pool_misses\": " << r.pool_misses
            << ", \"prefetch_issued\": " << r.prefetch_issued
            << ", \"prefetch_hits\": " << r.prefetch_hits << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench-json] " << path << "\n";
    return true;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    // The engine serves the *disk* image: force the paged workbench
    // regardless of --backend (the in-memory file has no pages to read).
    Options paged_opt = opt;
    paged_opt.backend = "paged";

    constexpr std::uint32_t kNodes = 4;
    print_banner(opt, "Extension — threaded serving on the paged backend",
                 "4-d DSMC data, " + std::to_string(kNodes) +
                     "-node QueryEngine; queries/sec and p50/p99 latency "
                     "vs workers-per-node x concurrency x declustering");
    Rng rng(opt.seed);
    auto wb = cached_workbench<4>(paged_opt, "dsmc.4d/s=12/p=15000",
                                  12 * 15000, rng, [](Rng& r) {
                                      return make_dsmc4d(r, 12, 15000);
                                  });
    const Workbench<4>& bench = *wb;
    PGF_CHECK(bench.paged != nullptr, "serving bench needs the paged build");
    const PagedGridFile<4>& pgf4 = *bench.paged;
    std::cout << bench.summary() << "\n";
    if (opt.caching_tuned()) {
        // Printed only when --policy/--prefetch deviate from the default,
        // so unset runs stay byte-identical with earlier revisions.
        std::cout << "caching: policy=" << opt.policy << " prefetch="
                  << (opt.prefetch ? "on" : "off") << "\n";
    }

    Rng qrng(opt.seed + 14000);
    auto queries = square_queries(bench.dataset.domain, 0.01, opt.queries,
                                  qrng);

    // Serial reference (the correctness anchor): the single-threaded
    // PagedGridFile query path, sorted by record id. Method-independent,
    // so computed once for the whole sweep.
    std::vector<std::vector<GridRecord<4>>> reference;
    reference.reserve(queries.size());
    {
        QueryScratch scratch;
        std::vector<GridRecord<4>> out;
        for (const Rect<4>& q : queries) {
            pgf4.query_records(q, scratch, out);
            reference.push_back(sorted_by_id(out));
        }
    }

    const std::vector<Method> methods{Method::kDiskModulo, Method::kHilbert,
                                      Method::kMinimax};
    const std::vector<unsigned> worker_sweep{1, 2, 4, 8};
    const std::vector<std::size_t> concurrency_sweep{1, 4, 16};

    std::vector<QueryEngine<4>::Query> engine_queries(queries.begin(),
                                                      queries.end());
    std::vector<ConfigResult> results;
    bool all_verified = true;

    for (Method method : methods) {
        Assignment a =
            decluster(bench.gs, method, kNodes, {.seed = opt.seed + 53});
        TextTable table({"workers", "concurrency", "qps", "p50 ms", "p95 ms",
                         "p99 ms", "mean ms", "hit rate", "verified"});
        LatencyHistogram method_hist;  // all measured cells of this method
        for (unsigned workers : worker_sweep) {
            ServingConfig cfg;
            cfg.nodes = kNodes;
            cfg.workers_per_node = workers;
            cfg.pool_pages = opt.node_pool_pages;
            cfg.pool_config = opt.pool_config();
            cfg.prefetch = opt.prefetch;
            for (std::size_t conc : concurrency_sweep) {
                cfg.concurrency = conc;
                QueryEngine<4> engine(pgf4, a, cfg);
                // Warmup pass populates the node pools (and is itself the
                // verified pass); the second pass is the measured one,
                // mirroring the DES bench's warm-cache batches.
                auto warm = engine.run(engine_queries);
                bool verified = warm.results.size() == reference.size();
                for (std::size_t i = 0; verified && i < reference.size();
                     ++i) {
                    verified = same_records(
                        sorted_by_id(std::move(warm.results[i])),
                        reference[i]);
                }
                all_verified = all_verified && verified;
                auto out = engine.run(engine_queries);
                method_hist.record_all(out.latencies_ms);
                std::uint64_t hits = 0;
                std::uint64_t misses = 0;
                std::uint64_t issued = 0;
                std::uint64_t pf_hits = 0;
                for (const BufferPool::Stats& s : out.report.node_pools) {
                    hits += s.hits;
                    misses += s.misses;
                    issued += s.prefetch_issued;
                    pf_hits += s.prefetch_hits;
                }
                const double accesses = static_cast<double>(hits + misses);
                ConfigResult r;
                r.name = method_tag(method) + "/w=" +
                         std::to_string(workers) + "/c=" +
                         std::to_string(conc);
                r.method = method_tag(method);
                r.workers = workers;
                r.concurrency = conc;
                r.report = out.report;
                r.pool_hits = hits;
                r.pool_misses = misses;
                r.prefetch_issued = issued;
                r.prefetch_hits = pf_hits;
                results.push_back(r);
                table.add(workers, conc, format_double(out.report.qps),
                          format_double(out.report.p50_ms, 3),
                          format_double(out.report.p95_ms, 3),
                          format_double(out.report.p99_ms, 3),
                          format_double(out.report.mean_ms, 3),
                          format_double(accesses > 0.0
                                            ? static_cast<double>(hits) /
                                                  accesses
                                            : 0.0),
                          verified ? "yes" : "NO");
            }
        }
        emit(opt, table, "ext_serving_" + method_tag(method));
        std::cout << "  " << to_string(method) << " across all "
                  << method_hist.count() << " measured queries: p50 "
                  << format_double(method_hist.p50(), 3) << " ms, p95 "
                  << format_double(method_hist.p95(), 3) << " ms, p99 "
                  << format_double(method_hist.p99(), 3) << " ms, max "
                  << format_double(method_hist.max(), 3) << " ms\n";
    }

    if (!opt.bench_json.empty()) {
        write_serving_json(opt, opt.bench_json, kNodes, opt.node_pool_pages,
                           results);
    }
    if (!all_verified) {
        std::cerr << "ext_serving: engine results DIVERGED from the serial "
                     "query path\n";
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
