// Figure 4 — index-based declustering algorithms with the data-balance
// heuristic on uniform.2d, hot.2d and correl.2d, r = 0.05.
//
// Expected shape (paper Sec. 2.2.1): DM best at small M (near-optimal on
// uniform.2d); DM and FX saturate as M grows — DM flattens around six
// disks on uniform.2d — while HCAM keeps improving and wins at large M;
// FX saturates at a lower level than DM.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

const std::vector<Method> kMethods{Method::kDiskModulo, Method::kFieldwiseXor,
                                   Method::kHilbert};

struct Config {
    std::uint32_t disks = 0;
    Method method = Method::kDiskModulo;
};

struct Cell {
    double response = 0.0;
    double optimal = 0.0;
};

void panel(const Options& opt, SweepHarness& harness,
           const Workbench<2>& bench) {
    auto qb = harness.timed("workload_" + bench.dataset.name, [&] {
        return bench.workload(0.05, opt.queries, opt.seed + 2000,
                              harness.pool());
    });

    std::vector<Config> configs;
    for (std::uint32_t m : disk_sweep()) {
        for (Method method : kMethods) configs.push_back({m, method});
    }
    auto cells = harness.sweep(
        "fig4_" + bench.dataset.name, configs,
        [&](const Config& c, const SweepTask&) {
            DeclusterOptions dopt;  // data balance is the default heuristic
            dopt.seed = opt.seed + 11;
            dopt.pool = harness.inner_pool();
            Assignment a = decluster(bench.gs, c.method, c.disks, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            return Cell{s.avg_response, s.optimal};
        });

    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "optimal"});
    std::size_t idx = 0;
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (std::size_t k = 0; k < kMethods.size(); ++k, ++idx) {
            row.push_back(format_double(cells[idx].response));
            optimal = cells[idx].optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "fig4_" + bench.dataset.name);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "fig4_declustering");
    print_banner(opt, "Figure 4 — declustering algorithms with data balance",
                 "avg response time (buckets), 1000 square queries, r = 0.05; "
                 "DM wins small M, saturates; HCAM wins large M");
    Rng rng(opt.seed);
    struct PanelSpec {
        const char* name;
        Dataset<2> (*maker)(Rng&, std::size_t);
    };
    for (PanelSpec spec : {PanelSpec{"uniform.2d", &make_uniform2d},
                           PanelSpec{"hotspot.2d", &make_hotspot2d},
                           PanelSpec{"correl.2d", &make_correl2d}}) {
        auto wb = cached_workbench<2>(
            opt, spec.name, 10000, rng,
            [&spec](Rng& r) { return spec.maker(r, 10000); });
        std::cout << "\n" << wb->summary() << "\n";
        panel(opt, harness, *wb);
    }
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
