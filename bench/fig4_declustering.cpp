// Figure 4 — index-based declustering algorithms with the data-balance
// heuristic on uniform.2d, hot.2d and correl.2d, r = 0.05.
//
// Expected shape (paper Sec. 2.2.1): DM best at small M (near-optimal on
// uniform.2d); DM and FX saturate as M grows — DM flattens around six
// disks on uniform.2d — while HCAM keeps improving and wins at large M;
// FX saturates at a lower level than DM.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

void panel(const Options& opt, const Workbench<2>& bench) {
    auto qb = bench.workload(0.05, opt.queries, opt.seed + 2000);
    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                              Method::kHilbert}) {
            DeclusterOptions dopt;  // data balance is the default heuristic
            dopt.seed = opt.seed + 11;
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "fig4_" + bench.dataset.name);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 4 — declustering algorithms with data balance",
                 "avg response time (buckets), 1000 square queries, r = 0.05; "
                 "DM wins small M, saturates; HCAM wins large M");
    Rng rng(opt.seed);
    for (auto maker : {&make_uniform2d, &make_hotspot2d, &make_correl2d}) {
        Workbench<2> bench(maker(rng, 10000));
        std::cout << "\n" << bench.summary() << "\n";
        panel(opt, bench);
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
