// Latency accounting for the serving benchmarks: exact percentiles over
// recorded per-query latencies.
//
// "Histogram" in the serving sense — a mergeable accumulator the harness
// records every sample into and asks for p50/p95/p99 at the end. Samples
// are kept exactly (a serving sweep records at most a few hundred thousand
// doubles), so quantiles are exact order statistics with linear
// interpolation (pgf::quantile), not bin approximations: the numbers in
// BENCH_serving.json are reproducible to the bit for a fixed run.
//
// Part of bench/common.hpp's surface; unit-tested in
// tests/bench/test_latency.cpp (exact quantiles on known distributions,
// empty/single-sample edge cases).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "pgf/util/stats.hpp"

namespace pgf::bench {

class LatencyHistogram {
public:
    /// Records one latency sample (any unit; quantiles come back in it).
    void record(double value) { samples_.push_back(value); }

    /// Bulk-records a batch of samples (e.g. a run's latencies_ms).
    void record_all(const std::vector<double>& values) {
        samples_.insert(samples_.end(), values.begin(), values.end());
    }

    /// Merges another histogram's samples into this one.
    void merge(const LatencyHistogram& other) {
        record_all(other.samples_);
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /// Exact q-quantile (q in [0,1], linear interpolation between order
    /// statistics). 0.0 on an empty histogram — an empty serving run
    /// reports zeros rather than aborting the whole sweep.
    double quantile(double q) const {
        if (samples_.empty()) return 0.0;
        return pgf::quantile(samples_, q);
    }

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    double min() const {
        return samples_.empty()
                   ? 0.0
                   : *std::min_element(samples_.begin(), samples_.end());
    }
    double max() const {
        return samples_.empty()
                   ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
    }
    double mean() const {
        if (samples_.empty()) return 0.0;
        double sum = 0.0;
        for (double v : samples_) sum += v;
        return sum / static_cast<double>(samples_.size());
    }

private:
    std::vector<double> samples_;
};

}  // namespace pgf::bench
