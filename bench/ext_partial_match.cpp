// Extension experiment — partial match queries (the setting of the paper's
// Sec. 2 citations: Du & Sobolewski for DM, Kim & Pramanik for FX).
//
// Table A validates the classic optimality results on Cartesian product
// files: DM achieves ceil(extent/M) whenever exactly one attribute is
// unspecified, at every disk count; FX matches it on power-of-two
// configurations.
// Table B runs partial match workloads against a real (merged-bucket) grid
// file and compares all algorithms — showing that DM's celebrated partial
// match optimality survives the extension to grid files at small M but the
// proximity-based methods still win once queries leave the optimality class.
#include <iostream>

#include "common.hpp"

#include "pgf/analytic/dm_theory.hpp"
#include "pgf/gridfile/partial_match.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Extension — partial match queries",
                 "DM/FX optimality class on Cartesian files + grid-file "
                 "partial match workloads");

    // Table A: analytic optimality on Cartesian product files.
    TextTable ta({"free extent", "M", "optimal", "DM", "FX worst anchor",
                  "DM optimal", "FX optimal"});
    for (std::uint32_t extent : {8u, 12u, 16u, 21u, 32u}) {
        for (std::uint32_t m : {2u, 4u, 8u, 16u}) {
            std::uint64_t optimal = (extent + m - 1) / m;
            std::uint64_t dm = dm_partial_match_exact({extent}, m);
            std::uint64_t fx_worst = 0;
            for (std::uint32_t anchor = 0; anchor < 16; ++anchor) {
                fx_worst = std::max(
                    fx_worst, fx_partial_match_at(0, {anchor}, {extent}, m));
            }
            ta.add(extent, m, optimal, dm, fx_worst,
                   dm == optimal ? "yes" : "NO",
                   fx_worst == optimal ? "yes" : "no");
        }
    }
    emit(opt, ta, "ext_partial_match_analytic");

    // Table B: partial match on a real grid file (stock.3d: "all quotes of
    // stock X", "all stocks at price Y on day Z", ...).
    Rng rng(opt.seed);
    auto wb = cached_workbench<3>(opt, "stock.3d", 60000, rng, [](Rng& r) {
        return make_stock3d(r, 60000);
    });
    const Workbench<3>& bench = *wb;
    std::cout << "\n" << bench.summary() << "\n";
    Rng qrng(opt.seed + 8000);
    std::vector<std::vector<std::uint32_t>> qb;
    for (std::size_t q = 0; q < opt.queries; ++q) {
        PartialMatch<3> pm;
        // Rotate through the three single-attribute-specified templates.
        std::size_t axis = q % 3;
        pm.key[axis] = qrng.uniform(bench.dataset.domain.lo[axis],
                                    bench.dataset.domain.hi[axis]);
        qb.push_back(bench.gf.query_buckets(pm));
    }
    TextTable tb({"disks", "DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax",
                  "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                              Method::kHilbert, Method::kSsp,
                              Method::kMinimax}) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 41;
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        tb.add_row(std::move(row));
    }
    emit(opt, tb, "ext_partial_match_gridfile");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
