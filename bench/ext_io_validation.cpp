// Extension experiment — validating the response-time metric against real
// page I/O.
//
// The paper's simulator (Sec. 2.2) counts buckets fetched per disk and
// assumes raw disk I/O — no caching. This bench builds an actual
// disk-resident grid file (PagedGridFile), partitions its bucket pages over
// M per-disk LRU buffer pools, replays the query workload, and counts the
// *real* page misses per disk:
//   - with a 1-frame pool (no effective cache), the measured
//     max-misses-per-disk must equal the paper's metric exactly — the
//     simulator's accounting is faithful;
//   - with realistic pool sizes, caching absorbs part of the load, and the
//     gap quantifies how conservative the raw-I/O assumption is.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common.hpp"

#include "pgf/storage/paged_grid_file.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Extension — response metric vs actual page I/O",
                 "hot.2d in a PagedGridFile, M = 8 disks, r = 0.05; per-disk "
                 "LRU pools of varying size");
    Rng rng(opt.seed);
    auto ds = make_hotspot2d(rng);

    const std::string path = "/tmp/pgf_io_validation.db";
    PagedGridFile<2>::Config cfg;
    cfg.page_size = 4096;  // 169 records per 2-d page
    PagedGridFile<2> pf(path, ds.domain, cfg);
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
        pf.insert(ds.points[i], i);
    }
    pf.flush();
    std::cout << ds.name << ": " << pf.record_count() << " records, "
              << pf.bucket_count() << " buckets of "
              << pf.bucket_capacity() << " records (page "
              << cfg.page_size << " B)\n";

    const std::uint32_t disks = 8;
    GridStructure gs = pf.structure();
    Assignment assignment =
        decluster(gs, Method::kMinimax, disks, {.seed = opt.seed + 61});

    Rng qrng(opt.seed + 14000);
    auto queries = square_queries(ds.domain, 0.05, opt.queries, qrng);

    TextTable table({"pool frames/disk", "metric sum(max/disk)",
                     "measured sum(max misses/disk)", "total fetches",
                     "total misses", "hit rate %"});
    // frames = 0 encodes the paper's raw-I/O assumption: caches dropped
    // between queries, so every fetch is a physical read.
    for (std::size_t pool_frames : {0u, 1u, 8u, 64u, 1024u}) {
        const bool raw_io = pool_frames == 0;
        // One page file handle + one pool per simulated disk, so cache
        // state and statistics are per-disk, like the cluster model.
        std::vector<PageFile> files;
        std::vector<std::unique_ptr<BufferPool>> pools;
        files.reserve(disks);
        for (std::uint32_t d = 0; d < disks; ++d) {
            files.push_back(PageFile::open(path));
        }
        auto fresh_pools = [&]() {
            pools.clear();
            for (std::uint32_t d = 0; d < disks; ++d) {
                pools.push_back(std::make_unique<BufferPool>(
                    files[d], raw_io ? 1 : pool_frames));
            }
        };
        fresh_pools();
        std::uint64_t metric_sum = 0;
        std::uint64_t measured_sum = 0;
        std::uint64_t fetches = 0, misses = 0;
        std::uint64_t last_misses[64] = {};
        for (const auto& q : queries) {
            if (raw_io) {
                for (const auto& pool : pools) {
                    fetches += pool->hits() + pool->misses();
                    misses += pool->misses();
                }
                fresh_pools();
                std::fill(std::begin(last_misses), std::end(last_misses),
                          std::uint64_t{0});
            }
            auto buckets = pf.query_buckets(q);
            metric_sum += response_time(buckets, assignment);
            std::uint64_t per_disk[64] = {};
            for (auto b : buckets) {
                std::uint32_t d = assignment.disk_of[b];
                (void)pools[d]->fetch(pf.bucket_page(b));
                per_disk[d] = pools[d]->misses() - last_misses[d];
            }
            std::uint64_t worst = 0;
            for (std::uint32_t d = 0; d < disks; ++d) {
                worst = std::max(worst, per_disk[d]);
                last_misses[d] = pools[d]->misses();
            }
            measured_sum += worst;
        }
        for (const auto& pool : pools) {
            fetches += pool->hits() + pool->misses();
            misses += pool->misses();
        }
        table.add(raw_io ? "raw I/O" : std::to_string(pool_frames),
                  metric_sum, measured_sum, fetches, misses,
                  format_double(100.0 * static_cast<double>(fetches - misses) /
                                static_cast<double>(fetches)));
        if (raw_io) {
            std::cout << (metric_sum == measured_sum
                              ? "raw I/O: measured max-misses-per-disk equals "
                                "the Sec. 2.2 metric exactly.\n"
                              : "WARNING: raw I/O disagrees with the metric!\n");
        }
    }
    emit(opt, table, "ext_io_validation");
    std::remove(path.c_str());
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
