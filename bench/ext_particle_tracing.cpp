// Extension experiment — particle tracing (the access pattern named as
// future work in the paper's conclusion).
//
// A trace is a sequence of tiny, spatially correlated range queries that
// follows one particle through the snapshots. Per-query bucket counts are
// small, so the difference between declusterings is governed entirely by
// whether *neighboring* buckets share disks — the regime where the paper
// predicts the proximity-based methods to shine and where it already showed
// minimax's edge growing as queries shrink (Fig. 7).
//
// Also reproduces the conclusion's hardware configuration: the SP-2 with
// 112 disks (16 processors x 7 disks) serving the traced workload.
#include <iostream>

#include "common.hpp"

#include "pgf/parallel/pgf_server.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    const std::size_t snapshots = 16;
    print_banner(opt, "Extension — particle tracing on the 4-d DSMC data",
                 "100 traces x " + std::to_string(snapshots) +
                     " steps, box side 5%; response per declustering, plus "
                     "the 16x7-disk SP-2 configuration");
    Rng rng(opt.seed);
    auto wb = cached_workbench<4>(
        opt, "dsmc.4d/s=" + std::to_string(snapshots) + "/p=12000",
        snapshots * 12000, rng,
        [&](Rng& r) { return make_dsmc4d(r, snapshots, 12000); });
    const Workbench<4>& bench = *wb;
    std::cout << bench.summary() << "\n";

    // Per-trace queries, concatenated (the simulator treats them as one
    // sequential stream, like the paper's animation batch).
    Rng trng(opt.seed + 11000);
    std::vector<Rect<4>> queries;
    for (int trace = 0; trace < 100; ++trace) {
        auto tq = trace_queries(bench.dataset.domain, snapshots, 0.05, trng);
        queries.insert(queries.end(), tq.begin(), tq.end());
    }
    auto qb = collect_query_buckets(bench.gf, queries);

    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax",
                     "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                              Method::kHilbert, Method::kSsp,
                              Method::kMinimax}) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 47;
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "ext_particle_tracing_response");

    // The conclusion's full machine: 16 processors x 7 disks = 112 disks.
    TextTable sp2({"nodes x disks", "response blocks", "comm (s)",
                   "elapsed (s)", "cache hits"});
    for (auto [nodes, per_node] : {std::pair<std::uint32_t, std::uint32_t>{4, 1},
                                   {16, 1},
                                   {16, 7}}) {
        std::uint32_t disks = nodes * per_node;
        Assignment a = decluster(bench.gs, Method::kMinimax, disks,
                                 {.seed = opt.seed + 47});
        ClusterConfig cfg;
        cfg.nodes = nodes;
        cfg.disks_per_node = per_node;
        ParallelGridFileServer<4> server(bench.gf, a, cfg);
        BatchResult r = server.execute(queries);
        sp2.add(std::to_string(nodes) + " x " + std::to_string(per_node),
                r.response_blocks, format_double(r.comm_time_s),
                format_double(r.elapsed_s), r.cache_hits);
    }
    emit(opt, sp2, "ext_particle_tracing_sp2");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
