// Shared plumbing for the experiment harness: option parsing, dataset
// workbenches, the disk-count sweep the paper uses, CSV emission, and the
// parallel sweep harness every figure/table binary fans its configurations
// through.
//
// Every bench binary runs with no arguments and prints the paper's
// rows/series. Optional flags:
//   --csv-dir <dir>     also write each table as CSV into <dir>
//   --queries <n>       queries per configuration (default 1000, the paper's)
//   --seed <s>          dataset/workload base seed
//   --threads <n>       sweep parallelism (default: PGF_THREADS env, else
//                       hardware concurrency; 1 = serial). Output is
//                       byte-identical at every thread count.
//   --inner-threads <n> intra-algorithm parallelism: chunks the O(N^2)
//                       minimax/proximity scans inside each declustering
//                       run across a second pool (default: PGF_INNER_THREADS
//                       env, else 1 = serial; 0 = hardware concurrency).
//                       Output is byte-identical at every setting.
//   --bench-json <f>    write machine-readable sweep timings to <f>
//                       (BENCH_sweep.json schema, see tools/bench_diff)
//   --build-cache[=on|off]  memoize dataset+grid-file construction across
//                       repeated identical build requests (default: on;
//                       PGF_BUILD_CACHE=0 in the environment disables).
//                       Output is byte-identical either way.
//   --backend <b>       grid-file backend: memory (default) or paged.
//                       Paged builds the workbench's dataset into a real
//                       one-bucket-per-page disk file too; experiments
//                       that support it (table45_sp2) then run the
//                       parallel server disk-backed, with physical
//                       reads / cache hits counted by per-node buffer
//                       pools. (PGF_BACKEND in the environment sets the
//                       default.) Response-block columns are identical
//                       across backends by construction.
//   --node-pool-pages <n>  buffer-pool frames per simulated node in the
//                       disk-backed mode (default 1024)
//   --policy <p>        node-pool replacement policy: lru (default), lru-k,
//                       clock, or 2q (PGF_POLICY in the environment sets
//                       the default). Non-default policies apply to the
//                       serving-side node pools only; stdout is
//                       byte-identical when unset.
//   --prefetch[=on|off] declustering-aware read-ahead: the coordinator
//                       stages each node's bucket pages into that node's
//                       pool before the workers scan (default off;
//                       PGF_PREFETCH=1 in the environment enables).
//   --full              full paper scale for the SP-2 experiment
//                       (also enabled by PGF_FULL_SCALE=1 in the environment)
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "latency.hpp"
#include "pgf/core/build_cache.hpp"
#include "pgf/core/declusterer.hpp"
#include "pgf/core/sweep.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/util/thread_pool.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf::bench {

struct Options {
    std::string csv_dir;
    std::size_t queries = 1000;
    std::uint64_t seed = 1;
    unsigned threads = 0;  ///< 0 = hardware concurrency
    unsigned inner_threads = 1;  ///< intra-algorithm scans; 0 = hw concurrency
    std::string bench_json;
    bool build_cache = true;
    std::string backend = "memory";  ///< "memory" or "paged"
    std::size_t node_pool_pages = 1024;  ///< disk-backed per-node pool frames
    std::string policy = "lru";  ///< node-pool replacement policy
    bool prefetch = false;       ///< declustering-aware read-ahead
    bool full_scale = false;

    Options(int argc, const char* const* argv);

    bool paged() const { return backend == "paged"; }

    /// True when --policy/--prefetch (or their env vars) deviate from the
    /// historical behavior — the benches print an extra config line then,
    /// keeping default stdout byte-identical.
    bool caching_tuned() const { return policy != "lru" || prefetch; }

    /// The parsed node-pool configuration (--policy validated at option
    /// parse time, so this cannot fail).
    BufferPoolConfig pool_config() const;

    /// Thread count after resolving 0 to the hardware concurrency.
    unsigned resolved_threads() const;

    /// Inner-scan thread count after resolving 0 to hardware concurrency.
    unsigned resolved_inner_threads() const;
};

/// The inner-scan pool for a bench binary, or nullptr when
/// --inner-threads resolves to 1 (serial scans, the default). Shared by
/// every declustering run; concurrent sweep tasks serialize on the pool's
/// submit mutex.
std::unique_ptr<ThreadPool> make_inner_pool(const Options& opt);

/// Prints the experiment banner: which paper table/figure is being
/// regenerated and with what workload.
void print_banner(const Options& opt, const std::string& experiment,
                  const std::string& note);

/// Prints a table and, when --csv-dir is set, writes `<csv_dir>/<name>.csv`.
void emit(const Options& opt, const TextTable& table, const std::string& name);

/// The paper's disk sweep: M = 4, 6, ..., 32.
std::vector<std::uint32_t> disk_sweep();

/// A fresh unique path under the system temp directory for a paged
/// workbench's backing file (tag is sanitized into the file name). The
/// caller owns cleanup.
std::string unique_backing_path(const std::string& tag);

/// One worker pool + sweep engine + timing log per bench binary. The
/// sweep() results come back in declaration order, so stdout/CSV bytes
/// never depend on the thread count; wall-clock per sweep is recorded and,
/// when --bench-json was given, written out by write_timings() (called by
/// the binary at the end of its run).
class SweepHarness {
public:
    SweepHarness(const Options& opt, std::string binary);

    /// The shared pool (nullptr when running serially) — also handed to
    /// Workbench::workload for parallel query-bucket collection.
    ThreadPool* pool() { return pool_.get(); }

    /// The inner-scan pool for DeclusterOptions::pool (nullptr when
    /// --inner-threads resolves to 1). Distinct from pool(): that one runs
    /// whole sweep configurations, this one chunks the O(N^2) scans inside
    /// a single declustering run.
    ThreadPool* inner_pool() { return inner_pool_.get(); }

    SweepRunner& runner() { return runner_; }

    /// Fans fn(config, task) over the configurations and logs the sweep's
    /// wall time under `name`.
    template <typename Config, typename Fn>
    auto sweep(const std::string& name, const std::vector<Config>& configs,
               Fn&& fn) {
        auto results = runner_.map(configs, std::forward<Fn>(fn));
        record(name, runner_.last());
        return results;
    }

    /// Times an arbitrary phase (e.g. workload collection) under `name`.
    template <typename Fn>
    auto timed(const std::string& name, Fn&& fn) {
        const auto start = now_ms();
        auto result = fn();
        record_wall(name, now_ms() - start);
        return result;
    }

    /// Writes BENCH_sweep.json when --bench-json is set; true on success
    /// (or when disabled).
    bool write_timings() const;

private:
    struct Entry {
        std::string name;
        std::size_t tasks = 0;
        double wall_ms = 0.0;
    };

    static double now_ms();
    void record(const std::string& name, const SweepStats& stats);
    void record_wall(const std::string& name, double wall_ms);

    const Options& opt_;
    std::string binary_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<ThreadPool> inner_pool_;
    SweepRunner runner_;
    std::vector<Entry> entries_;
};

/// A dataset loaded into a grid file with its structural snapshot — the
/// starting state of every simulation experiment. With `with_paged` the
/// same dataset is also bulk-loaded into a disk-backed grid file whose
/// page capacity equals the in-memory bucket capacity, so the two
/// backends are cell-for-cell identical; the backing file is removed
/// when the last handle drops.
template <std::size_t D>
struct Workbench {
    Dataset<D> dataset;
    GridFile<D> gf;
    GridStructure gs;
    std::shared_ptr<PagedGridFile<D>> paged;  ///< set only with with_paged

    explicit Workbench(Dataset<D> ds, bool with_paged = false)
        : dataset(std::move(ds)), gf(dataset.build()), gs(gf.structure()) {
        if (with_paged) {
            typename PagedGridFile<D>::Config cfg;
            cfg.page_size = PagedBucketStore<D>::page_size_for(
                dataset.bucket_capacity);
            paged = std::shared_ptr<PagedGridFile<D>>(
                new PagedGridFile<D>(unique_backing_path(dataset.name),
                                     dataset.domain, cfg),
                [](PagedGridFile<D>* p) {
                    const std::string path = p->path();
                    delete p;
                    std::remove(path.c_str());
                });
            paged->bulk_load(dataset.points);
            paged->flush();
        }
    }

    /// Precollects the bucket sets of a fresh random square-query workload
    /// (reused across every method/M configuration). A pool fans the
    /// grid-file lookups across threads; the result is bit-identical to
    /// the serial collection.
    std::vector<std::vector<std::uint32_t>> workload(
        double ratio, std::size_t count, std::uint64_t seed,
        ThreadPool* pool = nullptr) const {
        Rng rng(seed);
        return collect_query_buckets(
            gf, square_queries(dataset.domain, ratio, count, rng), pool);
    }

    std::string summary() const {
        return dataset.name + ": " + std::to_string(gf.record_count()) +
               " records, " + std::to_string(gf.bucket_count()) +
               " buckets (" + std::to_string(gf.merged_bucket_count()) +
               " merged)";
    }
};

/// The process-wide workbench cache. Enabled state is set once, from the
/// first Options seen (every bench binary parses options before building).
BuildCache& workbench_cache(const Options& opt);

/// Builds (or fetches) the Workbench for `maker(rng)` through the shared
/// BuildCache. `distribution` must name the generator including any
/// non-default parameters; `n` is the requested record count and
/// `bucket_capacity` the override (0 = generator default) — together with
/// the Rng's current stream position they form the cache key, so distinct
/// configurations never alias. On a hit `rng` is fast-forwarded exactly as
/// if the generator had run (see pgf/core/build_cache.hpp), keeping every
/// later draw — and therefore stdout/CSV — byte-identical with the cache
/// on or off.
template <std::size_t D, typename Maker>
std::shared_ptr<const Workbench<D>> cached_workbench(
    const Options& opt, std::string distribution, std::size_t n, Rng& rng,
    Maker&& maker, std::uint64_t bucket_capacity = 0) {
    // The paged workbench carries extra state (the backing file), so it
    // never aliases a memory-backend cache entry.
    const bool with_paged = opt.paged();
    if (with_paged) distribution += "/backend=paged";
    BuildKey key{std::move(distribution), rng.state(), n,
                 static_cast<std::uint32_t>(D), bucket_capacity};
    return workbench_cache(opt).get_or_build<Workbench<D>>(
        key, rng,
        [&maker, with_paged](Rng& r) {
            return Workbench<D>(maker(r), with_paged);
        });
}

}  // namespace pgf::bench
