// Shared plumbing for the experiment harness: option parsing, dataset
// workbenches, the disk-count sweep the paper uses, and CSV emission.
//
// Every bench binary runs with no arguments and prints the paper's
// rows/series. Optional flags:
//   --csv-dir <dir>   also write each table as CSV into <dir>
//   --queries <n>     queries per configuration (default 1000, the paper's)
//   --seed <s>        dataset/workload base seed
//   --full            full paper scale for the SP-2 experiment
//                     (also enabled by PGF_FULL_SCALE=1 in the environment)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgf/core/declusterer.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf::bench {

struct Options {
    std::string csv_dir;
    std::size_t queries = 1000;
    std::uint64_t seed = 1;
    bool full_scale = false;

    Options(int argc, const char* const* argv);
};

/// Prints the experiment banner: which paper table/figure is being
/// regenerated and with what workload.
void print_banner(const Options& opt, const std::string& experiment,
                  const std::string& note);

/// Prints a table and, when --csv-dir is set, writes `<csv_dir>/<name>.csv`.
void emit(const Options& opt, const TextTable& table, const std::string& name);

/// The paper's disk sweep: M = 4, 6, ..., 32.
std::vector<std::uint32_t> disk_sweep();

/// A dataset loaded into a grid file with its structural snapshot — the
/// starting state of every simulation experiment.
template <std::size_t D>
struct Workbench {
    Dataset<D> dataset;
    GridFile<D> gf;
    GridStructure gs;

    explicit Workbench(Dataset<D> ds)
        : dataset(std::move(ds)), gf(dataset.build()), gs(gf.structure()) {}

    /// Precollects the bucket sets of a fresh random square-query workload
    /// (reused across every method/M configuration).
    std::vector<std::vector<std::uint32_t>> workload(double ratio,
                                                     std::size_t count,
                                                     std::uint64_t seed) const {
        Rng rng(seed);
        return collect_query_buckets(
            gf, square_queries(dataset.domain, ratio, count, rng));
    }

    std::string summary() const {
        return dataset.name + ": " + std::to_string(gf.record_count()) +
               " records, " + std::to_string(gf.bucket_count()) +
               " buckets (" + std::to_string(gf.merged_bucket_count()) +
               " merged)";
    }
};

}  // namespace pgf::bench
