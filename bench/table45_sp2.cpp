// Tables 4 & 5 — the shared-nothing (IBM SP-2 style) experiments on the
// 4-d spatio-temporal DSMC dataset, declustered with minimax.
//
// Table 4: animation workload — for each time step a series of r = 0.1
// spatial queries tiling the whole volume; block caching matters because
// the temporal axis merges several snapshots per partition.
// Table 5: 100 random 4-d square range queries at r = 0.01/0.05/0.1.
//
// Expected shape: response blocks roughly halve from P=4 to P=8 to P=16;
// elapsed time scales sub-linearly; communication time stays flat-ish for
// the animation workload and grows with r in the random workload.
//
// Default scale is reduced for a laptop run (16 snapshots x ~25k records);
// --full or PGF_FULL_SCALE=1 selects the paper's 59 x ~51k (~3M records).
//
// --backend=paged additionally bulk-loads the dataset into a real
// one-bucket-per-page disk file and runs every server disk-backed: block
// reads go through per-node buffer pools and the cache-hits /
// physical-reads columns report actual page I/O. The response-blocks
// column is identical to --backend=memory by construction.
#include <iostream>

#include "common.hpp"

#include "pgf/parallel/pgf_server.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "table45_sp2");
    const std::size_t snapshots = opt.full_scale ? 59 : 16;
    const std::size_t per_snapshot = opt.full_scale ? 50847 : 25000;
    print_banner(opt, "Tables 4-5 — parallel grid file on a shared-nothing "
                      "cluster (simulated)",
                 "4-d DSMC dataset, minimax declustering; " +
                     std::to_string(snapshots) + " snapshots x " +
                     std::to_string(per_snapshot) + " records");

    Rng rng(opt.seed);
    auto wb = cached_workbench<4>(
        opt,
        "dsmc.4d/s=" + std::to_string(snapshots) +
            "/p=" + std::to_string(per_snapshot),
        snapshots * per_snapshot, rng, [&](Rng& r) {
            return make_dsmc4d(r, snapshots, per_snapshot);
        });
    const Workbench<4>& bench = *wb;
    auto shape = bench.gf.grid_shape();
    std::cout << bench.summary() << "  grid " << shape[0] << "x" << shape[1]
              << "x" << shape[2] << "x" << shape[3]
              << "  (paper: 3M records, 7x28x21x39 subspaces -> 19956 "
              << "buckets of 8 KB)\n";
    if (opt.paged()) {
        // Extra line only in paged mode so the memory-backend output stays
        // byte-identical to earlier releases.
        std::cout << "backend: paged (" << bench.paged->bucket_count()
                  << " page buckets of "
                  << bench.paged->config().page_size << " B, "
                  << opt.node_pool_pages << " pool frames per node)\n";
        if (opt.caching_tuned()) {
            // Same byte-identity rule as the backend line: printed only
            // when --policy/--prefetch deviate from the default.
            std::cout << "caching: policy=" << opt.policy << " prefetch="
                      << (opt.prefetch ? "on" : "off") << "\n";
        }
    }

    // In paged mode the servers read real pages from the workbench's
    // backing file through per-node buffer pools; response blocks are
    // structural and therefore identical to the memory backend.
    auto execute = [&](const Assignment& a, std::uint32_t nodes,
                       const std::vector<Rect<4>>& queries) {
        ClusterConfig cfg;
        cfg.nodes = nodes;
        if (opt.paged()) {
            ParallelGridFileServer<4, PagedGridFile<4>> server(
                *bench.paged, a, cfg,
                DiskBackedConfig{opt.node_pool_pages, opt.pool_config(),
                                 opt.prefetch});
            return server.execute(queries);
        }
        ParallelGridFileServer<4> server(bench.gf, a, cfg);
        return server.execute(queries);
    };

    // The minimax declusterings (the expensive part at this bucket count)
    // are shared by both tables, so they are swept once up front.
    const std::vector<std::uint32_t> processors{4, 8, 16};
    auto assignments = harness.sweep(
        "table45_decluster", processors,
        [&](std::uint32_t p, const SweepTask&) {
            return decluster(bench.gs, Method::kMinimax, p,
                             {.seed = opt.seed + 23,
                              .pool = harness.inner_pool()});
        });

    // Table 4: animation queries.
    struct Row4 {
        std::uint32_t p = 0;
        BatchResult r;
    };
    auto rows4 = harness.sweep(
        "table4_animation", processors,
        [&](std::uint32_t p, const SweepTask& task) {
            auto queries =
                animation_queries(bench.dataset.domain, snapshots, 0.1);
            return Row4{p, execute(assignments[task.index], p, queries)};
        });
    TextTable t4({"processors", "response blocks", "comm (s)", "elapsed (s)",
                  "cache hits", "physical reads"});
    for (const Row4& row : rows4) {
        t4.add(row.p, row.r.response_blocks, format_double(row.r.comm_time_s),
               format_double(row.r.elapsed_s), row.r.cache_hits,
               row.r.physical_reads);
    }
    emit(opt, t4, "table4_sp2_animation");

    // Table 5: random range queries, one task per (processors, ratio).
    struct Config5 {
        std::size_t p_index = 0;
        double ratio = 0.0;
    };
    std::vector<Config5> configs5;
    for (std::size_t pi = 0; pi < processors.size(); ++pi) {
        for (double ratio : {0.01, 0.05, 0.10}) {
            configs5.push_back({pi, ratio});
        }
    }
    auto rows5 = harness.sweep(
        "table5_random", configs5, [&](const Config5& c, const SweepTask&) {
            Rng qrng(opt.seed + 5000);
            auto queries =
                square_queries(bench.dataset.domain, c.ratio, 100, qrng);
            return execute(assignments[c.p_index], processors[c.p_index],
                           queries);
        });
    TextTable t5({"processors", "query ratio", "response blocks", "comm (s)",
                  "elapsed (s)"});
    for (std::size_t i = 0; i < configs5.size(); ++i) {
        t5.add(processors[configs5[i].p_index],
               format_double(configs5[i].ratio), rows5[i].response_blocks,
               format_double(rows5[i].comm_time_s),
               format_double(rows5[i].elapsed_s));
    }
    emit(opt, t5, "table5_sp2_random");
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
