// Figure 7 — effect of query size on stock.3d: response time (left) and
// speedup over the 4-disk configuration (right), HCAM/D vs MiniMax for
// r = 0.01, 0.05, 0.10.
//
// Expected shape: minimax below HCAM in both metrics at every query size,
// with the relative benefit growing as queries get smaller.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "fig7_query_size");
    print_banner(opt, "Figure 7 — query-size effect (stock.3d)",
                 "HCAM/D vs MiniMax across r = 0.01 / 0.05 / 0.10; speedup "
                 "= response(4 disks) / response(M disks)");
    Rng rng(opt.seed);
    auto wb = cached_workbench<3>(opt, "stock.3d", 127026, rng,
                                  [](Rng& r) { return make_stock3d(r); });
    const Workbench<3>& bench = *wb;
    std::cout << bench.summary() << "\n";

    const std::vector<double> ratios{0.01, 0.05, 0.10};
    const std::vector<Method> methods{Method::kHilbert, Method::kMinimax};
    std::vector<std::vector<std::vector<std::uint32_t>>> workloads;
    workloads.reserve(ratios.size());
    for (double r : ratios) {
        workloads.push_back(harness.timed(
            "workload_r" + format_double(r), [&] {
                return bench.workload(r, opt.queries, opt.seed + 4000,
                                      harness.pool());
            }));
    }

    struct Config {
        std::uint32_t disks = 0;
        std::size_t ratio_index = 0;
        Method method = Method::kHilbert;
    };
    std::vector<Config> configs;
    for (std::uint32_t m : disk_sweep()) {
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            for (Method method : methods) configs.push_back({m, ri, method});
        }
    }
    auto responses = harness.sweep(
        "fig7_stock3d", configs, [&](const Config& c, const SweepTask&) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 19;
            dopt.pool = harness.inner_pool();
            Assignment a = decluster(bench.gs, c.method, c.disks, dopt);
            return evaluate_workload(workloads[c.ratio_index], a)
                .avg_response;
        });

    TextTable response({"disks", "HCAM r=.01", "MiniMax r=.01", "HCAM r=.05",
                        "MiniMax r=.05", "HCAM r=.10", "MiniMax r=.10"});
    TextTable speedup = response;
    const std::size_t slots = ratios.size() * methods.size();
    std::vector<double> base(responses.begin(),
                             responses.begin() +
                                 static_cast<std::ptrdiff_t>(slots));

    std::size_t idx = 0;
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> r_row{std::to_string(m)};
        std::vector<std::string> s_row{std::to_string(m)};
        for (std::size_t slot = 0; slot < slots; ++slot, ++idx) {
            r_row.push_back(format_double(responses[idx]));
            s_row.push_back(format_double(base[slot] / responses[idx]));
        }
        response.add_row(std::move(r_row));
        speedup.add_row(std::move(s_row));
    }
    emit(opt, response, "fig7_response_stock3d");
    emit(opt, speedup, "fig7_speedup_stock3d");
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
