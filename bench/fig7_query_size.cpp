// Figure 7 — effect of query size on stock.3d: response time (left) and
// speedup over the 4-disk configuration (right), HCAM/D vs MiniMax for
// r = 0.01, 0.05, 0.10.
//
// Expected shape: minimax below HCAM in both metrics at every query size,
// with the relative benefit growing as queries get smaller.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 7 — query-size effect (stock.3d)",
                 "HCAM/D vs MiniMax across r = 0.01 / 0.05 / 0.10; speedup "
                 "= response(4 disks) / response(M disks)");
    Rng rng(opt.seed);
    Workbench<3> bench(make_stock3d(rng));
    std::cout << bench.summary() << "\n";

    const std::vector<double> ratios{0.01, 0.05, 0.10};
    std::vector<std::vector<std::vector<std::uint32_t>>> workloads;
    workloads.reserve(ratios.size());
    for (double r : ratios) {
        workloads.push_back(bench.workload(r, opt.queries, opt.seed + 4000));
    }

    TextTable response({"disks", "HCAM r=.01", "MiniMax r=.01", "HCAM r=.05",
                        "MiniMax r=.05", "HCAM r=.10", "MiniMax r=.10"});
    TextTable speedup = response;
    std::vector<double> base;  // response at M = 4 per (ratio, method)

    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> r_row{std::to_string(m)};
        std::vector<std::string> s_row{std::to_string(m)};
        std::size_t slot = 0;
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            for (Method method : {Method::kHilbert, Method::kMinimax}) {
                DeclusterOptions dopt;
                dopt.seed = opt.seed + 19;
                Assignment a = decluster(bench.gs, method, m, dopt);
                WorkloadStats s = evaluate_workload(workloads[ri], a);
                r_row.push_back(format_double(s.avg_response));
                if (m == 4) base.push_back(s.avg_response);
                s_row.push_back(format_double(base[slot] / s.avg_response));
                ++slot;
            }
        }
        response.add_row(std::move(r_row));
        speedup.add_row(std::move(s_row));
    }
    emit(opt, response, "fig7_response_stock3d");
    emit(opt, speedup, "fig7_speedup_stock3d");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
