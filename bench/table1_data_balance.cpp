// Table 1 — degree of data balance (B_max * M / B_sum) achieved by DM/D,
// FX/D and HCAM/D on hot.2d, for even disk counts 4..32.
//
// Expected shape: values at or near 1.00 everywhere, HCAM best, then DM,
// FX worst (paper: FX reaches 1.89 at M = 26).
#include <iostream>

#include "common.hpp"

#include "pgf/disksim/metrics.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Table 1 — degree of data balance (hot.2d)",
                 "B_max * M / B_sum per declustering method with the data "
                 "balance heuristic; 1.00 = perfect");
    Rng rng(opt.seed);
    Workbench<2> bench(make_hotspot2d(rng));
    std::cout << bench.summary() << "\n";

    TextTable table({"method", "4", "6", "8", "10", "12", "14", "16", "18",
                     "20", "22", "24", "26", "28", "30", "32"});
    for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                          Method::kHilbert}) {
        std::vector<std::string> row{to_string(method) + "/D"};
        for (std::uint32_t m = 4; m <= 32; m += 2) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 11;
            Assignment a = decluster(bench.gs, method, m, dopt);
            row.push_back(format_double(degree_of_data_balance(a)));
        }
        table.add_row(std::move(row));
    }
    // The paper's text also reports minimax achieving perfect balance; add
    // it as a reference row.
    {
        std::vector<std::string> row{"MiniMax"};
        for (std::uint32_t m = 4; m <= 32; m += 2) {
            Assignment a = decluster(bench.gs, Method::kMinimax, m,
                                     {.seed = opt.seed + 11});
            row.push_back(format_double(degree_of_data_balance(a)));
        }
        table.add_row(std::move(row));
    }
    emit(opt, table, "table1_data_balance_hot2d");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
