// Table 1 — degree of data balance (B_max * M / B_sum) achieved by DM/D,
// FX/D and HCAM/D on hot.2d, for even disk counts 4..32.
//
// Expected shape: values at or near 1.00 everywhere, HCAM best, then DM,
// FX worst (paper: FX reaches 1.89 at M = 26).
#include <iostream>

#include "common.hpp"

#include "pgf/disksim/metrics.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "table1_data_balance");
    print_banner(opt, "Table 1 — degree of data balance (hot.2d)",
                 "B_max * M / B_sum per declustering method with the data "
                 "balance heuristic; 1.00 = perfect");
    Rng rng(opt.seed);
    auto wb = cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                                  [](Rng& r) { return make_hotspot2d(r); });
    const Workbench<2>& bench = *wb;
    std::cout << bench.summary() << "\n";

    // The paper's text also reports minimax achieving perfect balance; it
    // rides along as a reference row.
    const std::vector<Method> methods{Method::kDiskModulo,
                                      Method::kFieldwiseXor, Method::kHilbert,
                                      Method::kMinimax};
    struct Config {
        Method method = Method::kDiskModulo;
        std::uint32_t disks = 0;
    };
    std::vector<Config> configs;
    for (Method method : methods) {
        for (std::uint32_t m : disk_sweep()) configs.push_back({method, m});
    }
    auto balances = harness.sweep(
        "table1_hot2d", configs, [&](const Config& c, const SweepTask&) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 11;
            dopt.pool = harness.inner_pool();
            Assignment a = decluster(bench.gs, c.method, c.disks, dopt);
            return degree_of_data_balance(a);
        });

    TextTable table({"method", "4", "6", "8", "10", "12", "14", "16", "18",
                     "20", "22", "24", "26", "28", "30", "32"});
    std::size_t idx = 0;
    for (Method method : methods) {
        std::vector<std::string> row{method == Method::kMinimax
                                         ? to_string(method)
                                         : to_string(method) + "/D"};
        for (std::size_t k = 0; k < disk_sweep().size(); ++k, ++idx) {
            row.push_back(format_double(balances[idx]));
        }
        table.add_row(std::move(row));
    }
    emit(opt, table, "table1_data_balance_hot2d");
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
