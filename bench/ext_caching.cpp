// Extension experiment — buffer-pool hit rates across replacement
// policies and declustering-aware prefetch.
//
// The pluggable-policy pool (pgf/storage/replacement.hpp) claims LRU-K
// and 2Q resist exactly the access patterns that hurt plain LRU on the
// paper's workloads: skewed traffic (most queries revisit the hot-spot
// clusters' buckets) and repeated ranges interleaved with large polluting
// scans. This bench measures that directly: a single-node QueryEngine
// serves three workloads over the hotspot.2d paged grid file —
//
//   uniform  — square queries uniform over the domain (no reuse
//              structure; every policy should look alike, the control),
//   hotspot  — query centers drawn from the data points themselves, so
//              the clusters' buckets are re-referenced heavily (skew),
//   scan-mix — a small set of repeated hot ranges with every 8th query a
//              large polluting scan (the scan-resistance stressor: one
//              scan floods a small pool and evicts the hot set under LRU),
//
// sweeping policy {lru, lru-k, clock, 2q, lfu} x prefetch {off, on} x
// pool-pages {16, 64, 256}. Every configuration starts cold (fresh
// engine) and serves the whole workload once; the reported hit rate is
// the demand hit fraction over the full pass and io/q is physical page
// reads (misses + prefetch reads) per query — read-ahead cannot hide
// I/O in that column. Correctness anchor: for a fixed workload every
// configuration must return the same total record count (policies may
// only change *when* pages are read, never what the queries see); any
// divergence aborts with exit 1.
//
// --bench-json <file> writes schema pgf-bench-caching-v1 (understood by
// tools/bench_diff, which gates on p99 latency and miss percentage).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

#include "pgf/parallel/query_engine.hpp"

namespace pgf::bench {
namespace {

/// One measured cell of the sweep.
struct CellResult {
    std::string name;      ///< "<workload>/p=<pages>/<policy>/pf=<on|off>"
    std::string workload;
    std::string policy;
    bool prefetch = false;
    std::size_t pool_pages = 0;
    ServingReport report;
    BufferPool::Stats pool;  ///< the single node pool's counters
};

/// Physical page reads per query: demand misses plus read-ahead reads.
double io_per_query(const CellResult& r) {
    if (r.report.queries == 0) return 0.0;
    return static_cast<double>(r.pool.misses + r.pool.prefetch_issued) /
           static_cast<double>(r.report.queries);
}

/// Square rect of `area_ratio` of the domain's area centered at `c`
/// (clamped to the domain).
Rect<2> square_at(const Rect<2>& domain, const Point<2>& c,
                  double area_ratio) {
    const double side = std::sqrt(area_ratio);
    Rect<2> q;
    for (std::size_t i = 0; i < 2; ++i) {
        const double len = side * domain.extent(i);
        q.lo[i] = std::max(domain.lo[i], c[i] - 0.5 * len);
        q.hi[i] = std::min(domain.hi[i], c[i] + 0.5 * len);
    }
    return q;
}

/// Skewed workload: query centers are data points, so the hot clusters'
/// buckets absorb most of the traffic.
std::vector<Rect<2>> hotspot_queries(const Dataset<2>& ds, double area_ratio,
                                     std::size_t count, Rng& rng) {
    std::vector<Rect<2>> queries;
    queries.reserve(count);
    const auto n = static_cast<std::uint32_t>(ds.points.size());
    for (std::size_t i = 0; i < count; ++i) {
        const Point<2>& c = ds.points[rng.below(n)];
        queries.push_back(square_at(ds.domain, c, area_ratio));
    }
    return queries;
}

/// Scan-resistance workload: 7 of 8 queries repeat one of `hot_set` small
/// ranges; every 8th is a fresh large scan that floods a small pool.
std::vector<Rect<2>> scan_mix_queries(const Dataset<2>& ds,
                                      std::size_t count, Rng& rng) {
    constexpr std::size_t kHotRects = 4;
    constexpr double kHotArea = 0.005;
    constexpr double kScanArea = 0.25;
    std::vector<Rect<2>> hot_set;
    hot_set.reserve(kHotRects);
    const auto n = static_cast<std::uint32_t>(ds.points.size());
    for (std::size_t i = 0; i < kHotRects; ++i) {
        const Point<2>& c = ds.points[rng.below(n)];
        hot_set.push_back(square_at(ds.domain, c, kHotArea));
    }
    std::vector<Rect<2>> queries;
    queries.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (i % 8 == 7) {
            Point<2> c;
            for (std::size_t d = 0; d < 2; ++d) {
                c[d] = rng.uniform(ds.domain.lo[d], ds.domain.hi[d]);
            }
            queries.push_back(square_at(ds.domain, c, kScanArea));
        } else {
            queries.push_back(
                hot_set[rng.below(static_cast<std::uint32_t>(
                    hot_set.size()))]);
        }
    }
    return queries;
}

bool write_caching_json(const Options& opt, const std::string& path,
                        const std::vector<CellResult>& results) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench-json] FAILED to write " << path << "\n";
        return false;
    }
    out << "{\n"
        << "  \"schema\": \"pgf-bench-caching-v1\",\n"
        << "  \"binary\": \"ext_caching\",\n"
        << "  \"queries\": " << opt.queries << ",\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult& r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"workload\": \""
            << r.workload << "\", \"policy\": \"" << r.policy
            << "\", \"prefetch\": " << (r.prefetch ? "true" : "false")
            << ", \"pool_pages\": " << r.pool_pages
            << ", \"hit_rate\": " << r.pool.hit_rate()
            << ", \"hits\": " << r.pool.hits
            << ", \"misses\": " << r.pool.misses
            << ", \"evictions\": " << r.pool.evictions
            << ", \"prefetch_issued\": " << r.pool.prefetch_issued
            << ", \"prefetch_hits\": " << r.pool.prefetch_hits
            << ", \"io_per_query\": " << io_per_query(r)
            << ", \"qps\": " << r.report.qps
            << ", \"p50_ms\": " << r.report.p50_ms
            << ", \"p99_ms\": " << r.report.p99_ms
            << ", \"records\": " << r.report.records_returned << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench-json] " << path << "\n";
    return true;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    // Hit rates are a property of the disk image; force the paged
    // workbench regardless of --backend.
    Options paged_opt = opt;
    paged_opt.backend = "paged";

    print_banner(opt,
                 "Extension — replacement policies and prefetch vs hit rate",
                 "hotspot.2d paged grid file, 1-node QueryEngine; demand "
                 "hit rate, physical reads/query and p50/p99 latency vs "
                 "policy x prefetch x pool-pages x workload");
    Rng rng(opt.seed);
    auto wb = cached_workbench<2>(paged_opt, "hotspot.2d", 10000, rng,
                                  [](Rng& r) {
                                      return make_hotspot2d(r, 10000);
                                  });
    const Workbench<2>& bench = *wb;
    PGF_CHECK(bench.paged != nullptr, "caching bench needs the paged build");
    const PagedGridFile<2>& pgf2 = *bench.paged;
    std::cout << bench.summary() << "\n";

    // Every bucket on the one node's one disk: this bench isolates the
    // caching behavior, not the declustering (ext_serving covers that).
    Assignment assignment;
    assignment.num_disks = 1;
    assignment.disk_of.assign(pgf2.bucket_count(), 0);

    struct Workload {
        std::string name;
        std::vector<Rect<2>> queries;
    };
    Rng qrng(opt.seed + 15000);
    std::vector<Workload> workloads;
    workloads.push_back(
        {"uniform",
         square_queries(bench.dataset.domain, 0.02, opt.queries, qrng)});
    workloads.push_back(
        {"hotspot",
         hotspot_queries(bench.dataset, 0.02, opt.queries, qrng)});
    workloads.push_back(
        {"scan-mix", scan_mix_queries(bench.dataset, opt.queries, qrng)});

    const std::vector<std::size_t> pool_sweep{16, 64, 256};
    const std::vector<ReplacementPolicy> policies{
        ReplacementPolicy::kLru, ReplacementPolicy::kLruK,
        ReplacementPolicy::kClock, ReplacementPolicy::kTwoQ,
        ReplacementPolicy::kLfu};

    std::vector<CellResult> results;
    bool consistent = true;
    for (const Workload& wl : workloads) {
        std::vector<QueryEngine<2>::Query> engine_queries(
            wl.queries.begin(), wl.queries.end());
        TextTable table({"pool", "policy", "prefetch", "hit rate", "io/q",
                         "p50 ms", "p99 ms"});
        std::uint64_t expected_records = 0;
        bool have_expected = false;
        for (std::size_t pool_pages : pool_sweep) {
            for (ReplacementPolicy policy : policies) {
                for (bool prefetch : {false, true}) {
                    ServingConfig cfg;
                    cfg.nodes = 1;
                    cfg.workers_per_node = 1;
                    cfg.pool_pages = pool_pages;
                    cfg.concurrency = 1;
                    cfg.pool_config.policy = policy;
                    cfg.prefetch = prefetch;
                    // Fresh engine per cell: every configuration starts
                    // cold and serves the whole workload once.
                    QueryEngine<2> engine(pgf2, assignment, cfg);
                    auto out = engine.run(engine_queries);

                    CellResult r;
                    r.workload = wl.name;
                    r.policy = to_string(policy);
                    r.prefetch = prefetch;
                    r.pool_pages = pool_pages;
                    r.name = wl.name + "/p=" + std::to_string(pool_pages) +
                             "/" + r.policy +
                             (prefetch ? "/pf=on" : "/pf=off");
                    r.report = out.report;
                    r.pool = out.report.node_pools.at(0);
                    if (!have_expected) {
                        expected_records = r.report.records_returned;
                        have_expected = true;
                    } else if (r.report.records_returned !=
                               expected_records) {
                        consistent = false;
                    }
                    table.add(pool_pages, r.policy,
                              prefetch ? "on" : "off",
                              format_double(r.pool.hit_rate(), 3),
                              format_double(io_per_query(r)),
                              format_double(r.report.p50_ms, 3),
                              format_double(r.report.p99_ms, 3));
                    results.push_back(std::move(r));
                }
            }
        }
        emit(opt, table, "ext_caching_" + wl.name);
    }

    if (!opt.bench_json.empty()) {
        write_caching_json(opt, opt.bench_json, results);
    }
    if (!consistent) {
        std::cerr << "ext_caching: record counts DIVERGED across pool "
                     "configurations of one workload\n";
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
