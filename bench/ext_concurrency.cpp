// Extension experiment — concurrent query streams on the shared-nothing
// cluster.
//
// The paper's SP-2 experiments process one query at a time; a production
// server overlaps independent queries. This bench sweeps the closed-loop
// concurrency level and reports batch elapsed time per declustering: a good
// declustering not only shortens single queries but also spreads concurrent
// ones over disjoint disks, so its advantage should widen with concurrency.
#include <iostream>

#include "common.hpp"

#include "pgf/parallel/pgf_server.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Extension — concurrent query streams",
                 "4-d DSMC data, 16 nodes, 200 random r = 0.01 queries; "
                 "elapsed seconds vs closed-loop concurrency");
    Rng rng(opt.seed);
    auto wb = cached_workbench<4>(opt, "dsmc.4d/s=12/p=15000", 12 * 15000,
                                  rng, [](Rng& r) {
                                      return make_dsmc4d(r, 12, 15000);
                                  });
    const Workbench<4>& bench = *wb;
    std::cout << bench.summary() << "\n";
    Rng qrng(opt.seed + 12000);
    auto queries = square_queries(bench.dataset.domain, 0.01, 200, qrng);

    TextTable table({"concurrency", "DM/D elapsed", "HCAM/D elapsed",
                     "MiniMax elapsed", "MiniMax speedup vs seq"});
    // The assignment depends only on (structure, method, seed) — computed
    // once per method instead of once per (method, concurrency) cell,
    // which recomputed the identical MiniMax spanning tree 5x. Output is
    // byte-identical to the in-loop form (decluster draws from its own
    // seeded stream, never from the workbench rng).
    const std::vector<Method> methods{Method::kDiskModulo, Method::kHilbert,
                                      Method::kMinimax};
    std::vector<Assignment> assignments;
    assignments.reserve(methods.size());
    for (Method method : methods) {
        assignments.push_back(
            decluster(bench.gs, method, 16, {.seed = opt.seed + 53}));
    }
    double minimax_seq = 0.0;
    for (std::uint32_t conc : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::string> row{std::to_string(conc)};
        for (std::size_t mi = 0; mi < methods.size(); ++mi) {
            const Method method = methods[mi];
            const Assignment& a = assignments[mi];
            ClusterConfig cfg;
            cfg.nodes = 16;
            ParallelGridFileServer<4> server(bench.gf, a, cfg);
            BatchResult r = server.execute(queries, conc);
            row.push_back(format_double(r.elapsed_s));
            if (method == Method::kMinimax) {
                if (conc == 1) minimax_seq = r.elapsed_s;
                row.push_back(format_double(minimax_seq / r.elapsed_s));
            }
        }
        table.add_row(std::move(row));
    }
    emit(opt, table, "ext_concurrency");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
