// Figure 3 — conflict-resolution heuristics on hot.2d, r = 0.05.
//
// Left panel of the paper: HCAM under all four heuristics (response nearly
// insensitive to the choice). Right panel: FX under all four (most
// sensitive; data balance best). This bench prints both panels as
// method-major tables over M = 4..32, plus DM for completeness, and the
// optimal reference in every row.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

const std::vector<ConflictHeuristic> kHeuristics{
    ConflictHeuristic::kRandom, ConflictHeuristic::kMostFrequent,
    ConflictHeuristic::kDataBalance, ConflictHeuristic::kAreaBalance};

struct Config {
    std::uint32_t disks = 0;
    ConflictHeuristic heuristic = ConflictHeuristic::kRandom;
};

struct Cell {
    double response = 0.0;
    double optimal = 0.0;
};

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "fig3_conflict_resolution");
    print_banner(opt, "Figure 3 — conflict resolution heuristics (hot.2d)",
                 "avg response time (buckets) of 1000 square queries, "
                 "r = 0.05; data balance should win, HCAM should be "
                 "insensitive, FX most sensitive");
    Rng rng(opt.seed);
    auto wb = cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                                  [](Rng& r) { return make_hotspot2d(r); });
    const Workbench<2>& bench = *wb;
    std::cout << bench.summary() << "\n";
    auto qb = harness.timed("workload_hot2d", [&] {
        return bench.workload(0.05, opt.queries, opt.seed + 1000,
                              harness.pool());
    });

    std::vector<Config> configs;
    for (std::uint32_t m : disk_sweep()) {
        for (ConflictHeuristic h : kHeuristics) configs.push_back({m, h});
    }

    for (Method method : {Method::kHilbert, Method::kFieldwiseXor,
                          Method::kDiskModulo}) {
        auto cells = harness.sweep(
            "fig3_" + to_string(method), configs,
            [&](const Config& c, const SweepTask&) {
                DeclusterOptions dopt;
                dopt.heuristic = c.heuristic;
                dopt.seed = opt.seed + 7;
                dopt.pool = harness.inner_pool();
                Assignment a = decluster(bench.gs, method, c.disks, dopt);
                WorkloadStats s = evaluate_workload(qb, a);
                return Cell{s.avg_response, s.optimal};
            });

        TextTable table({"disks", "random", "most-freq", "data-bal",
                         "area-bal", "optimal"});
        std::size_t idx = 0;
        for (std::uint32_t m : disk_sweep()) {
            std::vector<std::string> row{std::to_string(m)};
            double optimal = 0.0;
            for (std::size_t k = 0; k < kHeuristics.size(); ++k, ++idx) {
                row.push_back(format_double(cells[idx].response));
                optimal = cells[idx].optimal;
            }
            row.push_back(format_double(optimal));
            table.add_row(std::move(row));
        }
        emit(opt, table, "fig3_" + to_string(method) + "_hot2d");
    }
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
