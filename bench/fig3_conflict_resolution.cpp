// Figure 3 — conflict-resolution heuristics on hot.2d, r = 0.05.
//
// Left panel of the paper: HCAM under all four heuristics (response nearly
// insensitive to the choice). Right panel: FX under all four (most
// sensitive; data balance best). This bench prints both panels as
// method-major tables over M = 4..32, plus DM for completeness, and the
// optimal reference in every row.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 3 — conflict resolution heuristics (hot.2d)",
                 "avg response time (buckets) of 1000 square queries, "
                 "r = 0.05; data balance should win, HCAM should be "
                 "insensitive, FX most sensitive");
    Rng rng(opt.seed);
    Workbench<2> bench(make_hotspot2d(rng));
    std::cout << bench.summary() << "\n";
    auto qb = bench.workload(0.05, opt.queries, opt.seed + 1000);

    const std::vector<ConflictHeuristic> heuristics{
        ConflictHeuristic::kRandom, ConflictHeuristic::kMostFrequent,
        ConflictHeuristic::kDataBalance, ConflictHeuristic::kAreaBalance};

    for (Method method : {Method::kHilbert, Method::kFieldwiseXor,
                          Method::kDiskModulo}) {
        TextTable table({"disks", "random", "most-freq", "data-bal",
                         "area-bal", "optimal"});
        for (std::uint32_t m : disk_sweep()) {
            std::vector<std::string> row{std::to_string(m)};
            double optimal = 0.0;
            for (ConflictHeuristic h : heuristics) {
                DeclusterOptions dopt;
                dopt.heuristic = h;
                dopt.seed = opt.seed + 7;
                Assignment a = decluster(bench.gs, method, m, dopt);
                WorkloadStats s = evaluate_workload(qb, a);
                row.push_back(format_double(s.avg_response));
                optimal = s.optimal;
            }
            row.push_back(format_double(optimal));
            table.add_row(std::move(row));
        }
        emit(opt, table, "fig3_" + to_string(method) + "_hot2d");
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
