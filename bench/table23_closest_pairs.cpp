// Tables 2 & 3 — number of closest bucket pairs assigned to the same disk,
// DSMC.3d (Table 2) and stock.3d (Table 3), M = 4..32.
//
// Expected shape: DM/D and FX/D consistently high; HCAM/D declining with M;
// SSP second lowest, rarely zero; MiniMax rarely above zero (paper Table 2:
// 10, 2, 1, 1, 3, 1, then zeros).
#include <iostream>

#include "common.hpp"

#include "pgf/disksim/metrics.hpp"

namespace pgf::bench {
namespace {

const std::vector<Method> kMethods{Method::kDiskModulo, Method::kFieldwiseXor,
                                   Method::kHilbert, Method::kSsp,
                                   Method::kMinimax};

template <std::size_t D>
void table_for(const Options& opt, SweepHarness& harness,
               const Workbench<D>& bench, const std::string& label) {
    std::cout << "\n" << bench.summary() << "\n";

    struct Config {
        Method method = Method::kDiskModulo;
        std::uint32_t disks = 0;
    };
    std::vector<Config> configs;
    for (Method method : kMethods) {
        for (std::uint32_t m : disk_sweep()) configs.push_back({method, m});
    }
    auto pair_counts = harness.sweep(
        label, configs, [&](const Config& c, const SweepTask&) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 17;
            dopt.pool = harness.inner_pool();
            Assignment a = decluster(bench.gs, c.method, c.disks, dopt);
            return closest_pairs_same_disk(bench.gs, a,
                                           WeightKind::kProximityIndex,
                                           harness.inner_pool());
        });

    TextTable table({"method", "4", "6", "8", "10", "12", "14", "16", "18",
                     "20", "22", "24", "26", "28", "30", "32"});
    std::size_t idx = 0;
    for (Method method : kMethods) {
        std::vector<std::string> row{
            is_index_based(method) ? to_string(method) + "/D"
                                   : to_string(method)};
        for (std::size_t k = 0; k < disk_sweep().size(); ++k, ++idx) {
            row.push_back(std::to_string(pair_counts[idx]));
        }
        table.add_row(std::move(row));
    }
    emit(opt, table, label);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "table23_closest_pairs");
    print_banner(opt, "Tables 2-3 — closest pairs mapped to the same disk",
                 "count of nearest-neighbor bucket pairs sharing a disk; "
                 "MiniMax should be at or near zero, DM/FX high");
    Rng rng(opt.seed);
    table_for(opt, harness,
              *cached_workbench<3>(opt, "dsmc.3d", 52857, rng,
                                   [](Rng& r) { return make_dsmc3d(r); }),
              "table2_closest_pairs_dsmc3d");
    table_for(opt, harness,
              *cached_workbench<3>(opt, "stock.3d", 127026, rng,
                                   [](Rng& r) { return make_stock3d(r); }),
              "table3_closest_pairs_stock3d");
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
