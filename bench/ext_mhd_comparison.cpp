// Extension experiment — the MHD magnetosphere dataset.
//
// The paper's conclusion names two large evaluation datasets in progress:
// DSMC and MHD snapshots. This bench runs the Figure-6 comparison on the
// MHD.3d stand-in (bow shock / magnetosheath / cavity structure, see
// DESIGN.md §3): strong curved-surface skew unlike the box-shaped DSMC
// compression, testing whether the paper's ranking generalizes.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Extension — five-algorithm comparison on MHD.3d",
                 "r = 0.01, data-balance conflict resolution; expected: the "
                 "Fig. 6 ranking (MiniMax < SSP <= HCAM/D << DM/D, FX/D)");
    Rng rng(opt.seed);
    auto wb = cached_workbench<3>(opt, "mhd.3d", 60000, rng,
                                  [](Rng& r) { return make_mhd3d(r); });
    const Workbench<3>& bench = *wb;
    std::cout << bench.summary() << "\n";
    auto qb = bench.workload(0.01, opt.queries, opt.seed + 13000);

    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax",
                     "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                              Method::kHilbert, Method::kSsp,
                              Method::kMinimax}) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 59;
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "ext_mhd_comparison");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
