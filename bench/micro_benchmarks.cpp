// Micro benchmarks (google-benchmark): throughput of the primitives the
// experiment pipeline leans on — Hilbert mapping, proximity evaluation,
// grid-file insertion and range queries (allocating and scratch-reusing
// paths), workload evaluation, and each declustering algorithm.
//
// `--csv-dir <dir>` additionally writes <dir>/BENCH_micro.json
// (google-benchmark's JSON format; compare runs with tools/bench_diff).
// All other flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "pgf/core/build_cache.hpp"
#include "pgf/decluster/registry.hpp"
#include "pgf/decluster/similarity.hpp"
#include "pgf/decluster/weights.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/sfc/hilbert.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/storage/replacement.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/util/thread_pool.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

namespace pgf {
namespace {

void BM_HilbertIndex2d(benchmark::State& state) {
    const auto bits = static_cast<unsigned>(state.range(0));
    Rng rng(1);
    std::vector<std::uint32_t> coords(2);
    const std::uint32_t mask = bits == 32 ? ~0u : (1u << bits) - 1;
    for (auto _ : state) {
        coords[0] = rng.next_u32() & mask;
        coords[1] = rng.next_u32() & mask;
        benchmark::DoNotOptimize(sfc::hilbert_index(coords, bits));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertIndex2d)->Arg(4)->Arg(8)->Arg(16);

void BM_HilbertIndex4d(benchmark::State& state) {
    Rng rng(1);
    std::vector<std::uint32_t> coords(4);
    for (auto _ : state) {
        for (auto& c : coords) c = rng.next_u32() & 0xff;
        benchmark::DoNotOptimize(sfc::hilbert_index(coords, 8));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertIndex4d);

void BM_ProximityIndex(benchmark::State& state) {
    Rng rng(2);
    auto ds = make_hotspot2d(rng, 10000);
    GridStructure gs = ds.build().structure();
    BucketWeights w(gs);
    std::size_t i = 0, j = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(w(i, j));
        if (++j >= w.size()) {
            j = 0;
            if (++i >= w.size()) i = 0;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProximityIndex);

/// D-dimensional Cartesian structure with side^D buckets and a different
/// domain extent per dimension (so no term degenerates to a constant).
GridStructure kernel_structure(std::size_t dims, std::uint32_t side) {
    std::vector<std::uint32_t> shape(dims, side);
    std::vector<double> lo(dims, 0.0);
    std::vector<double> hi(dims);
    for (std::size_t i = 0; i < dims; ++i) {
        hi[i] = static_cast<double>(side) * static_cast<double>(i + 1);
    }
    return make_cartesian_structure(shape, lo, hi);
}

std::string kernel_label(const GridStructure& gs) {
    return "D=" + std::to_string(gs.dims()) +
           " N=" + std::to_string(gs.bucket_count());
}

// Baseline the row kernels are judged against: one full weight row
// computed through the scalar pair interface.
void BM_ProximityRowScalar(benchmark::State& state) {
    GridStructure gs =
        kernel_structure(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::uint32_t>(state.range(1)));
    BucketWeights w(gs);
    const std::size_t n = w.size();
    std::vector<double> row(n);
    std::size_t i = 0;
    for (auto _ : state) {
        for (std::size_t j = 0; j < n; ++j) row[j] = w(i, j);
        benchmark::DoNotOptimize(row.data());
        benchmark::ClobberMemory();
        i = (i + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(kernel_label(gs));
}
BENCHMARK(BM_ProximityRowScalar)
    ->Args({2, 32})->Args({2, 64})
    ->Args({3, 11})->Args({3, 16})
    ->Args({4, 6})->Args({4, 8});

void BM_ProximityRowKernel(benchmark::State& state) {
    GridStructure gs =
        kernel_structure(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::uint32_t>(state.range(1)));
    BucketWeights w(gs);
    const std::size_t n = w.size();
    std::vector<double> row(n);
    std::size_t i = 0;
    for (auto _ : state) {
        w.fill_row(i, row.data());
        benchmark::DoNotOptimize(row.data());
        benchmark::ClobberMemory();
        i = (i + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(kernel_label(gs));
}
BENCHMARK(BM_ProximityRowKernel)
    ->Args({2, 32})->Args({2, 64})
    ->Args({3, 11})->Args({3, 16})
    ->Args({4, 6})->Args({4, 8});

void BM_ProximityTileKernel(benchmark::State& state) {
    GridStructure gs =
        kernel_structure(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::uint32_t>(state.range(1)));
    BucketWeights w(gs);
    const std::size_t n = w.size();
    constexpr std::size_t kRows = 32;
    std::vector<double> tile(kRows * n);
    std::size_t r = 0;
    std::int64_t items = 0;
    for (auto _ : state) {
        const std::size_t end = std::min(r + kRows, n);
        w.fill_tile(r, end, 0, n, tile.data());
        benchmark::DoNotOptimize(tile.data());
        benchmark::ClobberMemory();
        items += static_cast<std::int64_t>((end - r) * n);
        r = end >= n ? 0 : end;
    }
    state.SetItemsProcessed(items);
    state.SetLabel(kernel_label(gs));
}
BENCHMARK(BM_ProximityTileKernel)
    ->Args({2, 64})->Args({3, 16})->Args({4, 8});

void BM_CenterRowScalar(benchmark::State& state) {
    GridStructure gs = kernel_structure(2, 64);
    BucketWeights w(gs, WeightKind::kCenterSimilarity);
    const std::size_t n = w.size();
    std::vector<double> row(n);
    std::size_t i = 0;
    for (auto _ : state) {
        for (std::size_t j = 0; j < n; ++j) row[j] = w(i, j);
        benchmark::DoNotOptimize(row.data());
        benchmark::ClobberMemory();
        i = (i + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(kernel_label(gs));
}
BENCHMARK(BM_CenterRowScalar);

void BM_CenterRowKernel(benchmark::State& state) {
    GridStructure gs = kernel_structure(2, 64);
    BucketWeights w(gs, WeightKind::kCenterSimilarity);
    const std::size_t n = w.size();
    std::vector<double> row(n);
    std::size_t i = 0;
    for (auto _ : state) {
        w.fill_row(i, row.data());
        benchmark::DoNotOptimize(row.data());
        benchmark::ClobberMemory();
        i = (i + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    state.SetLabel(kernel_label(gs));
}
BENCHMARK(BM_CenterRowKernel);

// Whole-algorithm effect of the inner pool on a 4096-bucket structure
// (the README Performance table is generated from these).
void BM_MstInnerThreads(benchmark::State& state) {
    const auto threads = static_cast<unsigned>(state.range(0));
    GridStructure gs = kernel_structure(2, 64);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
    SimilarityOptions opt;
    opt.pool = pool.get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mst_decluster(gs, 16, opt));
    }
    state.SetLabel("N=" + std::to_string(gs.bucket_count()) +
                   " inner-threads=" + std::to_string(threads));
}
BENCHMARK(BM_MstInnerThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SspInnerThreads(benchmark::State& state) {
    const auto threads = static_cast<unsigned>(state.range(0));
    GridStructure gs = kernel_structure(2, 64);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
    SimilarityOptions opt;
    opt.pool = pool.get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ssp_decluster(gs, 16, opt));
    }
    state.SetLabel("N=" + std::to_string(gs.bucket_count()) +
                   " inner-threads=" + std::to_string(threads));
}
BENCHMARK(BM_SspInnerThreads)->Arg(1)->Arg(2)->Arg(4);

template <std::size_t D>
Rect<D> build_domain() {
    Rect<D> r;
    for (std::size_t i = 0; i < D; ++i) {
        r.lo[i] = 0.0;
        r.hi[i] = 2000.0;
    }
    return r;
}

template <std::size_t D>
std::vector<Point<D>> uniform_points(std::size_t n) {
    Rng rng(3);
    std::vector<Point<D>> pts(n);
    for (Point<D>& p : pts) {
        for (std::size_t i = 0; i < D; ++i) p[i] = rng.uniform(0.0, 2000.0);
    }
    return pts;
}

// Construction baseline: the one-record-at-a-time insert() path.
template <std::size_t D>
void BM_GridFileInsert(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto pts = uniform_points<D>(n);
    for (auto _ : state) {
        GridFile<D> gf(build_domain<D>(), {.bucket_capacity = 56});
        for (std::size_t i = 0; i < n; ++i) gf.insert(pts[i], i);
        benchmark::DoNotOptimize(gf.bucket_count());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK_TEMPLATE(BM_GridFileInsert, 2)->Arg(10000)->Arg(100000);
BENCHMARK_TEMPLATE(BM_GridFileInsert, 3)->Arg(10000)->Arg(100000);

// The batched fast path — must stay structurally identical to the insert
// loop (tests/gridfile/test_bulk_load.cpp) while winning on throughput.
template <std::size_t D>
void BM_GridFileBuildBulk(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto pts = uniform_points<D>(n);
    for (auto _ : state) {
        GridFile<D> gf(build_domain<D>(), {.bucket_capacity = 56});
        gf.bulk_load(pts);
        benchmark::DoNotOptimize(gf.bucket_count());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK_TEMPLATE(BM_GridFileBuildBulk, 2)->Arg(10000)->Arg(100000);
BENCHMARK_TEMPLATE(BM_GridFileBuildBulk, 3)->Arg(10000)->Arg(100000);

// This binary does not link pgf_bench_common, so it carries its own
// collision-free backing-path helper for the disk-backed benchmarks.
std::string paged_backing_path(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    return (std::filesystem::temp_directory_path() /
            ("pgf-micro-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)) + ".paged"))
        .string();
}

// Disk-backed construction: the same batched bulk load, but every bucket
// mutation round-trips through the page codec and the LRU buffer pool
// (sized so the working set stays resident — the honest "paging tax"
// floor). Compare against BM_GridFileBuildBulk at equal capacity.
template <std::size_t D>
void BM_PagedBuild(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto pts = uniform_points<D>(n);
    const std::string path = paged_backing_path("build");
    typename PagedGridFile<D>::Config cfg;
    cfg.page_size = PagedBucketStore<D>::page_size_for(56);
    cfg.pool_pages = 8192;
    for (auto _ : state) {
        PagedGridFile<D> pf(path, build_domain<D>(), cfg);
        pf.bulk_load(pts);
        benchmark::DoNotOptimize(pf.bucket_count());
    }
    std::filesystem::remove(path);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK_TEMPLATE(BM_PagedBuild, 2)->Arg(10000)->Arg(100000);
BENCHMARK_TEMPLATE(BM_PagedBuild, 3)->Arg(10000)->Arg(100000);

// Directory growth in isolation: grow 1x1 to side x side by alternating
// axis expansions (the run-copying rewrite's target operation).
void BM_DirectoryExpand(benchmark::State& state) {
    const auto side = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        GridDirectory<2> dir(0);
        for (std::uint32_t s = 1; s < side; ++s) {
            dir.expand(0, s - 1);
            dir.expand(1, s - 1);
        }
        benchmark::DoNotOptimize(dir.cell_count());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel("1x1 -> " + std::to_string(side) + "x" +
                   std::to_string(side));
}
BENCHMARK(BM_DirectoryExpand)->Arg(64)->Arg(128);

// Hit path of the workbench cache: key construction + lookup + Rng replay.
void BM_BuildCacheHit(benchmark::State& state) {
    BuildCache cache;
    const auto build = [](Rng& r) { return make_hotspot2d(r, 10000).build(); };
    {
        Rng rng(3);
        BuildKey key{"hotspot.2d", rng.state(), 10000, 2, 0};
        (void)cache.get_or_build<GridFile<2>>(key, rng, build);  // warm
    }
    for (auto _ : state) {
        Rng rng(3);
        BuildKey key{"hotspot.2d", rng.state(), 10000, 2, 0};
        benchmark::DoNotOptimize(
            cache.get_or_build<GridFile<2>>(key, rng, build));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildCacheHit);

void BM_GridFileRangeQuery(benchmark::State& state) {
    Rng rng(4);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    Rng qrng(5);
    auto queries = square_queries(ds.domain, 0.05, 512, qrng);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gf.query_buckets(queries[q]));
        q = (q + 1) % queries.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridFileRangeQuery);

void BM_GridFileRangeQueryScratch(benchmark::State& state) {
    // The allocation-free hot path: same workload as BM_GridFileRangeQuery
    // but with an epoch-stamped QueryScratch and a reused output vector.
    Rng rng(4);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    Rng qrng(5);
    auto queries = square_queries(ds.domain, 0.05, 512, qrng);
    QueryScratch scratch;
    std::vector<std::uint32_t> out;
    std::size_t q = 0;
    for (auto _ : state) {
        gf.query_buckets(queries[q], scratch, out);
        benchmark::DoNotOptimize(out.data());
        q = (q + 1) % queries.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridFileRangeQueryScratch);

// Record materialization from the in-memory store: the baseline for the
// paged variant below (same dataset, same 512 queries).
void BM_GridFileQueryRecords(benchmark::State& state) {
    Rng rng(4);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    Rng qrng(5);
    auto queries = square_queries(ds.domain, 0.05, 512, qrng);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gf.query_records(queries[q]));
        q = (q + 1) % queries.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GridFileQueryRecords);

// Record materialization through the buffer pool. The argument is the pool
// size in frames: 1024 keeps every bucket resident after the first pass
// (pure decode cost), 16 forces evictions and re-reads on every query.
void BM_PagedQueryRecords(benchmark::State& state) {
    Rng rng(4);
    auto ds = make_hotspot2d(rng, 10000);
    const std::string path = paged_backing_path("query");
    PagedGridFile<2>::Config cfg;
    cfg.page_size = PagedBucketStore<2>::page_size_for(ds.bucket_capacity);
    cfg.pool_pages = static_cast<std::size_t>(state.range(0));
    PagedGridFile<2> pf(path, ds.domain, cfg);
    pf.bulk_load(ds.points);
    Rng qrng(5);
    auto queries = square_queries(ds.domain, 0.05, 512, qrng);
    std::size_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pf.query_records(queries[q]));
        q = (q + 1) % queries.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::to_string(pf.bucket_count()) + " buckets, " +
                   std::to_string(cfg.pool_pages) + " frames");
    std::filesystem::remove(path);
}
BENCHMARK(BM_PagedQueryRecords)->Arg(1024)->Arg(16);

// Victim selection in isolation: a saturated pool of F frames where every
// round touches one random frame, asks for a victim, evicts it, and
// installs a new page in its place — the replacement-metadata hot path of
// an eviction-bound build. The indexed policies (lru's intrusive list,
// lru-k's and lfu's ordered sets) keep this O(log F) or better; a linear
// argmin scan would be O(F) per round and dominate eviction cost at
// 4096-frame pools (the flat scaling across the frame sweep is the point).
void BM_PoolVictimSelection(benchmark::State& state) {
    const auto frames = static_cast<std::size_t>(state.range(0));
    BufferPoolConfig cfg;
    cfg.policy = static_cast<ReplacementPolicy>(state.range(1));
    auto replacer = make_replacer(cfg, frames);
    Mutex latch;
    MutexLock lock(latch);
    std::uint64_t next_page = 0;
    std::vector<std::uint64_t> page_of(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        page_of[f] = next_page;
        replacer->on_insert(f, next_page++, latch);
    }
    const std::vector<bool> evictable(frames, true);
    const EvictableView view(evictable);
    Rng rng(6);
    for (auto _ : state) {
        replacer->on_access(rng.below(static_cast<std::uint32_t>(frames)),
                            latch);
        const std::size_t victim = replacer->victim(view, latch);
        replacer->on_evict(victim, page_of[victim], latch);
        page_of[victim] = next_page;
        replacer->on_insert(victim, next_page++, latch);
        benchmark::DoNotOptimize(victim);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.SetLabel(std::string(to_string(cfg.policy)) + ", " +
                   std::to_string(frames) + " frames");
}
BENCHMARK(BM_PoolVictimSelection)
    ->ArgsProduct({{256, 1024, 4096},
                   {static_cast<std::int64_t>(ReplacementPolicy::kLru),
                    static_cast<std::int64_t>(ReplacementPolicy::kLruK),
                    static_cast<std::int64_t>(ReplacementPolicy::kLfu)}});

void BM_EvaluateWorkload(benchmark::State& state) {
    // The inner loop of every sweep configuration: precollected bucket
    // sets evaluated against one assignment (epoch-stamped per-disk
    // counters, no per-query histogram allocation).
    Rng rng(4);
    auto ds = make_hotspot2d(rng, 10000);
    GridFile<2> gf = ds.build();
    Rng qrng(5);
    auto qb = collect_query_buckets(
        gf, square_queries(ds.domain, 0.05, 1000, qrng));
    Assignment a =
        decluster(gf.structure(), Method::kHilbert, 16, {.seed = 7});
    for (auto _ : state) {
        benchmark::DoNotOptimize(evaluate_workload(qb, a));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(qb.size()));
}
BENCHMARK(BM_EvaluateWorkload);

void BM_Decluster(benchmark::State& state) {
    const Method method = static_cast<Method>(state.range(0));
    const auto disks = static_cast<std::uint32_t>(state.range(1));
    Rng rng(6);
    auto ds = make_hotspot2d(rng, 10000);
    GridStructure gs = ds.build().structure();
    for (auto _ : state) {
        benchmark::DoNotOptimize(decluster(gs, method, disks, {.seed = 7}));
    }
    state.SetLabel(to_string(method) + " M=" + std::to_string(disks) + " N=" +
                   std::to_string(gs.bucket_count()));
}
BENCHMARK(BM_Decluster)
    ->Args({static_cast<int>(Method::kDiskModulo), 16})
    ->Args({static_cast<int>(Method::kFieldwiseXor), 16})
    ->Args({static_cast<int>(Method::kHilbert), 16})
    ->Args({static_cast<int>(Method::kSsp), 16})
    ->Args({static_cast<int>(Method::kMinimax), 16})
    ->Args({static_cast<int>(Method::kMinimax), 32});

void BM_MinimaxScalesQuadratically(benchmark::State& state) {
    // O(N^2) scaling of Algorithm 2 in the number of buckets.
    const auto points = static_cast<std::size_t>(state.range(0));
    Rng rng(8);
    auto ds = make_hotspot2d(rng, points);
    GridStructure gs = ds.build().structure();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            decluster(gs, Method::kMinimax, 16, {.seed = 9}));
    }
    state.SetComplexityN(static_cast<std::int64_t>(gs.bucket_count()));
}
BENCHMARK(BM_MinimaxScalesQuadratically)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(20000)
    ->Arg(40000)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace pgf

// Custom main instead of benchmark_main: translates the harness-wide
// `--csv-dir <dir>` convention into google-benchmark's JSON file output
// (<dir>/BENCH_micro.json) so CI can archive machine-readable timings.
int main(int argc, char** argv) {
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 2);
    std::string csv_dir;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv-dir" && i + 1 < argc) {
            csv_dir = argv[++i];
        } else if (arg.rfind("--csv-dir=", 0) == 0) {
            csv_dir = arg.substr(std::string("--csv-dir=").size());
        } else {
            args.push_back(arg);
        }
    }
    if (!csv_dir.empty()) {
        args.push_back("--benchmark_out=" + csv_dir + "/BENCH_micro.json");
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char*> argv2;
    argv2.reserve(args.size());
    for (std::string& a : args) argv2.push_back(a.data());
    int argc2 = static_cast<int>(argv2.size());
    benchmark::Initialize(&argc2, argv2.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
