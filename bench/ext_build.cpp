// Extension experiment — out-of-core build pipeline throughput.
//
// The streaming loader (ExtSorter -> bulk_load_stream, pgf/core/extsort.hpp)
// claims grid files of 10^7-10^8 records build through the paged backend
// with memory bounded by the buffer pool plus one sort chunk, instead of
// materializing every point (and the whole file) in RAM. This bench
// measures that claim end to end: points are *generated* as a stream
// (never held as a vector), keyed and sorted externally along the Hilbert
// curve, then bulk-loaded in Hilbert order through the batched paged
// store, sweeping
//
//   N            {10^6, 10^7}  (10^8 opt-in via PGF_EXTBUILD_HUGE=1;
//                               PGF_EXTBUILD_N=<n> overrides the list —
//                               the CI smoke lane runs N=10^6 only)
//   pool pages   {1024, 4096}  (the *entire* build-side page cache)
//   sort threads {1, 4}        (run-formation parallelism; the output is
//                               bit-identical across thread counts)
//
// and reporting build rate (records/sec), spill volume, merge fan-in /
// passes, process peak RSS, and post-build query latency against the
// freshly built file (p50/p99 over square queries, cold pool). RSS is
// ru_maxrss — a process-lifetime high-water mark, so within one process
// the meaningful reading is the first cell of each N (cells run smallest
// N first; the 10^7 rows therefore report the pipeline's true footprint).
//
// Correctness anchor: at N <= 10^6 the streamed build is compared
// structurally — scales, directory, every bucket's record order — against
// an in-memory GridFile bulk-loaded with the same sorted sequence; any
// divergence aborts with exit 1 (the tests assert this at small N; the
// bench re-asserts it at full bench scale).
//
// --bench-json <file> writes schema pgf-bench-extbuild-v1 (understood by
// tools/bench_diff, which gates on ns/record and query p99).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/resource.h>
#endif

#include "common.hpp"

#include "pgf/core/extsort.hpp"
#include "pgf/core/point_source.hpp"

namespace pgf::bench {
namespace {

using extsort::ExtSortConfig;
using extsort::ExtSorter;
using extsort::ExtSortStats;

/// One measured cell of the sweep.
struct CellResult {
    std::string name;  ///< "n=<N>/p=<pages>/t=<threads>"
    std::uint64_t records = 0;
    std::size_t pool_pages = 0;
    unsigned sort_threads = 0;
    ExtSortStats sort;
    unsigned hilbert_bits = 0;
    double sort_ms = 0.0;   ///< run formation + reduction (ExtSorter ctor)
    double load_ms = 0.0;   ///< streamed merge + bulk_load_stream + flush
    double peak_rss_mb = 0.0;
    BufferPool::Stats pool;  ///< build-side pool counters
    std::size_t queries = 0;
    double q_p50_ms = 0.0;
    double q_p99_ms = 0.0;
    bool verified = false;  ///< structural check vs in-memory ran and passed
};

double records_per_sec(const CellResult& r) {
    const double ms = r.sort_ms + r.load_ms;
    if (ms <= 0.0) return 0.0;
    return static_cast<double>(r.records) / (ms / 1000.0);
}

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Process peak RSS in MB (0 where getrusage is unavailable).
double peak_rss_mb() {
#ifndef _WIN32
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        // ru_maxrss is KB on Linux.
        return static_cast<double>(usage.ru_maxrss) / 1024.0;
    }
#endif
    return 0.0;
}

/// The sweep's N values: PGF_EXTBUILD_N overrides everything; otherwise
/// {1e6, 1e7} plus 1e8 when PGF_EXTBUILD_HUGE=1.
std::vector<std::uint64_t> record_counts() {
    if (const char* n = std::getenv("PGF_EXTBUILD_N")) {
        return {static_cast<std::uint64_t>(std::strtoull(n, nullptr, 10))};
    }
    std::vector<std::uint64_t> counts{1000000, 10000000};
    if (const char* huge = std::getenv("PGF_EXTBUILD_HUGE");
        huge && *huge == '1') {
        counts.push_back(100000000);
    }
    return counts;
}

/// Structural identity of the streamed paged build against an in-memory
/// bulk_load of the same sorted sequence. Returns false on any mismatch
/// (reported, not asserted — the bench exits 1).
bool verify_against_memory(const PagedGridFile<2>& pf,
                           const std::vector<Point<2>>& sorted) {
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = pf.capacity();
    GridFile<2> gf(pf.domain(), cfg);
    gf.bulk_load(sorted);

    auto fail = [](const std::string& what) {
        std::cerr << "ext_build: VERIFICATION FAILED (" << what << ")\n";
        return false;
    };
    if (gf.record_count() != pf.record_count()) return fail("record_count");
    if (gf.bucket_count() != pf.bucket_count()) return fail("bucket_count");
    if (gf.refinement_count() != pf.refinement_count()) {
        return fail("refinement_count");
    }
    for (std::size_t i = 0; i < 2; ++i) {
        if (gf.scale(i).splits() != pf.scale(i).splits()) {
            return fail("scale " + std::to_string(i));
        }
    }
    if (gf.grid_shape() != pf.grid_shape()) return fail("grid_shape");
    bool dirs_equal = true;
    CellBox<2> all;
    all.lo.fill(0);
    all.hi = gf.grid_shape();
    for_each_cell(all, [&](const std::array<std::uint32_t, 2>& cell) {
        dirs_equal = dirs_equal && gf.directory().at(cell) ==
                                       pf.directory().at(cell);
    });
    if (!dirs_equal) return fail("directory");
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const auto& mem = gf.bucket_records(b);
        const auto& paged = pf.bucket_records(b);
        if (mem.size() != paged.size()) {
            return fail("bucket " + std::to_string(b) + " size");
        }
        for (std::size_t k = 0; k < mem.size(); ++k) {
            if (mem[k].id != paged[k].id || mem[k].point != paged[k].point) {
                return fail("bucket " + std::to_string(b) + " record " +
                            std::to_string(k));
            }
        }
    }
    return true;
}

bool write_extbuild_json(const Options& opt, const std::string& path,
                         const std::vector<CellResult>& results) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench-json] FAILED to write " << path << "\n";
        return false;
    }
    out << "{\n"
        << "  \"schema\": \"pgf-bench-extbuild-v1\",\n"
        << "  \"binary\": \"ext_build\",\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult& r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"records\": "
            << r.records << ", \"pool_pages\": " << r.pool_pages
            << ", \"sort_threads\": " << r.sort_threads
            << ", \"hilbert_bits\": " << r.hilbert_bits
            << ", \"initial_runs\": " << r.sort.initial_runs
            << ", \"merge_passes\": " << r.sort.merge_passes
            << ", \"final_fan_in\": " << r.sort.final_fan_in
            << ", \"spill_bytes\": " << r.sort.spill_bytes
            << ", \"sort_ms\": " << r.sort_ms
            << ", \"load_ms\": " << r.load_ms
            << ", \"records_per_sec\": " << records_per_sec(r)
            << ", \"peak_rss_mb\": " << r.peak_rss_mb
            << ", \"pool_misses\": " << r.pool.misses
            << ", \"pool_evictions\": " << r.pool.evictions
            << ", \"queries\": " << r.queries
            << ", \"q_p50_ms\": " << r.q_p50_ms
            << ", \"q_p99_ms\": " << r.q_p99_ms
            << ", \"verified\": " << (r.verified ? "true" : "false") << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench-json] " << path << "\n";
    return true;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt,
                 "Extension — out-of-core build pipeline throughput",
                 "streamed uniform.2d points -> external Hilbert sort -> "
                 "batched bulk load into the paged backend; build rate, "
                 "spill volume, peak RSS and post-build query latency vs "
                 "N x pool-pages x sort-threads");

    const std::vector<std::uint64_t> counts = record_counts();
    const std::vector<std::size_t> pool_sweep{1024, 4096};
    const std::vector<unsigned> thread_sweep{1, 4};
    // Post-build probe: modest square queries, cold pool, exact quantiles.
    const std::size_t probe_queries = std::min<std::size_t>(opt.queries, 500);

    std::vector<CellResult> results;
    bool verified_ok = true;
    for (std::uint64_t n : counts) {
        TextTable table({"n", "pool", "thr", "runs", "passes", "spill MB",
                         "sort ms", "load ms", "Mrec/s", "rss MB", "q p50 ms",
                         "q p99 ms"});
        // The in-memory golden build wants the sorted sequence; collect it
        // once per N (same seed => every cell streams identical points).
        const bool verify = n <= 1000000;
        for (std::size_t pool_pages : pool_sweep) {
            for (unsigned threads : thread_sweep) {
                StreamDataset<2> ds =
                    make_uniform2d_stream(Rng(opt.seed), n);
                ThreadPool sort_pool(threads);
                ExtSortConfig cfg;
                cfg.pool = &sort_pool;

                CellResult r;
                r.records = n;
                r.pool_pages = pool_pages;
                r.sort_threads = threads;
                r.name = "n=" + std::to_string(n) +
                         "/p=" + std::to_string(pool_pages) +
                         "/t=" + std::to_string(threads);

                double t0 = now_ms();
                ExtSorter<2> sorter(*ds.source, ds.domain, cfg);
                r.sort_ms = now_ms() - t0;
                r.sort = sorter.stats();
                r.hilbert_bits = sorter.config().hilbert_bits;

                PagedGridFile<2>::Config pcfg;
                pcfg.page_size =
                    PagedBucketStore<2>::page_size_for(ds.bucket_capacity);
                pcfg.pool_pages = pool_pages;
                PagedGridFile<2> pf(unique_backing_path("extbuild." + r.name),
                                    ds.domain, pcfg);
                t0 = now_ms();
                const std::uint64_t loaded = pf.bulk_load_stream(sorter);
                pf.flush();
                r.load_ms = now_ms() - t0;
                PGF_CHECK(loaded == n, "ext_build: stream count mismatch");
                r.pool = pf.pool().stats();
                r.peak_rss_mb = peak_rss_mb();

                if (verify) {
                    StreamDataset<2> again =
                        make_uniform2d_stream(Rng(opt.seed), n);
                    ExtSorter<2> resort(*again.source, ds.domain, cfg);
                    std::vector<Point<2>> sorted;
                    sorted.reserve(n);
                    std::vector<Point<2>> block(1 << 14);
                    for (;;) {
                        const std::size_t got = resort.next(
                            std::span<Point<2>>(block.data(), block.size()));
                        if (got == 0) break;
                        sorted.insert(sorted.end(), block.begin(),
                                      block.begin() +
                                          static_cast<std::ptrdiff_t>(got));
                    }
                    r.verified = verify_against_memory(pf, sorted);
                    verified_ok = verified_ok && r.verified;
                }

                // Query probe against the freshly built file (pool still
                // warm from the build's tail: realistic post-build state).
                Rng qrng(opt.seed + 31000);
                const auto probes =
                    square_queries(ds.domain, 0.001, probe_queries, qrng);
                LatencyHistogram lat;
                std::uint64_t total_records = 0;
                for (const Rect<2>& q : probes) {
                    const double qs = now_ms();
                    total_records += pf.query_records(q).size();
                    lat.record(now_ms() - qs);
                }
                PGF_CHECK(probes.empty() || total_records > 0,
                          "ext_build: probe queries returned nothing");
                r.queries = probes.size();
                r.q_p50_ms = lat.p50();
                r.q_p99_ms = lat.p99();

                table.add(n, pool_pages, threads, r.sort.initial_runs,
                          r.sort.merge_passes,
                          format_double(static_cast<double>(
                                            r.sort.spill_bytes) /
                                        (1024.0 * 1024.0)),
                          format_double(r.sort_ms),
                          format_double(r.load_ms),
                          format_double(records_per_sec(r) / 1e6),
                          format_double(r.peak_rss_mb),
                          format_double(r.q_p50_ms, 3),
                          format_double(r.q_p99_ms, 3));
                const std::string backing = pf.path();
                results.push_back(std::move(r));
                // pf closes at scope end; drop the backing file with it.
                std::remove(backing.c_str());
            }
        }
        emit(opt, table, "ext_build_n" + std::to_string(n));
    }

    if (!opt.bench_json.empty()) {
        write_extbuild_json(opt, opt.bench_json, results);
    }
    if (!verified_ok) {
        std::cerr << "ext_build: streamed build DIVERGED from the in-memory "
                     "bulk load\n";
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
