// Figure 5 — spatial distribution of the DSMC.3d and stock.3d datasets.
//
// The paper shows a histogram of particle population per fixed cell volume
// (DSMC.3d) and a stock-id vs price-slice scatter (stock.3d). This bench
// prints the same two views: an occupancy histogram for the DSMC cloud and
// an id x price occupancy map for the market data, plus the grid-file
// structural summaries quoted in Sec. 3.2 (DSMC.3d: 16x12x8 = 1536
// subspaces merged into 444 buckets; stock.3d: 32x22x9 = 6336 subspaces
// merged into 1218 buckets).
#include <iostream>

#include "common.hpp"

#include "pgf/util/stats.hpp"

namespace pgf::bench {
namespace {

void dsmc_panel(const Options& opt, Rng& rng) {
    auto wb = cached_workbench<3>(opt, "dsmc.3d", 52857, rng,
                                  [](Rng& r) { return make_dsmc3d(r); });
    const Workbench<3>& bench = *wb;
    std::cout << "\n" << bench.summary() << "  (paper: 52857 records, 1536 "
              << "subspaces -> 444 buckets)\n";
    // Histogram of particles per fixed 16x16x16 cell, like the paper's
    // molecule-population histogram.
    constexpr std::size_t kCells = 16;
    std::vector<std::size_t> occupancy(kCells * kCells * kCells, 0);
    for (const auto& p : bench.dataset.points) {
        auto ix = std::min<std::size_t>(
            static_cast<std::size_t>(p[0] * kCells), kCells - 1);
        auto iy = std::min<std::size_t>(
            static_cast<std::size_t>(p[1] * kCells), kCells - 1);
        auto iz = std::min<std::size_t>(
            static_cast<std::size_t>(p[2] * kCells), kCells - 1);
        ++occupancy[(ix * kCells + iy) * kCells + iz];
    }
    double max_occ = 0;
    for (auto o : occupancy) max_occ = std::max(max_occ, static_cast<double>(o));
    Histogram hist(0.0, max_occ + 1.0, 12);
    for (auto o : occupancy) hist.add(static_cast<double>(o));
    std::cout << "particles per (1/16)^3 cell (free stream = low bins, "
              << "compression front = long tail):\n"
              << hist.ascii(48);

    TextTable table({"axis", "grid cells"});
    auto shape = bench.gf.grid_shape();
    table.add("x", shape[0]);
    table.add("y", shape[1]);
    table.add("z", shape[2]);
    emit(opt, table, "fig5_dsmc3d_grid");
}

void stock_panel(const Options& opt, Rng& rng) {
    auto wb = cached_workbench<3>(opt, "stock.3d", 127026, rng,
                                  [](Rng& r) { return make_stock3d(r); });
    const Workbench<3>& bench = *wb;
    std::cout << "\n" << bench.summary() << "  (paper: 127026 records, 6336 "
              << "subspaces -> 1218 buckets)\n";
    // id (x-axis, 64 columns) vs price slice (y-axis, 24 rows) map.
    constexpr std::size_t kCols = 64, kRows = 24;
    std::vector<std::size_t> map(kCols * kRows, 0);
    const double id_max = bench.dataset.domain.hi[0];
    const double price_max = bench.dataset.domain.hi[1];
    for (const auto& p : bench.dataset.points) {
        auto c = std::min<std::size_t>(
            static_cast<std::size_t>(p[0] / id_max * kCols), kCols - 1);
        auto r = std::min<std::size_t>(
            static_cast<std::size_t>(p[1] / price_max * kRows), kRows - 1);
        ++map[r * kCols + c];
    }
    std::cout << "stock id (x) vs price slice (y) occupancy "
              << "(' ' none, '.' sparse, '#' dense):\n";
    for (std::size_t r = kRows; r-- > 0;) {
        for (std::size_t c = 0; c < kCols; ++c) {
            std::size_t v = map[r * kCols + c];
            std::cout << (v == 0 ? ' ' : v < 40 ? '.' : '#');
        }
        std::cout << "\n";
    }

    TextTable table({"axis", "grid cells"});
    auto shape = bench.gf.grid_shape();
    table.add("stock id", shape[0]);
    table.add("price", shape[1]);
    table.add("day", shape[2]);
    emit(opt, table, "fig5_stock3d_grid");
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 5 — dataset distributions (DSMC.3d, stock.3d)",
                 "occupancy views of the synthetic stand-ins; see DESIGN.md "
                 "section 3 for the substitution rationale");
    Rng rng(opt.seed);
    dsmc_panel(opt, rng);
    stock_panel(opt, rng);
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
