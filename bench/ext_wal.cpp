// Extension experiment — durability tax and recovery speed of the WAL.
//
// The durability layer (pgf/storage/wal.hpp + checksummed pages) claims
// crash safety costs a bounded build-throughput tax: every mutated bucket
// page is journaled as a physical image before the data file may write it
// (WAL-before-data, enforced by the buffer pool), but appends are buffered
// and group-flushed, so the tax is sequential-write bandwidth rather than
// per-op fsyncs. This bench measures the claim directly: the same
// point-at-a-time insert workload builds a paged grid file with the WAL
// off (the historical, byte-identical-output path) and on, sweeping
//
//   N            {20000, 100000}  (PGF_WAL_N=<n> overrides the list —
//                                  the CI smoke lane runs N=20000 only)
//   pool pages   {256}            (small enough that eviction-driven
//                                  flush_up_to ordering is on the path)
//
// and reporting build rate, the WAL tax (relative slowdown), journal
// volume, and group-flush counts. A third row per N measures recovery:
// a fault injector crashes an identical build halfway through its
// durability-relevant writes, replay_wal reconstructs the grid from the
// crash state, and the row reports wall time, pages replayed, and records
// recovered. Correctness anchors: WAL-on and WAL-off builds must produce
// identical structures (journaling may never perturb the engine), and the
// recovered file must pass the deep paged audit; any violation exits 1.
//
// --bench-json <file> writes schema pgf-bench-wal-v1 (understood by
// tools/bench_diff, which gates on ns/record and recovery wall time).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

#include "pgf/analysis/paged_audit.hpp"
#include "pgf/storage/fault_injection.hpp"
#include "pgf/storage/recovery.hpp"

namespace pgf::bench {
namespace {

/// One measured cell: a build (wal on/off) or a recovery replay.
struct CellResult {
    std::string name;  ///< "n=<N>/wal=<on|off>" or "n=<N>/recover"
    std::uint64_t records = 0;
    bool wal = false;
    double build_ms = 0.0;
    double records_per_sec = 0.0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t wal_flushes = 0;
    std::uint64_t pool_evictions = 0;
    double recover_ms = 0.0;  ///< recovery rows only
    std::uint64_t pages_replayed = 0;
};

double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<std::uint64_t> record_counts() {
    if (const char* n = std::getenv("PGF_WAL_N")) {
        return {static_cast<std::uint64_t>(std::strtoull(n, nullptr, 10))};
    }
    return {20000, 100000};
}

/// The workload every cell replays: N uniform points, inserted one at a
/// time (the journaled path — bulk load batches sessions differently).
std::vector<Point<2>> workload_points(std::uint64_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Point<2>> pts(n);
    for (auto& p : pts) {
        p[0] = rng.uniform();
        p[1] = rng.uniform();
    }
    return pts;
}

PagedGridFile<2>::Config cell_config(const std::string& wal_path,
                                     FaultInjector* injector) {
    PagedGridFile<2>::Config cfg;
    cfg.page_size = PagedBucketStore<2>::page_size_for(32);
    cfg.pool_pages = 256;
    cfg.wal_path = wal_path;
    cfg.fault_injector = injector;
    return cfg;
}

/// Cheap structural fingerprint for the on-vs-off anchor.
struct Shape {
    std::size_t records = 0;
    std::size_t buckets = 0;
    std::size_t refinements = 0;
};

bool write_wal_json(const Options& opt, const std::string& path,
                    const std::vector<CellResult>& results) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "[bench-json] FAILED to write " << path << "\n";
        return false;
    }
    out << "{\n"
        << "  \"schema\": \"pgf-bench-wal-v1\",\n"
        << "  \"binary\": \"ext_wal\",\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult& r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"records\": "
            << r.records << ", \"wal\": " << (r.wal ? "true" : "false")
            << ", \"build_ms\": " << r.build_ms
            << ", \"records_per_sec\": " << r.records_per_sec
            << ", \"wal_bytes\": " << r.wal_bytes
            << ", \"wal_flushes\": " << r.wal_flushes
            << ", \"pool_evictions\": " << r.pool_evictions
            << ", \"recover_ms\": " << r.recover_ms
            << ", \"pages_replayed\": " << r.pages_replayed << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cerr << "[bench-json] " << path << "\n";
    return true;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Extension — WAL durability tax and recovery speed",
                 "point-at-a-time inserts into the paged backend with the "
                 "write-ahead log off vs on (same workload, same pool), "
                 "plus timed crash recovery via replay_wal");

    std::vector<CellResult> results;
    bool anchors_ok = true;
    for (std::uint64_t n : record_counts()) {
        const auto pts = workload_points(n, opt.seed);
        TextTable table({"n", "wal", "build ms", "krec/s", "wal MB",
                         "flushes", "evict", "tax %"});
        Shape shapes[2];
        double off_ms = 0.0;

        for (const bool wal_on : {false, true}) {
            const std::string backing = unique_backing_path(
                "wal." + std::to_string(n) + (wal_on ? ".on" : ".off"));
            const std::string wal_path = wal_on ? backing + ".wal" : "";
            CellResult r;
            r.name = "n=" + std::to_string(n) +
                     "/wal=" + (wal_on ? "on" : "off");
            r.records = n;
            r.wal = wal_on;
            {
                Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
                auto cfg = cell_config(wal_path, nullptr);
                const double t0 = now_ms();
                PagedGridFile<2> pf(backing, domain, cfg);
                for (std::size_t i = 0; i < pts.size(); ++i) {
                    pf.insert(pts[i], i);
                }
                pf.flush();
                r.build_ms = now_ms() - t0;
                r.pool_evictions = pf.pool().stats().evictions;
                if (wal_on && pf.wal() != nullptr) {
                    r.wal_flushes = pf.wal()->stats().flushes;
                }
                shapes[wal_on ? 1 : 0] = {pf.record_count(),
                                          pf.bucket_count(),
                                          pf.refinement_count()};
            }
            if (wal_on) {
                r.wal_bytes = static_cast<std::uint64_t>(
                    std::filesystem::file_size(wal_path));
            } else {
                off_ms = r.build_ms;
            }
            r.records_per_sec = r.build_ms > 0.0
                                    ? static_cast<double>(n) /
                                          (r.build_ms / 1000.0)
                                    : 0.0;
            const double tax =
                wal_on && off_ms > 0.0
                    ? 100.0 * (r.build_ms - off_ms) / off_ms
                    : 0.0;
            table.add(n, wal_on ? "on" : "off", format_double(r.build_ms),
                      format_double(r.records_per_sec / 1000.0),
                      format_double(static_cast<double>(r.wal_bytes) /
                                    (1024.0 * 1024.0)),
                      r.wal_flushes, r.pool_evictions,
                      wal_on ? format_double(tax) : "-");
            results.push_back(r);
            std::remove(backing.c_str());
            if (wal_on) std::remove(wal_path.c_str());
        }
        if (shapes[0].records != shapes[1].records ||
            shapes[0].buckets != shapes[1].buckets ||
            shapes[0].refinements != shapes[1].refinements) {
            std::cerr << "ext_wal: WAL-on build DIVERGED from WAL-off\n";
            anchors_ok = false;
        }

        // Recovery cell: crash an identical build halfway through its
        // durability-relevant writes, then time the replay.
        {
            const std::string backing =
                unique_backing_path("wal." + std::to_string(n) + ".crash");
            const std::string wal_path = backing + ".wal";
            Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};

            // Pass 1 counts the injection points (kUnlimited never fires).
            std::uint64_t total_ops = 0;
            {
                FaultInjector counter;
                auto cfg = cell_config(wal_path, &counter);
                PagedGridFile<2> pf(backing, domain, cfg);
                const std::uint64_t base = counter.ops_seen();
                for (std::size_t i = 0; i < pts.size(); ++i) {
                    pf.insert(pts[i], i);
                }
                pf.flush();
                total_ops = counter.ops_seen() - base;
            }
            std::remove(backing.c_str());
            std::remove(wal_path.c_str());

            FaultInjector injector;
            auto cfg = cell_config(wal_path, &injector);
            {
                PagedGridFile<2> pf(backing, domain, cfg);
                injector.arm(total_ops / 2);
                try {
                    for (std::size_t i = 0; i < pts.size(); ++i) {
                        pf.insert(pts[i], i);
                    }
                    pf.flush();
                } catch (const CrashError&) {
                    // expected: the crash state stays on disk
                }
            }
            PGF_CHECK(injector.crashed(),
                      "ext_wal: the injected crash never fired");

            CellResult r;
            r.name = "n=" + std::to_string(n) + "/recover";
            r.wal = true;
            const double t0 = now_ms();
            auto rcfg = cell_config(wal_path, nullptr);
            PagedGridFile<2> pf(PagedGridFile<2>::RecoverTag{}, backing,
                                rcfg);
            r.recover_ms = now_ms() - t0;
            r.records = pf.record_count();
            r.pages_replayed = pf.recovery_stats().pages_replayed;
            r.wal_bytes = static_cast<std::uint64_t>(
                std::filesystem::file_size(wal_path));
            const auto report = analysis::audit_paged_grid_file(
                pf, analysis::ValidationLevel::kDeep);
            if (!report.ok()) {
                std::cerr << "ext_wal: recovered file FAILED the deep "
                             "audit\n"
                          << report.summary() << "\n";
                anchors_ok = false;
            }
            std::cout << "recovery: crash at write " << total_ops / 2
                      << "/" << total_ops << " -> " << r.records
                      << " records, " << r.pages_replayed
                      << " pages replayed in "
                      << format_double(r.recover_ms) << " ms (deep audit "
                      << (report.ok() ? "OK" : "FAILED") << ")\n";
            results.push_back(r);
            std::remove(backing.c_str());
            std::remove(wal_path.c_str());
        }
        emit(opt, table, "ext_wal_n" + std::to_string(n));
    }

    if (!opt.bench_json.empty()) {
        write_wal_json(opt, opt.bench_json, results);
    }
    return anchors_ok ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
