// Ablation — the linearization inside the curve allocation method.
//
// Sec. 2.3 of the paper cites the folklore that the Hilbert curve clusters
// better than column-wise scan, z-curve and Gray coding; HCAM builds on it.
// This bench swaps the curve inside the allocation method and measures the
// response-time consequence on hot.2d and stock.3d.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

template <std::size_t D>
void panel(const Options& opt, const Workbench<D>& bench, double ratio,
           ThreadPool* inner_pool) {
    std::cout << "\n" << bench.summary() << "\n";
    auto qb = bench.workload(ratio, opt.queries, opt.seed + 7000);
    TextTable table({"disks", "Hilbert", "Z-order", "Gray", "Scan",
                     "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kHilbert, Method::kMorton,
                              Method::kGrayCode, Method::kScan}) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 37;
            dopt.pool = inner_pool;  // ignored by these index-based methods
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "ablation_linearization_" + bench.dataset.name);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Ablation — linearization inside the curve allocation "
                      "method",
                 "Hilbert vs Z-order vs Gray vs row-major scan, data-balance "
                 "conflict resolution, r = 0.05 (2-d) / 0.01 (3-d)");
    auto inner_pool = make_inner_pool(opt);
    Rng rng(opt.seed);
    panel(opt,
          *cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                               [](Rng& r) { return make_hotspot2d(r); }),
          0.05, inner_pool.get());
    panel(opt,
          *cached_workbench<3>(opt, "stock.3d", 127026, rng,
                               [](Rng& r) { return make_stock3d(r); }),
          0.01, inner_pool.get());
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
