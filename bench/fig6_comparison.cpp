// Figure 6 — the five-way comparison: DM/D, FX/D, HCAM/D, SSP and MiniMax
// on hot.2d, DSMC.3d and stock.3d, r = 0.01.
//
// Expected shape (paper Sec. 3.3): minimax consistently smallest response
// (few exceptions at small M); SSP second; HCAM/D close behind, closing in
// as M grows; DM and FX distant fourth/fifth with early flattening —
// DSMC.3d flattens earlier than hot.2d because more of it is uniform.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

const std::vector<Method> kMethods{Method::kDiskModulo, Method::kFieldwiseXor,
                                   Method::kHilbert, Method::kSsp,
                                   Method::kMinimax};

struct Config {
    std::uint32_t disks = 0;
    Method method = Method::kDiskModulo;
};

struct Cell {
    double response = 0.0;
    double optimal = 0.0;
};

template <std::size_t D>
void panel(const Options& opt, SweepHarness& harness,
           const Workbench<D>& bench) {
    std::cout << "\n" << bench.summary() << "\n";
    auto qb = harness.timed("workload_" + bench.dataset.name, [&] {
        return bench.workload(0.01, opt.queries, opt.seed + 3000,
                              harness.pool());
    });

    std::vector<Config> configs;
    for (std::uint32_t m : disk_sweep()) {
        for (Method method : kMethods) configs.push_back({m, method});
    }
    auto cells = harness.sweep(
        "fig6_" + bench.dataset.name, configs,
        [&](const Config& c, const SweepTask&) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 13;
            dopt.pool = harness.inner_pool();
            Assignment a = decluster(bench.gs, c.method, c.disks, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            return Cell{s.avg_response, s.optimal};
        });

    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax",
                     "optimal"});
    std::size_t idx = 0;
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (std::size_t k = 0; k < kMethods.size(); ++k, ++idx) {
            row.push_back(format_double(cells[idx].response));
            optimal = cells[idx].optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "fig6_" + bench.dataset.name);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    SweepHarness harness(opt, "fig6_comparison");
    print_banner(opt, "Figure 6 — five-algorithm comparison, r = 0.01",
                 "avg response time (buckets); expected order at large M: "
                 "MiniMax < SSP <= HCAM/D << DM/D, FX/D");
    Rng rng(opt.seed);
    panel(opt, harness,
          *cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                               [](Rng& r) { return make_hotspot2d(r); }));
    panel(opt, harness,
          *cached_workbench<3>(opt, "dsmc.3d", 52857, rng,
                               [](Rng& r) { return make_dsmc3d(r); }));
    panel(opt, harness,
          *cached_workbench<3>(opt, "stock.3d", 127026, rng,
                               [](Rng& r) { return make_stock3d(r); }));
    return harness.write_timings() ? 0 : 1;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
