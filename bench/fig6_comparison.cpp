// Figure 6 — the five-way comparison: DM/D, FX/D, HCAM/D, SSP and MiniMax
// on hot.2d, DSMC.3d and stock.3d, r = 0.01.
//
// Expected shape (paper Sec. 3.3): minimax consistently smallest response
// (few exceptions at small M); SSP second; HCAM/D close behind, closing in
// as M grows; DM and FX distant fourth/fifth with early flattening —
// DSMC.3d flattens earlier than hot.2d because more of it is uniform.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

template <std::size_t D>
void panel(const Options& opt, const Workbench<D>& bench) {
    std::cout << "\n" << bench.summary() << "\n";
    auto qb = bench.workload(0.01, opt.queries, opt.seed + 3000);
    TextTable table({"disks", "DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax",
                     "optimal"});
    for (std::uint32_t m : disk_sweep()) {
        std::vector<std::string> row{std::to_string(m)};
        double optimal = 0.0;
        for (Method method : {Method::kDiskModulo, Method::kFieldwiseXor,
                              Method::kHilbert, Method::kSsp,
                              Method::kMinimax}) {
            DeclusterOptions dopt;
            dopt.seed = opt.seed + 13;
            Assignment a = decluster(bench.gs, method, m, dopt);
            WorkloadStats s = evaluate_workload(qb, a);
            row.push_back(format_double(s.avg_response));
            optimal = s.optimal;
        }
        row.push_back(format_double(optimal));
        table.add_row(std::move(row));
    }
    emit(opt, table, "fig6_" + bench.dataset.name);
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 6 — five-algorithm comparison, r = 0.01",
                 "avg response time (buckets); expected order at large M: "
                 "MiniMax < SSP <= HCAM/D << DM/D, FX/D");
    Rng rng(opt.seed);
    {
        Workbench<2> bench(make_hotspot2d(rng));
        panel(opt, bench);
    }
    {
        Workbench<3> bench(make_dsmc3d(rng));
        panel(opt, bench);
    }
    {
        Workbench<3> bench(make_stock3d(rng));
        panel(opt, bench);
    }
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
