#include "common.hpp"

#include <cstdlib>
#include <iostream>

namespace pgf::bench {

Options::Options(int argc, const char* const* argv) {
    Cli cli(argc, argv);
    csv_dir = cli.get_string("csv-dir", "");
    queries = static_cast<std::size_t>(cli.get_int("queries", 1000));
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const char* env = std::getenv("PGF_FULL_SCALE");
    full_scale = cli.get_bool("full", env != nullptr &&
                                          std::string(env) == "1");
}

void print_banner(const Options& opt, const std::string& experiment,
                  const std::string& note) {
    std::cout << "==============================================================\n"
              << experiment << "\n"
              << note << "\n"
              << "queries/config=" << opt.queries << " seed=" << opt.seed
              << (opt.full_scale ? " [full scale]" : "") << "\n"
              << "==============================================================\n";
}

void emit(const Options& opt, const TextTable& table, const std::string& name) {
    std::cout << "\n-- " << name << "\n";
    table.print(std::cout);
    if (!opt.csv_dir.empty()) {
        std::string path = opt.csv_dir + "/" + name + ".csv";
        if (table.write_csv(path)) {
            std::cout << "[csv] " << path << "\n";
        } else {
            std::cout << "[csv] FAILED to write " << path << "\n";
        }
    }
    std::cout.flush();
}

std::vector<std::uint32_t> disk_sweep() {
    std::vector<std::uint32_t> disks;
    for (std::uint32_t m = 4; m <= 32; m += 2) disks.push_back(m);
    return disks;
}

}  // namespace pgf::bench
