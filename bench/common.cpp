#include "common.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

namespace pgf::bench {
namespace {

unsigned default_threads() {
    if (const char* env = std::getenv("PGF_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<unsigned>(v);
    }
    return 0;  // resolved to hardware concurrency
}

bool default_build_cache() {
    if (const char* env = std::getenv("PGF_BUILD_CACHE")) {
        return std::string(env) != "0";
    }
    return true;
}

unsigned default_inner_threads() {
    if (const char* env = std::getenv("PGF_INNER_THREADS")) {
        const long v = std::atol(env);
        if (v >= 0) return static_cast<unsigned>(v);
    }
    return 1;  // inner scans stay serial unless asked for
}

std::string default_backend() {
    if (const char* env = std::getenv("PGF_BACKEND")) {
        if (*env != '\0') return env;
    }
    return "memory";
}

std::string default_policy() {
    if (const char* env = std::getenv("PGF_POLICY")) {
        if (*env != '\0') return env;
    }
    return "lru";
}

bool default_prefetch() {
    if (const char* env = std::getenv("PGF_PREFETCH")) {
        return std::string(env) != "0" && std::string(env) != "off";
    }
    return false;
}

/// Minimal JSON string escaping (paths and sweep names only).
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace

Options::Options(int argc, const char* const* argv) {
    Cli cli(argc, argv);
    csv_dir = cli.get_string("csv-dir", "");
    queries = static_cast<std::size_t>(cli.get_int("queries", 1000));
    seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    threads = static_cast<unsigned>(
        cli.get_int("threads", static_cast<std::int64_t>(default_threads())));
    inner_threads = static_cast<unsigned>(cli.get_int(
        "inner-threads", static_cast<std::int64_t>(default_inner_threads())));
    bench_json = cli.get_string("bench-json", "");
    build_cache = cli.get_bool("build-cache", default_build_cache());
    backend = cli.get_string("backend", default_backend());
    if (backend != "memory" && backend != "paged") {
        std::cerr << "unknown --backend '" << backend
                  << "' (expected memory|paged)\n";
        std::exit(2);
    }
    node_pool_pages =
        static_cast<std::size_t>(cli.get_int("node-pool-pages", 1024));
    policy = cli.get_string("policy", default_policy());
    if (!parse_policy(policy).has_value()) {
        std::cerr << "unknown --policy '" << policy
                  << "' (expected lru|lru-k|clock|2q|lfu)\n";
        std::exit(2);
    }
    prefetch = cli.get_bool("prefetch", default_prefetch());
    const char* env = std::getenv("PGF_FULL_SCALE");
    full_scale = cli.get_bool("full", env != nullptr &&
                                          std::string(env) == "1");
}

BufferPoolConfig Options::pool_config() const {
    BufferPoolConfig cfg;
    cfg.policy = parse_policy(policy).value();
    return cfg;
}

unsigned Options::resolved_threads() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned Options::resolved_inner_threads() const {
    if (inner_threads != 0) return inner_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

BuildCache& workbench_cache(const Options& opt) {
    // Function-local static so the cache outlives every workbench handle;
    // the enabled flag latches from the first Options (binaries parse
    // options exactly once, before any build).
    static BuildCache cache(opt.build_cache);
    return cache;
}

std::unique_ptr<ThreadPool> make_inner_pool(const Options& opt) {
    const unsigned threads = opt.resolved_inner_threads();
    if (threads <= 1) return nullptr;
    // parallelism = workers + the calling thread.
    return std::make_unique<ThreadPool>(threads - 1);
}

void print_banner(const Options& opt, const std::string& experiment,
                  const std::string& note) {
    std::cout << "==============================================================\n"
              << experiment << "\n"
              << note << "\n"
              << "queries/config=" << opt.queries << " seed=" << opt.seed
              << (opt.full_scale ? " [full scale]" : "") << "\n"
              << "==============================================================\n";
}

void emit(const Options& opt, const TextTable& table, const std::string& name) {
    std::cout << "\n-- " << name << "\n";
    table.print(std::cout);
    if (!opt.csv_dir.empty()) {
        std::string path = opt.csv_dir + "/" + name + ".csv";
        if (table.write_csv(path)) {
            std::cout << "[csv] " << path << "\n";
        } else {
            std::cout << "[csv] FAILED to write " << path << "\n";
        }
    }
    std::cout.flush();
}

std::vector<std::uint32_t> disk_sweep() {
    std::vector<std::uint32_t> disks;
    for (std::uint32_t m = 4; m <= 32; m += 2) disks.push_back(m);
    return disks;
}

std::string unique_backing_path(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    std::string safe;
    for (char c : tag) {
        safe += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                 c == '-')
                    ? c
                    : '_';
    }
    const char* tmp = std::getenv("TMPDIR");
    std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    return dir + "/pgf-bench-" + safe + "-" +
           std::to_string(static_cast<long long>(::getpid())) + "-" +
           std::to_string(counter.fetch_add(1)) + ".paged";
}

namespace {
std::unique_ptr<ThreadPool> make_sweep_pool(const Options& opt) {
    const unsigned threads = opt.resolved_threads();
    // parallelism = workers + the calling thread.
    if (threads > 1) return std::make_unique<ThreadPool>(threads - 1);
    return nullptr;
}
}  // namespace

// runner_ is initialized in the member list (pool_ is declared first):
// SweepRunner owns a stats mutex now, so it is neither movable nor
// reassignable after construction.
SweepHarness::SweepHarness(const Options& opt, std::string binary)
    : opt_(opt),
      binary_(std::move(binary)),
      pool_(make_sweep_pool(opt)),
      inner_pool_(make_inner_pool(opt)),
      runner_(pool_.get(), opt.seed) {}

double SweepHarness::now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void SweepHarness::record(const std::string& name, const SweepStats& stats) {
    entries_.push_back(Entry{name, stats.tasks, stats.wall_ms});
}

void SweepHarness::record_wall(const std::string& name, double wall_ms) {
    entries_.push_back(Entry{name, 0, wall_ms});
}

bool SweepHarness::write_timings() const {
    if (opt_.bench_json.empty()) return true;
    std::ofstream out(opt_.bench_json);
    if (!out) {
        std::cerr << "[bench-json] FAILED to write " << opt_.bench_json
                  << "\n";
        return false;
    }
    double total = 0.0;
    for (const Entry& e : entries_) total += e.wall_ms;
    out << "{\n"
        << "  \"schema\": \"pgf-bench-sweep-v1\",\n"
        << "  \"binary\": \"" << json_escape(binary_) << "\",\n"
        << "  \"threads\": " << opt_.resolved_threads() << ",\n"
        << "  \"inner_threads\": " << opt_.resolved_inner_threads() << ",\n"
        << "  \"seed\": " << opt_.seed << ",\n"
        << "  \"queries\": " << opt_.queries << ",\n"
        << "  \"total_wall_ms\": " << total << ",\n"
        << "  \"sweeps\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        out << "    {\"name\": \"" << json_escape(e.name)
            << "\", \"tasks\": " << e.tasks << ", \"wall_ms\": " << e.wall_ms
            << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    // stderr so stdout stays byte-identical across harness configurations.
    std::cerr << "[bench-json] " << opt_.bench_json << "\n";
    return true;
}

}  // namespace pgf::bench
