// Ablation — online (streaming) minimax vs the offline Algorithm 2.
//
// The paper's files grow (each simulation step appends a snapshot; each
// bucket split creates a new bucket), so a production deployment needs an
// incremental placement rule. This bench streams the final grid file's
// buckets through OnlineMinimax — in creation order and in random order —
// and compares response time and closest-pair quality against the offline
// algorithm and against a round-robin baseline.
#include <iostream>

#include "common.hpp"

#include "pgf/decluster/online.hpp"
#include "pgf/disksim/metrics.hpp"

namespace pgf::bench {
namespace {

Assignment stream(const GridStructure& gs, std::uint32_t m,
                  const std::vector<std::size_t>& order) {
    OnlineMinimax online(gs.domain_lo, gs.domain_hi, m);
    Assignment a;
    a.num_disks = m;
    a.disk_of.assign(gs.bucket_count(), 0);
    for (std::size_t b : order) {
        a.disk_of[b] = online.place(gs.buckets[b]);
    }
    return a;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Ablation — online vs offline minimax",
                 "hot.2d, r = 0.01; streaming placement in creation order / "
                 "random order vs offline Algorithm 2 and round-robin");
    Rng rng(opt.seed);
    auto wb = cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                                  [](Rng& r) { return make_hotspot2d(r); });
    const Workbench<2>& bench = *wb;
    std::cout << bench.summary() << "\n";
    auto qb = bench.workload(0.01, opt.queries, opt.seed + 9000);

    const std::size_t n = bench.gs.bucket_count();
    std::vector<std::size_t> creation_order(n);
    for (std::size_t i = 0; i < n; ++i) creation_order[i] = i;
    std::vector<std::size_t> random_order = creation_order;
    Rng shuffle_rng(opt.seed + 9001);
    shuffle_rng.shuffle(random_order);

    TextTable rt({"disks", "offline", "online (creation)", "online (random)",
                  "round-robin", "optimal"});
    TextTable cp({"disks", "offline", "online (creation)", "online (random)",
                  "round-robin"});
    for (std::uint32_t m : disk_sweep()) {
        Assignment offline =
            decluster(bench.gs, Method::kMinimax, m, {.seed = opt.seed + 43});
        Assignment creation = stream(bench.gs, m, creation_order);
        Assignment random = stream(bench.gs, m, random_order);
        Assignment rr;
        rr.num_disks = m;
        rr.disk_of.resize(n);
        for (std::size_t b = 0; b < n; ++b) {
            rr.disk_of[b] = static_cast<std::uint32_t>(b % m);
        }
        double optimal = 0.0;
        std::vector<std::string> r_row{std::to_string(m)};
        std::vector<std::string> c_row{std::to_string(m)};
        for (const Assignment* a : {&offline, &creation, &random, &rr}) {
            WorkloadStats s = evaluate_workload(qb, *a);
            r_row.push_back(format_double(s.avg_response));
            c_row.push_back(
                std::to_string(closest_pairs_same_disk(bench.gs, *a)));
            optimal = s.optimal;
        }
        r_row.push_back(format_double(optimal));
        rt.add_row(std::move(r_row));
        cp.add_row(std::move(c_row));
    }
    emit(opt, rt, "ablation_online_response");
    emit(opt, cp, "ablation_online_closest_pairs");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
