// Figure 2 — sample grid files for the three 2-d synthetic datasets.
//
// The paper's figure is a picture of the grids; the reproducible content is
// the structural summary it quotes in Sec. 2.2:
//   uniform.2d: 252 buckets, 4 of which merge multiple subspaces
//   hot.2d:     241 buckets, 169 merged
//   correl.2d:  242 buckets, 164 merged
// This bench prints the same counts for the regenerated datasets plus an
// ASCII rendering of each grid's scale structure.
#include <iostream>

#include "common.hpp"

namespace pgf::bench {
namespace {

void ascii_grid(const GridFile<2>& gf) {
    // Character map of the directory: letters cycle per bucket so merged
    // regions show up as repeated characters.
    auto shape = gf.grid_shape();
    const std::uint32_t rows = std::min(shape[1], 40u);
    const std::uint32_t cols = std::min(shape[0], 64u);
    for (std::uint32_t jr = 0; jr < rows; ++jr) {
        std::uint32_t j = shape[1] - 1 - jr;  // y grows upward
        for (std::uint32_t i = 0; i < cols; ++i) {
            std::uint32_t b = gf.directory().at({i, j});
            std::cout << static_cast<char>('a' + (b % 26));
        }
        std::cout << "\n";
    }
}

void report(const Options& opt, const Workbench<2>& bench,
            std::size_t paper_buckets, std::size_t paper_merged,
            TextTable& table) {
    const Dataset<2>& ds = bench.dataset;
    const GridFile<2>& gf = bench.gf;
    auto shape = gf.grid_shape();
    // Directory growth vs bucket count: skew inflates the directory (many
    // cells per bucket), the classic grid-file overhead merging contains.
    std::uint64_t cells = static_cast<std::uint64_t>(shape[0]) * shape[1];
    table.add(ds.name, gf.record_count(), std::to_string(shape[0]) + "x" +
                                              std::to_string(shape[1]),
              cells, gf.bucket_count(), gf.merged_bucket_count(),
              format_double(static_cast<double>(cells) /
                            static_cast<double>(gf.bucket_count())),
              paper_buckets, paper_merged);
    std::cout << "\n" << ds.name << " grid (" << shape[0] << "x" << shape[1]
              << " cells, letters = buckets):\n";
    ascii_grid(gf);
    (void)opt;
}

int run(int argc, char** argv) {
    Options opt(argc, argv);
    print_banner(opt, "Figure 2 / Sec 2.2 — sample grid files",
                 "bucket and merged-subspace counts of the three synthetic "
                 "2-d datasets (10,000 points, 4 KB buckets)");
    TextTable table({"dataset", "records", "grid", "cells", "buckets",
                     "merged", "cells/bucket", "paper buckets",
                     "paper merged"});
    Rng rng(opt.seed);
    report(opt,
           *cached_workbench<2>(opt, "uniform.2d", 10000, rng,
                                [](Rng& r) { return make_uniform2d(r); }),
           252, 4, table);
    report(opt,
           *cached_workbench<2>(opt, "hotspot.2d", 10000, rng,
                                [](Rng& r) { return make_hotspot2d(r); }),
           241, 169, table);
    report(opt,
           *cached_workbench<2>(opt, "correl.2d", 10000, rng,
                                [](Rng& r) { return make_correl2d(r); }),
           242, 164, table);
    emit(opt, table, "fig2_dataset_structure");
    return 0;
}

}  // namespace
}  // namespace pgf::bench

int main(int argc, char** argv) { return pgf::bench::run(argc, argv); }
