#include "pgf/graph/kernighan_lin.hpp"

#include "pgf/util/check.hpp"

namespace pgf {

double internal_weight(
    const std::vector<std::uint32_t>& disk_of,
    const std::function<double(std::size_t, std::size_t)>& weight) {
    const std::size_t n = disk_of.size();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (disk_of[i] == disk_of[j]) total += weight(i, j);
        }
    }
    return total;
}

KlResult kl_refine(std::vector<std::uint32_t>& disk_of, std::uint32_t num_disks,
                   const std::function<double(std::size_t, std::size_t)>& weight,
                   std::size_t max_passes) {
    const std::size_t n = disk_of.size();
    PGF_CHECK(num_disks >= 1, "kl_refine requires at least one disk");
    for (std::uint32_t d : disk_of) {
        PGF_CHECK(d < num_disks, "kl_refine: disk index out of range");
    }

    KlResult result;
    result.internal_before = internal_weight(disk_of, weight);
    result.internal_after = result.internal_before;
    if (n < 2 || num_disks < 2) return result;

    // conn[i][d]: total weight between vertex i and all vertices on disk d.
    std::vector<std::vector<double>> conn(n, std::vector<double>(num_disks, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double w = weight(i, j);
            conn[i][disk_of[j]] += w;
            conn[j][disk_of[i]] += w;
        }
    }

    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        ++result.passes;
        bool improved = false;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                std::uint32_t di = disk_of[i];
                std::uint32_t dj = disk_of[j];
                if (di == dj) continue;
                // Swapping i and j changes the internal weight by -gain.
                // Each vertex leaves its own disk (dropping its internal
                // contribution) and joins the other's; the edge (i, j)
                // itself stays external and must not be double-counted.
                double wij = weight(i, j);
                double gain = (conn[i][di] - conn[i][dj]) +
                              (conn[j][dj] - conn[j][di]) + 2.0 * wij;
                if (gain <= 1e-12) continue;
                // Apply the swap and update connectivity incrementally.
                for (std::size_t v = 0; v < n; ++v) {
                    if (v == i || v == j) continue;
                    double wi = weight(v, i);
                    double wj = weight(v, j);
                    conn[v][di] += wj - wi;
                    conn[v][dj] += wi - wj;
                }
                // i and j also see each other's move: j left dj for di
                // (from i's perspective) and vice versa.
                conn[i][dj] -= wij;
                conn[i][di] += wij;
                conn[j][di] -= wij;
                conn[j][dj] += wij;
                disk_of[i] = dj;
                disk_of[j] = di;
                result.internal_after -= gain;
                ++result.swaps;
                improved = true;
            }
        }
        if (!improved) break;
    }
    return result;
}

}  // namespace pgf
