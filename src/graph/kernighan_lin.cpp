#include "pgf/graph/kernighan_lin.hpp"

namespace pgf {

// std::function wrappers for ABI/test compatibility: forward to the
// templated implementations in the header (per-edge calls go through the
// std::function, exactly like the historical code paths).

double internal_weight(
    const std::vector<std::uint32_t>& disk_of,
    const std::function<double(std::size_t, std::size_t)>& weight) {
    return internal_weight<std::function<double(std::size_t, std::size_t)>>(
        disk_of, weight);
}

KlResult kl_refine(std::vector<std::uint32_t>& disk_of, std::uint32_t num_disks,
                   const std::function<double(std::size_t, std::size_t)>& weight,
                   std::size_t max_passes) {
    return kl_refine<std::function<double(std::size_t, std::size_t)>>(
        disk_of, num_disks, weight, max_passes);
}

}  // namespace pgf
