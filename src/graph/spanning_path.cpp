#include "pgf/graph/spanning_path.hpp"

namespace pgf {

double path_similarity(
    const std::vector<std::size_t>& path,
    const std::function<double(std::size_t, std::size_t)>& similarity) {
    double total = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
        total += similarity(path[i - 1], path[i]);
    }
    return total;
}

}  // namespace pgf
