#include "pgf/graph/spanning_path.hpp"

namespace pgf {

double path_similarity(
    const std::vector<std::size_t>& path,
    const std::function<double(std::size_t, std::size_t)>& similarity) {
    return path_similarity<std::function<double(std::size_t, std::size_t)>>(
        path, similarity);
}

}  // namespace pgf
