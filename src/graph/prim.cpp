#include "pgf/graph/prim.hpp"

namespace pgf {

double tree_cost(const std::vector<std::size_t>& parent,
                 const std::function<double(std::size_t, std::size_t)>& cost) {
    return tree_cost<std::function<double(std::size_t, std::size_t)>>(parent,
                                                                      cost);
}

std::vector<std::size_t> preorder(const std::vector<std::size_t>& parent) {
    const std::size_t n = parent.size();
    std::size_t root = n;
    std::vector<std::vector<std::size_t>> children(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (parent[i] == i) {
            PGF_CHECK(root == n, "parent array must have exactly one root");
            root = i;
        } else {
            PGF_CHECK(parent[i] < n, "parent index out of range");
            children[parent[i]].push_back(i);
        }
    }
    PGF_CHECK(root < n, "parent array must have a root");
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<std::size_t> stack{root};
    while (!stack.empty()) {
        std::size_t v = stack.back();
        stack.pop_back();
        order.push_back(v);
        // Push children in reverse so the smallest index is visited first.
        for (std::size_t k = children[v].size(); k-- > 0;) {
            stack.push_back(children[v][k]);
        }
    }
    PGF_CHECK(order.size() == n, "parent array must describe a single tree");
    return order;
}

}  // namespace pgf
