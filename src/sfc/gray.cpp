#include "pgf/sfc/gray.hpp"

#include "pgf/sfc/zorder.hpp"

namespace pgf::sfc {

std::uint64_t gray_encode(std::uint64_t v) { return v ^ (v >> 1); }

std::uint64_t gray_decode(std::uint64_t g) {
    // Prefix-xor via doubling: O(log bits) steps.
    g ^= g >> 1;
    g ^= g >> 2;
    g ^= g >> 4;
    g ^= g >> 8;
    g ^= g >> 16;
    g ^= g >> 32;
    return g;
}

std::uint64_t gray_index(std::span<const std::uint32_t> coords, unsigned bits) {
    return gray_decode(morton_index(coords, bits));
}

}  // namespace pgf::sfc
