#include "pgf/sfc/zorder.hpp"

#include "pgf/sfc/hilbert.hpp"
#include "pgf/util/check.hpp"

namespace pgf::sfc {

namespace {
void validate(unsigned dims, unsigned bits) {
    PGF_CHECK(dims >= 1, "morton: dims must be >= 1");
    PGF_CHECK(bits >= 1 && bits <= 32, "morton: bits must be in [1,32]");
    PGF_CHECK(dims * bits <= kMaxIndexBits,
              "morton: dims*bits must fit in a 64-bit index");
}
}  // namespace

std::uint64_t morton_index(std::span<const std::uint32_t> coords,
                           unsigned bits) {
    const auto dims = static_cast<unsigned>(coords.size());
    validate(dims, bits);
    std::uint64_t index = 0;
    for (unsigned q = bits; q-- > 0;) {
        for (unsigned i = 0; i < dims; ++i) {
            PGF_CHECK(bits == 32 || coords[i] < (1u << bits),
                      "morton: coordinate exceeds the 2^bits cube");
            index = (index << 1) | ((coords[i] >> q) & 1u);
        }
    }
    return index;
}

std::vector<std::uint32_t> morton_coords(std::uint64_t index, unsigned dims,
                                         unsigned bits) {
    validate(dims, bits);
    std::vector<std::uint32_t> coords(dims, 0);
    unsigned shift = dims * bits;
    for (unsigned q = bits; q-- > 0;) {
        for (unsigned i = 0; i < dims; ++i) {
            --shift;
            coords[i] |= static_cast<std::uint32_t>((index >> shift) & 1u) << q;
        }
    }
    return coords;
}

}  // namespace pgf::sfc
