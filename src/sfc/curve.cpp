#include "pgf/sfc/curve.hpp"

#include <algorithm>
#include <numeric>

#include "pgf/sfc/gray.hpp"
#include "pgf/sfc/hilbert.hpp"
#include "pgf/sfc/zorder.hpp"
#include "pgf/util/check.hpp"

namespace pgf::sfc {

std::string to_string(CurveKind kind) {
    switch (kind) {
        case CurveKind::kHilbert: return "hilbert";
        case CurveKind::kMorton: return "morton";
        case CurveKind::kGray: return "gray";
        case CurveKind::kScan: return "scan";
    }
    return "unknown";
}

std::uint64_t linearize(CurveKind kind, std::span<const std::uint32_t> coords,
                        std::span<const std::uint32_t> shape) {
    PGF_CHECK(coords.size() == shape.size(),
              "linearize: coords/shape dimensionality mismatch");
    for (std::size_t i = 0; i < coords.size(); ++i) {
        PGF_CHECK(coords[i] < shape[i], "linearize: coordinate out of grid");
    }
    if (kind == CurveKind::kScan) {
        // Row-major mixed-radix index: last axis varies fastest.
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < coords.size(); ++i) {
            idx = idx * shape[i] + coords[i];
        }
        return idx;
    }
    unsigned bits = bits_for_shape(shape);
    switch (kind) {
        case CurveKind::kHilbert: return hilbert_index(coords, bits);
        case CurveKind::kMorton: return morton_index(coords, bits);
        case CurveKind::kGray: return gray_index(coords, bits);
        case CurveKind::kScan: break;  // handled above
    }
    PGF_CHECK(false, "linearize: unknown curve kind");
    return 0;
}

std::vector<std::vector<std::uint32_t>> curve_order(
    CurveKind kind, std::span<const std::uint32_t> shape) {
    std::uint64_t total = 1;
    for (std::uint32_t s : shape) {
        PGF_CHECK(s > 0, "curve_order: empty axis");
        total *= s;
    }
    std::vector<std::vector<std::uint32_t>> cells;
    cells.reserve(total);
    std::vector<std::uint32_t> cur(shape.size(), 0);
    for (std::uint64_t n = 0; n < total; ++n) {
        cells.push_back(cur);
        // Odometer increment, last axis fastest.
        for (std::size_t i = shape.size(); i-- > 0;) {
            if (++cur[i] < shape[i]) break;
            cur[i] = 0;
        }
    }
    std::vector<std::uint64_t> rank(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        rank[i] = linearize(kind, cells[i], shape);
    }
    std::vector<std::size_t> order(cells.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return rank[a] < rank[b]; });
    std::vector<std::vector<std::uint32_t>> sorted;
    sorted.reserve(cells.size());
    for (std::size_t i : order) sorted.push_back(std::move(cells[i]));
    return sorted;
}

}  // namespace pgf::sfc
