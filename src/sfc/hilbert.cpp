#include "pgf/sfc/hilbert.hpp"

#include "pgf/util/check.hpp"

namespace pgf::sfc {

namespace {

void validate(unsigned dims, unsigned bits) {
    PGF_CHECK(dims >= 1, "hilbert: dims must be >= 1");
    PGF_CHECK(bits >= 1 && bits <= 32, "hilbert: bits must be in [1,32]");
    PGF_CHECK(dims * bits <= kMaxIndexBits,
              "hilbert: dims*bits must fit in a 64-bit index");
}

// Skilling: coordinates -> transpose form of the Hilbert index (in place).
void axes_to_transpose(std::span<std::uint32_t> x, unsigned bits) {
    const auto n = x.size();
    const std::uint32_t m = 1u << (bits - 1);
    // Inverse undo of the excess rotations/reflections.
    for (std::uint32_t q = m; q > 1; q >>= 1) {
        const std::uint32_t p = q - 1;
        for (std::size_t i = 0; i < n; ++i) {
            if (x[i] & q) {
                x[0] ^= p;  // invert low bits of x[0]
            } else {
                const std::uint32_t t = (x[0] ^ x[i]) & p;
                x[0] ^= t;  // exchange low bits of x[0] and x[i]
                x[i] ^= t;
            }
        }
    }
    // Gray encode.
    for (std::size_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
    std::uint32_t t = 0;
    for (std::uint32_t q = m; q > 1; q >>= 1) {
        if (x[n - 1] & q) t ^= q - 1;
    }
    for (std::size_t i = 0; i < n; ++i) x[i] ^= t;
}

// Skilling: transpose form -> coordinates (in place).
void transpose_to_axes(std::span<std::uint32_t> x, unsigned bits) {
    const auto n = x.size();
    const std::uint32_t big = bits < 32 ? (1u << bits) : 0u;  // 2^bits (0 = 2^32)
    // Gray decode by H ^ (H/2).
    std::uint32_t t = x[n - 1] >> 1;
    for (std::size_t i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
    x[0] ^= t;
    // Undo excess work.
    for (std::uint32_t q = 2; q != big; q <<= 1) {
        const std::uint32_t p = q - 1;
        for (std::size_t i = n; i-- > 0;) {
            if (x[i] & q) {
                x[0] ^= p;
            } else {
                const std::uint32_t s = (x[0] ^ x[i]) & p;
                x[0] ^= s;
                x[i] ^= s;
            }
        }
    }
}

// Packs the transpose form into a single 64-bit index, most significant bit
// plane first; within a plane, x[0] contributes the most significant bit.
std::uint64_t pack_transpose(std::span<const std::uint32_t> x, unsigned bits) {
    std::uint64_t index = 0;
    for (unsigned q = bits; q-- > 0;) {
        for (std::size_t i = 0; i < x.size(); ++i) {
            index = (index << 1) | ((x[i] >> q) & 1u);
        }
    }
    return index;
}

// Inverse of pack_transpose.
std::vector<std::uint32_t> unpack_transpose(std::uint64_t index, unsigned dims,
                                            unsigned bits) {
    std::vector<std::uint32_t> x(dims, 0);
    unsigned shift = dims * bits;
    for (unsigned q = bits; q-- > 0;) {
        for (unsigned i = 0; i < dims; ++i) {
            --shift;
            x[i] |= static_cast<std::uint32_t>((index >> shift) & 1u) << q;
        }
    }
    return x;
}

}  // namespace

std::uint64_t hilbert_index(std::span<const std::uint32_t> coords,
                            unsigned bits) {
    const auto dims = static_cast<unsigned>(coords.size());
    validate(dims, bits);
    std::vector<std::uint32_t> x(coords.begin(), coords.end());
    for (std::uint32_t c : x) {
        PGF_CHECK(bits == 32 || c < (1u << bits),
                  "hilbert: coordinate exceeds the 2^bits cube");
    }
    axes_to_transpose(x, bits);
    return pack_transpose(x, bits);
}

std::uint64_t hilbert_index_destructive(std::span<std::uint32_t> coords,
                                        unsigned bits) {
    const auto dims = static_cast<unsigned>(coords.size());
    validate(dims, bits);
    for (std::uint32_t c : coords) {
        PGF_CHECK(bits == 32 || c < (1u << bits),
                  "hilbert: coordinate exceeds the 2^bits cube");
    }
    axes_to_transpose(coords, bits);
    return pack_transpose(coords, bits);
}

std::vector<std::uint32_t> hilbert_coords(std::uint64_t index, unsigned dims,
                                          unsigned bits) {
    validate(dims, bits);
    if (dims * bits < 64) {
        PGF_CHECK(index < (1ULL << (dims * bits)),
                  "hilbert: index exceeds the 2^(dims*bits) range");
    }
    auto x = unpack_transpose(index, dims, bits);
    transpose_to_axes(x, bits);
    return x;
}

unsigned bits_for_shape(std::span<const std::uint32_t> shape) {
    std::uint32_t max_extent = 1;
    for (std::uint32_t s : shape) max_extent = std::max(max_extent, s);
    unsigned b = 1;
    while ((1u << b) < max_extent) ++b;
    return b;
}

}  // namespace pgf::sfc
