#include "pgf/core/sweep.hpp"

#include <chrono>

#include "pgf/util/rng.hpp"

namespace pgf {

std::uint64_t sweep_task_seed(std::uint64_t base_seed,
                              std::size_t task_index) {
    // Two SplitMix64 steps decorrelate (base, index) pairs that differ in
    // only one component; a single xor would make adjacent tasks' streams
    // related.
    SplitMix64 mix(base_seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(task_index) + 1)));
    mix.next();
    return mix.next();
}

void SweepRunner::run_indexed(
    std::size_t n, const std::function<void(const SweepTask&)>& fn) {
    const auto start = std::chrono::steady_clock::now();
    auto run_range = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            fn(SweepTask{i, sweep_task_seed(base_seed_, i)});
        }
    };
    if (pool_ != nullptr && pool_->parallelism() > 1 && n > 1) {
        pool_->parallel_for_chunk(n, 1, run_range);
    } else {
        run_range(0, n);
    }
    const auto stop = std::chrono::steady_clock::now();
    MutexLock lock(stats_mutex_);
    last_.tasks = n;
    last_.threads = threads();
    last_.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    total_wall_ms_ += last_.wall_ms;
}

}  // namespace pgf
