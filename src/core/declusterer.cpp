#include "pgf/core/declusterer.hpp"

#include "pgf/disksim/metrics.hpp"

namespace pgf {

Declusterer::Declusterer(GridStructure structure)
    : structure_(std::move(structure)) {
    structure_.validate();
}

DeclusterReport Declusterer::run(Method method, std::uint32_t num_disks,
                                 const DeclusterOptions& options) const {
    DeclusterReport report;
    report.assignment = decluster(structure_, method, num_disks, options);
    report.data_balance = degree_of_data_balance(report.assignment);
    report.area_balance = degree_of_area_balance(structure_, report.assignment);
    report.closest_pairs = closest_pairs_same_disk(
        structure_, report.assignment, options.weight, options.pool);
    return report;
}

}  // namespace pgf
