// Dimension-erased half of the external sort (pgf/core/extsort.hpp):
// buffered run-file I/O, the loser-tree k-way merge, and the multi-pass
// run reduction. Everything here works on raw `record_bytes`-stride
// records whose first 16 bytes are the (key, seq) sort key.
#include "pgf/core/extsort.hpp"

namespace pgf::extsort::detail {

// -- RunWriter ---------------------------------------------------------------

RunWriter::RunWriter(const std::filesystem::path& path,
                     std::size_t record_bytes, std::size_t buffer_records)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path.string()),
      record_bytes_(record_bytes),
      buf_(record_bytes * std::max<std::size_t>(buffer_records, 1)) {
    PGF_CHECK(out_.good(), "extsort: cannot create run file " + path_);
}

void RunWriter::append(const std::byte* records, std::size_t count) {
    std::size_t done = 0;
    const std::size_t cap = buf_.size() / record_bytes_;
    while (done < count) {
        const std::size_t take = std::min(count - done, cap - buffered_);
        std::copy_n(records + done * record_bytes_, take * record_bytes_,
                    buf_.data() + buffered_ * record_bytes_);
        buffered_ += take;
        done += take;
        if (buffered_ == cap) {
            out_.write(reinterpret_cast<const char*>(buf_.data()),
                       static_cast<std::streamsize>(buffered_ *
                                                    record_bytes_));
            bytes_ += buffered_ * record_bytes_;
            buffered_ = 0;
        }
    }
}

std::uint64_t RunWriter::finish() {
    if (buffered_ > 0) {
        out_.write(reinterpret_cast<const char*>(buf_.data()),
                   static_cast<std::streamsize>(buffered_ * record_bytes_));
        bytes_ += buffered_ * record_bytes_;
        buffered_ = 0;
    }
    out_.flush();
    PGF_CHECK(out_.good(), "extsort: write failed for run file " + path_);
    out_.close();
    return bytes_;
}

// -- RunReader ---------------------------------------------------------------

RunReader::RunReader(const std::filesystem::path& path,
                     std::size_t record_bytes, std::size_t buffer_records)
    : in_(path, std::ios::binary),
      path_(path.string()),
      record_bytes_(record_bytes),
      buf_(record_bytes * std::max<std::size_t>(buffer_records, 1)) {
    PGF_CHECK(in_.good(), "extsort: cannot open run file " + path_);
}

const std::byte* RunReader::advance() {
    if (pos_ == filled_) {
        in_.read(reinterpret_cast<char*>(buf_.data()),
                 static_cast<std::streamsize>(buf_.size()));
        const auto got = static_cast<std::size_t>(in_.gcount());
        PGF_CHECK(got % record_bytes_ == 0,
                  "extsort: torn record in run file " + path_);
        filled_ = got / record_bytes_;
        pos_ = 0;
        if (filled_ == 0) return nullptr;
    }
    return buf_.data() + (pos_++) * record_bytes_;
}

// -- KWayMerge ---------------------------------------------------------------
//
// Textbook loser tree in the complete-binary-tree array layout: sources
// are leaves k..2k-1, internal node n holds the loser of the matches
// below it, winner_ is the overall champion. Each replay after consuming
// the winner costs exactly ceil(log2 k) comparisons.

KWayMerge::KWayMerge(std::vector<std::filesystem::path> runs,
                     std::size_t record_bytes, std::size_t buffer_records)
    : paths_(std::move(runs)), record_bytes_(record_bytes) {
    const std::size_t k = paths_.size();
    PGF_CHECK(k >= 1, "extsort: merge needs at least one run");
    readers_.reserve(k);
    key_.resize(k);
    seq_.resize(k);
    rec_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        readers_.push_back(std::make_unique<RunReader>(
            paths_[i], record_bytes_, buffer_records));
        rec_[i] = readers_[i]->advance();
        if (rec_[i] != nullptr) {
            key_[i] = read_u64le(rec_[i]);
            seq_[i] = read_u64le(rec_[i] + 8);
            ++alive_;
        } else {
            retire(i);
        }
    }
    // Bottom-up build: win[n] is the winner of the subtree under node n,
    // loser_[n] keeps the loser of the final match played at n.
    loser_.assign(k, 0);
    std::vector<std::size_t> win(2 * k);
    for (std::size_t i = 0; i < k; ++i) win[k + i] = i;
    for (std::size_t n = k; n-- > 1;) {
        std::size_t a = win[2 * n];
        std::size_t b = win[2 * n + 1];
        if (worse(a, b)) std::swap(a, b);
        win[n] = a;
        loser_[n] = b;
    }
    winner_ = k > 1 ? win[1] : 0;
}

KWayMerge::~KWayMerge() {
    // Runs are single-consumer scratch; delete whatever wasn't consumed.
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        if (readers_[i] != nullptr) {
            readers_[i].reset();
            std::error_code ec;
            std::filesystem::remove(paths_[i], ec);
        }
    }
}

void KWayMerge::retire(std::size_t source) {
    readers_[source].reset();
    std::error_code ec;
    std::filesystem::remove(paths_[source], ec);
}

bool KWayMerge::worse(std::size_t a, std::size_t b) const {
    // Exhausted sources lose to everything, so they sink in the tree.
    if (rec_[a] == nullptr) return true;
    if (rec_[b] == nullptr) return false;
    if (key_[a] != key_[b]) return key_[a] > key_[b];
    return seq_[a] > seq_[b];
}

void KWayMerge::replay(std::size_t source) {
    const std::size_t k = paths_.size();
    std::size_t cur = source;
    for (std::size_t n = (k + source) / 2; n >= 1; n /= 2) {
        if (worse(cur, loser_[n])) std::swap(cur, loser_[n]);
        if (n == 1) break;
    }
    winner_ = cur;
}

std::size_t KWayMerge::next(std::byte* out, std::size_t max_records) {
    std::size_t produced = 0;
    while (produced < max_records && alive_ > 0) {
        const std::size_t w = winner_;
        std::copy_n(rec_[w], record_bytes_,
                    out + produced * record_bytes_);
        ++produced;
        rec_[w] = readers_[w]->advance();
        if (rec_[w] != nullptr) {
            key_[w] = read_u64le(rec_[w]);
            seq_[w] = read_u64le(rec_[w] + 8);
        } else {
            retire(w);
            --alive_;
        }
        if (paths_.size() > 1) {
            replay(w);
        }
    }
    return produced;
}

// -- reduce_runs -------------------------------------------------------------

std::vector<std::filesystem::path> reduce_runs(
    std::vector<std::filesystem::path> runs, std::size_t record_bytes,
    std::size_t buffer_records, std::size_t fan_in,
    const std::filesystem::path& dir, std::uint64_t* spill_bytes,
    std::size_t* passes) {
    std::size_t generation = 0;
    while (runs.size() > fan_in) {
        ++generation;
        std::vector<std::filesystem::path> merged;
        merged.reserve((runs.size() + fan_in - 1) / fan_in);
        std::vector<std::byte> block(record_bytes * 4096);
        for (std::size_t begin = 0; begin < runs.size(); begin += fan_in) {
            const std::size_t end = std::min(begin + fan_in, runs.size());
            if (end - begin == 1) {
                // A lone tail run advances to the next generation as-is.
                merged.push_back(runs[begin]);
                continue;
            }
            std::vector<std::filesystem::path> batch(
                runs.begin() + static_cast<std::ptrdiff_t>(begin),
                runs.begin() + static_cast<std::ptrdiff_t>(end));
            const std::filesystem::path out_path =
                dir / ("merge-" + std::to_string(generation) + "-" +
                       std::to_string(merged.size()) + ".bin");
            KWayMerge merge(std::move(batch), record_bytes, buffer_records);
            RunWriter writer(out_path, record_bytes, buffer_records);
            for (;;) {
                const std::size_t n =
                    merge.next(block.data(), block.size() / record_bytes);
                if (n == 0) break;
                writer.append(block.data(), n);
            }
            *spill_bytes += writer.finish();
            merged.push_back(out_path);
        }
        runs = std::move(merged);
        ++*passes;
    }
    return runs;
}

}  // namespace pgf::extsort::detail
