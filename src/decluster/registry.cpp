#include "pgf/decluster/registry.hpp"

#include "pgf/decluster/conflict.hpp"
#include "pgf/decluster/minimax.hpp"
#include "pgf/decluster/similarity.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

std::string to_string(Method m) {
    switch (m) {
        case Method::kDiskModulo: return "DM";
        case Method::kFieldwiseXor: return "FX";
        case Method::kHilbert: return "HCAM";
        case Method::kMorton: return "Z-order";
        case Method::kGrayCode: return "Gray";
        case Method::kScan: return "Scan";
        case Method::kMst: return "MST";
        case Method::kSsp: return "SSP";
        case Method::kSimilarityGraph: return "SimGraph";
        case Method::kMinimax: return "MiniMax";
    }
    return "unknown";
}

bool is_index_based(Method m) {
    switch (m) {
        case Method::kDiskModulo:
        case Method::kFieldwiseXor:
        case Method::kHilbert:
        case Method::kMorton:
        case Method::kGrayCode:
        case Method::kScan:
            return true;
        case Method::kMst:
        case Method::kSsp:
        case Method::kSimilarityGraph:
        case Method::kMinimax:
            return false;
    }
    return false;
}

std::string to_string(ConflictHeuristic h) {
    switch (h) {
        case ConflictHeuristic::kRandom: return "random";
        case ConflictHeuristic::kMostFrequent: return "most-frequent";
        case ConflictHeuristic::kDataBalance: return "data-balance";
        case ConflictHeuristic::kAreaBalance: return "area-balance";
    }
    return "unknown";
}

std::string to_string(WeightKind w) {
    switch (w) {
        case WeightKind::kProximityIndex: return "proximity-index";
        case WeightKind::kCenterSimilarity: return "center-similarity";
    }
    return "unknown";
}

Assignment decluster(const GridStructure& gs, Method method,
                     std::uint32_t num_disks, const DeclusterOptions& options) {
    if (is_index_based(method)) {
        Rng rng(options.seed);
        return decluster_index_based(gs, method, num_disks, options.heuristic,
                                     rng);
    }
    switch (method) {
        case Method::kMinimax: {
            MinimaxOptions mo;
            mo.seed = options.seed;
            mo.weight = options.weight;
            mo.pool = options.pool;
            return minimax_decluster(gs, num_disks, mo);
        }
        case Method::kSsp: {
            SimilarityOptions so{options.seed, options.weight, options.pool};
            return ssp_decluster(gs, num_disks, so);
        }
        case Method::kMst: {
            SimilarityOptions so{options.seed, options.weight, options.pool};
            return mst_decluster(gs, num_disks, so);
        }
        case Method::kSimilarityGraph: {
            SimilarityOptions so{options.seed, options.weight, options.pool};
            return similarity_graph_decluster(gs, num_disks, so);
        }
        default:
            PGF_CHECK(false, "unhandled method");
    }
    return {};
}

std::optional<Method> parse_method(const std::string& name) {
    if (name == "dm") return Method::kDiskModulo;
    if (name == "fx") return Method::kFieldwiseXor;
    if (name == "hcam" || name == "hilbert") return Method::kHilbert;
    if (name == "morton" || name == "zorder") return Method::kMorton;
    if (name == "gray") return Method::kGrayCode;
    if (name == "scan") return Method::kScan;
    if (name == "mst") return Method::kMst;
    if (name == "ssp") return Method::kSsp;
    if (name == "simgraph" || name == "ls") return Method::kSimilarityGraph;
    if (name == "minimax") return Method::kMinimax;
    return std::nullopt;
}

const std::vector<Method>& all_methods() {
    static const std::vector<Method> methods = {
        Method::kDiskModulo, Method::kFieldwiseXor, Method::kHilbert,
        Method::kMorton,     Method::kGrayCode,     Method::kScan,
        Method::kMst,        Method::kSsp,          Method::kSimilarityGraph,
        Method::kMinimax,
    };
    return methods;
}

}  // namespace pgf
