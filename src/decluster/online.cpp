#include "pgf/decluster/online.hpp"

#include <cmath>
#include <limits>

#include "pgf/util/check.hpp"

namespace pgf {

OnlineMinimax::OnlineMinimax(std::vector<double> domain_lo,
                             std::vector<double> domain_hi,
                             std::uint32_t num_disks, WeightKind weight)
    : dims_(domain_lo.size()),
      num_disks_(num_disks),
      weight_(weight),
      regions_(num_disks),
      load_(num_disks, 0) {
    PGF_CHECK(num_disks_ >= 1, "need at least one disk");
    PGF_CHECK(dims_ >= 1 && domain_hi.size() == dims_,
              "domain dimensionality mismatch");
    inv_domain_.resize(dims_);
    for (std::size_t i = 0; i < dims_; ++i) {
        PGF_CHECK(domain_hi[i] > domain_lo[i], "empty domain axis");
        inv_domain_[i] = 1.0 / (domain_hi[i] - domain_lo[i]);
    }
}

OnlineMinimax::OnlineMinimax(const GridStructure& gs,
                             const Assignment& assignment, WeightKind weight)
    : OnlineMinimax(gs.domain_lo, gs.domain_hi, assignment.num_disks, weight) {
    PGF_CHECK(assignment.disk_of.size() == gs.bucket_count(),
              "assignment does not match the grid structure");
    for (std::size_t b = 0; b < gs.bucket_count(); ++b) {
        std::uint32_t d = assignment.disk_of[b];
        PGF_CHECK(d < num_disks_, "assignment references unknown disk");
        auto& store = regions_[d];
        store.insert(store.end(), gs.buckets[b].region_lo.begin(),
                     gs.buckets[b].region_lo.end());
        store.insert(store.end(), gs.buckets[b].region_hi.begin(),
                     gs.buckets[b].region_hi.end());
        ++load_[d];
        ++placed_;
    }
}

double OnlineMinimax::weight_to(std::uint32_t disk, const double* lo,
                                const double* hi) const {
    // Maximum weight between the candidate region and any member of `disk`
    // (0 for an empty disk): the MAX_x(K) quantity of Algorithm 2.
    double max_w = 0.0;
    const auto& store = regions_[disk];
    for (std::size_t k = 0; k < load_[disk]; ++k) {
        const double* mlo = &store[k * 2 * dims_];
        const double* mhi = mlo + dims_;
        double w;
        if (weight_ == WeightKind::kProximityIndex) {
            w = 1.0;
            for (std::size_t i = 0; i < dims_; ++i) {
                double overlap = (hi[i] < mhi[i] ? hi[i] : mhi[i]) -
                                 (lo[i] > mlo[i] ? lo[i] : mlo[i]);
                if (overlap > 0.0) {
                    w *= (1.0 + 2.0 * overlap * inv_domain_[i]) / 3.0;
                } else {
                    double gap = -overlap * inv_domain_[i];
                    double one_minus = gap < 1.0 ? 1.0 - gap : 0.0;
                    w *= one_minus * one_minus / 3.0;
                }
            }
        } else {
            double d2 = 0.0;
            for (std::size_t i = 0; i < dims_; ++i) {
                double d = 0.5 * ((lo[i] + hi[i]) - (mlo[i] + mhi[i])) *
                           inv_domain_[i];
                d2 += d * d;
            }
            w = 1.0 / (1.0 + std::sqrt(d2));
        }
        if (w > max_w) max_w = w;
    }
    return max_w;
}

std::uint32_t OnlineMinimax::place(const std::vector<double>& region_lo,
                                   const std::vector<double>& region_hi) {
    PGF_CHECK(region_lo.size() == dims_ && region_hi.size() == dims_,
              "bucket dimensionality mismatch");
    // Balance cap after this placement: no disk may exceed ceil((N+1)/M).
    const std::size_t cap = (placed_ + num_disks_) / num_disks_;
    std::uint32_t best = num_disks_;
    double best_w = std::numeric_limits<double>::infinity();
    for (std::uint32_t d = 0; d < num_disks_; ++d) {
        if (load_[d] + 1 > cap) continue;
        double w = weight_to(d, region_lo.data(), region_hi.data());
        // Tie-break toward the less loaded disk, then the lower index —
        // keeps placement deterministic.
        if (w < best_w ||
            (w == best_w && best < num_disks_ && load_[d] < load_[best])) {
            best_w = w;
            best = d;
        }
    }
    PGF_CHECK(best < num_disks_, "no admissible disk (cap logic broken)");
    auto& store = regions_[best];
    store.insert(store.end(), region_lo.begin(), region_lo.end());
    store.insert(store.end(), region_hi.begin(), region_hi.end());
    ++load_[best];
    ++placed_;
    return best;
}

}  // namespace pgf
