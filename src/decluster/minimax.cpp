#include "pgf/decluster/minimax.hpp"

namespace pgf {

Assignment minimax_decluster(const GridStructure& gs, std::uint32_t num_disks,
                             const MinimaxOptions& options) {
    BucketWeights weights(gs, options.weight);
    Rng rng(options.seed);
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of = minimax_partition(gs.bucket_count(), num_disks, weights, rng,
                                  options.seeding, options.pool);
    return a;
}

}  // namespace pgf
