#include "pgf/decluster/conflict.hpp"

#include <algorithm>

namespace pgf {

namespace {

/// Picks the candidate index minimizing `load[disk]`; ties go to the
/// lower-numbered disk (deterministic, like Algorithm 1's "such that B is
/// minimum").
std::size_t argmin_load(const CandidateSet& cs, const std::vector<double>& load) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < cs.disks.size(); ++k) {
        if (load[cs.disks[k]] < load[cs.disks[best]]) best = k;
    }
    return best;
}

Assignment resolve_balanced(const GridStructure& gs,
                            const std::vector<CandidateSet>& candidates,
                            std::uint32_t num_disks, bool by_area) {
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(candidates.size(), 0);
    std::vector<double> load(num_disks, 0.0);

    auto weight = [&](std::size_t bucket) {
        return by_area ? gs.buckets[bucket].volume() : 1.0;
    };

    // Step 2 (Algorithm 1): unambiguous buckets first.
    for (std::size_t b = 0; b < candidates.size(); ++b) {
        if (candidates[b].disks.size() == 1) {
            a.disk_of[b] = candidates[b].disks[0];
            load[candidates[b].disks[0]] += weight(b);
        }
    }
    // Step 3: conflicting buckets to their least-loaded candidate.
    for (std::size_t b = 0; b < candidates.size(); ++b) {
        if (candidates[b].disks.size() > 1) {
            std::size_t k = argmin_load(candidates[b], load);
            a.disk_of[b] = candidates[b].disks[k];
            load[candidates[b].disks[k]] += weight(b);
        }
    }
    return a;
}

Assignment resolve_random(const std::vector<CandidateSet>& candidates,
                          std::uint32_t num_disks, Rng& rng) {
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(candidates.size(), 0);
    for (std::size_t b = 0; b < candidates.size(); ++b) {
        const auto& cs = candidates[b];
        a.disk_of[b] = cs.disks[rng.below(
            static_cast<std::uint32_t>(cs.disks.size()))];
    }
    return a;
}

Assignment resolve_most_frequent(const std::vector<CandidateSet>& candidates,
                                 std::uint32_t num_disks, Rng& rng) {
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(candidates.size(), 0);
    for (std::size_t b = 0; b < candidates.size(); ++b) {
        const auto& cs = candidates[b];
        std::uint32_t best_count = *std::max_element(cs.counts.begin(),
                                                     cs.counts.end());
        // Collect the disks achieving the maximum multiplicity, then break
        // remaining ties randomly (paper: "if this fails to break ties, it
        // uses random selection").
        std::vector<std::uint32_t> tied;
        for (std::size_t k = 0; k < cs.disks.size(); ++k) {
            if (cs.counts[k] == best_count) tied.push_back(cs.disks[k]);
        }
        a.disk_of[b] =
            tied[rng.below(static_cast<std::uint32_t>(tied.size()))];
    }
    return a;
}

}  // namespace

Assignment resolve_conflicts(const GridStructure& gs,
                             const std::vector<CandidateSet>& candidates,
                             std::uint32_t num_disks, ConflictHeuristic h,
                             Rng& rng) {
    PGF_CHECK(candidates.size() == gs.bucket_count(),
              "one candidate set per bucket required");
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    for (const auto& cs : candidates) {
        PGF_CHECK(!cs.disks.empty(), "empty candidate set");
    }
    switch (h) {
        case ConflictHeuristic::kRandom:
            return resolve_random(candidates, num_disks, rng);
        case ConflictHeuristic::kMostFrequent:
            return resolve_most_frequent(candidates, num_disks, rng);
        case ConflictHeuristic::kDataBalance:
            return resolve_balanced(gs, candidates, num_disks, /*by_area=*/false);
        case ConflictHeuristic::kAreaBalance:
            return resolve_balanced(gs, candidates, num_disks, /*by_area=*/true);
    }
    PGF_CHECK(false, "unknown conflict heuristic");
    return {};
}

Assignment decluster_index_based(const GridStructure& gs, Method method,
                                 std::uint32_t num_disks, ConflictHeuristic h,
                                 Rng& rng) {
    return resolve_conflicts(gs, index_candidates(gs, method, num_disks),
                             num_disks, h, rng);
}

}  // namespace pgf
