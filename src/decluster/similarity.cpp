#include "pgf/decluster/similarity.hpp"

#include "pgf/decluster/weights.hpp"
#include "pgf/graph/kernighan_lin.hpp"
#include "pgf/graph/prim.hpp"
#include "pgf/graph/spanning_path.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

Assignment ssp_decluster(const GridStructure& gs, std::uint32_t num_disks,
                         const SimilarityOptions& options) {
    PGF_CHECK(num_disks >= 1, "ssp requires at least one disk");
    const std::size_t n = gs.bucket_count();
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(n, 0);
    if (n == 0) return a;

    BucketWeights sim(gs, options.weight);
    Rng rng(options.seed);
    std::size_t start = rng.below(static_cast<std::uint32_t>(n));
    // BucketWeights is passed as the functor itself, so the greedy scan
    // consumes batched weight rows instead of per-edge calls.
    std::vector<std::size_t> path =
        greedy_spanning_path(n, start, sim, options.pool);
    for (std::size_t pos = 0; pos < path.size(); ++pos) {
        a.disk_of[path[pos]] = static_cast<std::uint32_t>(pos % num_disks);
    }
    return a;
}

Assignment mst_decluster(const GridStructure& gs, std::uint32_t num_disks,
                         const SimilarityOptions& options) {
    PGF_CHECK(num_disks >= 1, "mst requires at least one disk");
    const std::size_t n = gs.bucket_count();
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(n, 0);
    if (n == 0 || num_disks == 1) return a;

    BucketWeights sim(gs, options.weight);
    Rng rng(options.seed);
    std::size_t root = rng.below(static_cast<std::uint32_t>(n));
    // Maximum-similarity spanning tree: Prim on negated weights, so every
    // vertex hangs off its most co-access-prone already-connected neighbor.
    auto parent =
        prim_mst(n, root, NegatedBucketWeights(sim), options.pool);
    // Preorder coloring: cycle a disk counter, skipping the parent's color
    // so the most similar pair is always separated.
    std::vector<std::size_t> order = preorder(parent);
    std::uint32_t cursor = 0;
    for (std::size_t v : order) {
        if (v == root) {
            a.disk_of[v] = cursor;
            cursor = (cursor + 1) % num_disks;
            continue;
        }
        std::uint32_t forbidden = a.disk_of[parent[v]];
        if (cursor == forbidden) cursor = (cursor + 1) % num_disks;
        a.disk_of[v] = cursor;
        cursor = (cursor + 1) % num_disks;
    }
    return a;
}

Assignment similarity_graph_decluster(const GridStructure& gs,
                                      std::uint32_t num_disks,
                                      const SimilarityOptions& options,
                                      std::size_t max_passes) {
    PGF_CHECK(num_disks >= 1, "similarity graph requires at least one disk");
    const std::size_t n = gs.bucket_count();
    Assignment a;
    a.num_disks = num_disks;
    a.disk_of.assign(n, 0);
    if (n == 0 || num_disks == 1) return a;

    // Balanced random initial partition: shuffle, deal round-robin.
    Rng rng(options.seed);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);
    for (std::size_t pos = 0; pos < n; ++pos) {
        a.disk_of[order[pos]] = static_cast<std::uint32_t>(pos % num_disks);
    }

    BucketWeights sim(gs, options.weight);
    kl_refine(a.disk_of, num_disks, sim, max_passes, options.pool);
    return a;
}

}  // namespace pgf
