#include "pgf/decluster/index_based.hpp"

#include <algorithm>
#include <numeric>

#include "pgf/sfc/curve.hpp"

namespace pgf {

namespace {

sfc::CurveKind curve_for(Method method) {
    switch (method) {
        case Method::kHilbert: return sfc::CurveKind::kHilbert;
        case Method::kMorton: return sfc::CurveKind::kMorton;
        case Method::kGrayCode: return sfc::CurveKind::kGray;
        case Method::kScan: return sfc::CurveKind::kScan;
        default: break;
    }
    PGF_CHECK(false, "not a curve-based method");
    return sfc::CurveKind::kHilbert;
}

/// Invokes fn(cell, flat_index) for every cell of the grid in row-major
/// order (last axis fastest), so flat_index increments by one per call.
template <typename Fn>
void for_each_grid_cell(const std::vector<std::uint32_t>& shape, Fn&& fn) {
    std::uint64_t total = 1;
    for (std::uint32_t s : shape) total *= s;
    std::vector<std::uint32_t> cell(shape.size(), 0);
    for (std::uint64_t flat = 0; flat < total; ++flat) {
        fn(cell, flat);
        for (std::size_t i = shape.size(); i-- > 0;) {
            if (++cell[i] < shape[i]) break;
            cell[i] = 0;
        }
    }
}

}  // namespace

std::vector<std::uint32_t> cell_disks(const GridStructure& gs, Method method,
                                      std::uint32_t num_disks) {
    PGF_CHECK(is_index_based(method), "cell_disks requires an index-based method");
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    const std::uint64_t total = gs.cell_count();
    std::vector<std::uint32_t> disk(total);

    switch (method) {
        case Method::kDiskModulo:
            for_each_grid_cell(gs.shape, [&](const std::vector<std::uint32_t>& cell,
                                             std::uint64_t flat) {
                std::uint64_t sum = std::accumulate(cell.begin(), cell.end(),
                                                    std::uint64_t{0});
                disk[flat] = static_cast<std::uint32_t>(sum % num_disks);
            });
            break;
        case Method::kFieldwiseXor:
            for_each_grid_cell(gs.shape, [&](const std::vector<std::uint32_t>& cell,
                                             std::uint64_t flat) {
                std::uint32_t x = 0;
                for (std::uint32_t c : cell) x ^= c;
                disk[flat] = x % num_disks;
            });
            break;
        default: {
            // Curve methods: linearize every cell, then use the *dense*
            // rank along the curve so disks cycle in strict round-robin
            // even when the enclosing power-of-two cube has gaps.
            const sfc::CurveKind kind = curve_for(method);
            std::vector<std::uint64_t> key(total);
            for_each_grid_cell(gs.shape, [&](const std::vector<std::uint32_t>& cell,
                                             std::uint64_t flat) {
                key[flat] = sfc::linearize(kind, cell, gs.shape);
            });
            std::vector<std::uint64_t> order(total);
            std::iota(order.begin(), order.end(), std::uint64_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::uint64_t a, std::uint64_t b) {
                          return key[a] < key[b];
                      });
            for (std::uint64_t rank = 0; rank < total; ++rank) {
                disk[order[rank]] =
                    static_cast<std::uint32_t>(rank % num_disks);
            }
            break;
        }
    }
    return disk;
}

std::vector<CandidateSet> bucket_candidates(
    const GridStructure& gs, const std::vector<std::uint32_t>& cell_disk) {
    PGF_CHECK(cell_disk.size() == gs.cell_count(),
              "cell_disk size must match the grid");
    const std::size_t d = gs.dims();
    std::vector<CandidateSet> result;
    result.reserve(gs.bucket_count());

    std::vector<std::uint32_t> cell(d);
    for (const BucketInfo& b : gs.buckets) {
        // Walk the bucket's cell box with an odometer; accumulate disk
        // multiplicities in a small sorted vector (candidate sets are tiny).
        std::vector<std::pair<std::uint32_t, std::uint32_t>> tally;
        cell.assign(b.cell_lo.begin(), b.cell_lo.end());
        for (;;) {
            std::uint64_t flat = 0;
            for (std::size_t i = 0; i < d; ++i)
                flat = flat * gs.shape[i] + cell[i];
            std::uint32_t disk = cell_disk[flat];
            auto it = std::lower_bound(
                tally.begin(), tally.end(), disk,
                [](const auto& p, std::uint32_t v) { return p.first < v; });
            if (it != tally.end() && it->first == disk) {
                ++it->second;
            } else {
                tally.insert(it, {disk, 1});
            }
            std::size_t axis = d;
            bool done = true;
            while (axis-- > 0) {
                if (++cell[axis] < b.cell_hi[axis]) {
                    done = false;
                    break;
                }
                cell[axis] = b.cell_lo[axis];
            }
            if (done) break;
        }
        CandidateSet cs;
        cs.disks.reserve(tally.size());
        cs.counts.reserve(tally.size());
        for (const auto& [disk, count] : tally) {
            cs.disks.push_back(disk);
            cs.counts.push_back(count);
        }
        result.push_back(std::move(cs));
    }
    return result;
}

std::vector<CandidateSet> index_candidates(const GridStructure& gs,
                                           Method method,
                                           std::uint32_t num_disks) {
    return bucket_candidates(gs, cell_disks(gs, method, num_disks));
}

}  // namespace pgf
