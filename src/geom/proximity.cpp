#include "pgf/geom/proximity.hpp"

#include <algorithm>

#include "pgf/util/check.hpp"

namespace pgf {

double interval_proximity(double r_lo, double r_hi, double s_lo, double s_hi,
                          double domain_len) {
    PGF_CHECK(domain_len > 0.0, "proximity requires a positive domain extent");
    PGF_CHECK(r_hi >= r_lo && s_hi >= s_lo, "intervals must be non-degenerate");
    double overlap = std::min(r_hi, s_hi) - std::max(r_lo, s_lo);
    if (overlap > 0.0) {
        double delta = overlap / domain_len;
        return (1.0 + 2.0 * delta) / 3.0;
    }
    double gap = std::max(r_lo, s_lo) - std::min(r_hi, s_hi);
    double big_delta = std::min(gap / domain_len, 1.0);
    double one_minus = 1.0 - big_delta;
    return one_minus * one_minus / 3.0;
}

}  // namespace pgf
