#include "pgf/workload/query_gen.hpp"

#include <cmath>

#include "pgf/util/check.hpp"

namespace pgf {

double query_side_fraction(double ratio, std::size_t dims) {
    PGF_CHECK(ratio > 0.0 && ratio < 1.0, "query ratio must be in (0,1)");
    PGF_CHECK(dims >= 1, "queries need at least one dimension");
    return std::pow(ratio, 1.0 / static_cast<double>(dims));
}

}  // namespace pgf
