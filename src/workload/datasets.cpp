#include "pgf/workload/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "pgf/util/check.hpp"

namespace pgf {

namespace {

constexpr double kDomain2d = 2000.0;  // paper: [0,2000] x [0,2000]

/// Clamps a coordinate strictly inside [lo, hi) so boundary cells stay
/// consistent (generators occasionally sample exactly on the edge).
double clamp_in(double x, double lo, double hi) {
    double eps = (hi - lo) * 1e-9;
    return std::clamp(x, lo, hi - eps);
}

// ---------------------------------------------------------------------------
// DSMC-like density scene.
//
// Free molecular flow along +x over a flat plate normal to the stream:
//   - free stream: uniform background density;
//   - compression: density rises exponentially approaching the plate's
//     upstream face (within the plate's y/z footprint);
//   - wake: density drops sharply just downstream of the plate.
// This reproduces the property the paper relies on — a mostly-uniform
// distribution with strong local skew, which flattens index-based response
// curves earlier than hot.2d (Sec. 3.3).
// ---------------------------------------------------------------------------
struct DsmcScene {
    double plate_x = 0.55;   ///< streamwise plate position
    double footprint_lo = 0.30;
    double footprint_hi = 0.70;
    double compression_scale = 0.07;  ///< e-folding length of the buildup
    double compression_gain = 5.0;    ///< peak density over background
    double wake_depth = 0.25;         ///< wake density relative to background
    double wake_length = 0.20;

    double density(double x, double y, double z) const {
        double rho = 1.0;
        bool in_footprint = y >= footprint_lo && y < footprint_hi &&
                            z >= footprint_lo && z < footprint_hi;
        if (in_footprint) {
            if (x < plate_x) {
                rho += compression_gain *
                       std::exp(-(plate_x - x) / compression_scale);
            } else {
                double behind = (x - plate_x) / wake_length;
                double recovery = 1.0 - std::exp(-behind);
                rho *= wake_depth + (1.0 - wake_depth) * recovery;
            }
        }
        return rho;
    }

    double max_density() const { return 1.0 + compression_gain; }
};

Point<3> sample_dsmc(const DsmcScene& scene, Rng& rng) {
    const double rho_max = scene.max_density();
    for (;;) {
        double x = rng.uniform();
        double y = rng.uniform();
        double z = rng.uniform();
        if (rng.uniform() * rho_max <= scene.density(x, y, z)) {
            return Point<3>{{x, y, z}};
        }
    }
}

}  // namespace

Dataset<2> make_uniform2d(Rng& rng, std::size_t n) {
    Dataset<2> ds;
    ds.name = "uniform.2d";
    ds.domain = Rect<2>{{{0.0, 0.0}}, {{kDomain2d, kDomain2d}}};
    ds.bucket_capacity = 56;  // 4 KB buckets, ~72-byte records
    ds.points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ds.points.push_back(Point<2>{{rng.uniform(0.0, kDomain2d),
                                      rng.uniform(0.0, kDomain2d)}});
    }
    return ds;
}

Dataset<2> make_hotspot2d(Rng& rng, std::size_t n) {
    Dataset<2> ds;
    ds.name = "hot.2d";
    ds.domain = Rect<2>{{{0.0, 0.0}}, {{kDomain2d, kDomain2d}}};
    ds.bucket_capacity = 56;
    ds.points.reserve(n);
    const std::size_t uniform_half = n / 2;
    for (std::size_t i = 0; i < uniform_half; ++i) {
        ds.points.push_back(Point<2>{{rng.uniform(0.0, kDomain2d),
                                      rng.uniform(0.0, kDomain2d)}});
    }
    // Hot spot: normal distribution centered in the domain. The standard
    // deviation (domain/10) concentrates ~95% of the hot points within the
    // central fifth of each axis, producing the heavily merged periphery
    // the paper reports (169 of 241 buckets merged).
    const double center = kDomain2d / 2.0;
    const double sigma = kDomain2d / 10.0;
    for (std::size_t i = uniform_half; i < n; ++i) {
        double x = clamp_in(rng.normal(center, sigma), 0.0, kDomain2d);
        double y = clamp_in(rng.normal(center, sigma), 0.0, kDomain2d);
        ds.points.push_back(Point<2>{{x, y}});
    }
    return ds;
}

Dataset<2> make_correl2d(Rng& rng, std::size_t n) {
    Dataset<2> ds;
    ds.name = "correl.2d";
    ds.domain = Rect<2>{{{0.0, 0.0}}, {{kDomain2d, kDomain2d}}};
    ds.bucket_capacity = 56;
    ds.points.reserve(n);
    // Points normally distributed about the diagonal y = x: the position
    // along the diagonal is uniform, the perpendicular offset is normal.
    const double sigma = kDomain2d / 25.0;
    for (std::size_t i = 0; i < n; ++i) {
        double t = rng.uniform(0.0, kDomain2d);
        double offset = rng.normal(0.0, sigma);
        // Perpendicular to the diagonal: (+offset/sqrt(2), -offset/sqrt(2)).
        double x = clamp_in(t + offset / std::numbers::sqrt2, 0.0, kDomain2d);
        double y = clamp_in(t - offset / std::numbers::sqrt2, 0.0, kDomain2d);
        ds.points.push_back(Point<2>{{x, y}});
    }
    return ds;
}

Dataset<3> make_dsmc3d(Rng& rng, std::size_t n) {
    Dataset<3> ds;
    ds.name = "DSMC.3d";
    ds.domain = Rect<3>{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    ds.bucket_capacity = 170;  // 4 KB buckets, 24-byte particle records
    ds.points.reserve(n);
    DsmcScene scene;
    for (std::size_t i = 0; i < n; ++i) {
        ds.points.push_back(sample_dsmc(scene, rng));
    }
    return ds;
}

Dataset<3> make_stock3d(Rng& rng, std::size_t n, std::size_t stocks) {
    PGF_CHECK(stocks >= 1, "need at least one stock");
    Dataset<3> ds;
    ds.name = "stock.3d";
    constexpr double kDays = 520.0;     // ~2 years of trading days
    constexpr double kMaxPrice = 500.0;
    ds.domain = Rect<3>{{{0.0, 0.0, 0.0}},
                        {{static_cast<double>(stocks), kMaxPrice, kDays}}};
    ds.bucket_capacity = 150;  // 4 KB buckets, ~27-byte quote records
    ds.points.reserve(n);

    // Each stock trades over a random contiguous span of days (listings
    // and delistings), with a geometric-random-walk closing price. Axes are
    // (stock id, price, day): uniform in (day x id) and (day x price)
    // slices, hot-spotted per stock in the (id x price) slice — the
    // structure the paper's Sec. 3.3 describes.
    std::size_t stock = 0;
    while (ds.points.size() < n) {
        double id = static_cast<double>(stock % stocks) + 0.5;
        double price = std::exp(rng.normal(std::log(40.0), 0.9));
        auto span = static_cast<std::size_t>(
            rng.uniform_int(140, static_cast<std::int64_t>(kDays)));
        auto start = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(kDays) - static_cast<std::int64_t>(span)));
        for (std::size_t d = 0; d < span && ds.points.size() < n; ++d) {
            price *= std::exp(rng.normal(0.0, 0.025));
            price = std::clamp(price, 1.0, kMaxPrice - 1.0);
            ds.points.push_back(Point<3>{{id, price,
                                          static_cast<double>(start + d) + 0.5}});
        }
        ++stock;
    }
    return ds;
}

namespace {

// ---------------------------------------------------------------------------
// MHD magnetosphere scene (cf. Tanaka '93): solar wind streams along +x
// past a planet; density rises sharply in the sheath between the bow shock
// (a paraboloid opening downstream) and the obstacle surface, and drops in
// the shadowed cavity/tail behind the planet.
// ---------------------------------------------------------------------------
struct MhdScene {
    double planet_x = 0.35;
    double planet_y = 0.5;
    double planet_z = 0.5;
    double planet_radius = 0.08;
    double shock_standoff = 0.10;   ///< sub-solar shock distance
    double shock_flare = 1.2;       ///< paraboloid opening rate
    double sheath_gain = 4.0;       ///< compressed sheath over free stream
    double cavity_density = 0.15;   ///< tail/cavity relative density
    double tail_length = 0.45;

    double density(double x, double y, double z) const {
        double dy = y - planet_y;
        double dz = z - planet_z;
        double r2 = dy * dy + dz * dz;
        double dx = x - planet_x;
        double r = std::sqrt(dx * dx + r2);
        if (r < planet_radius) return 0.0;  // inside the obstacle
        // Bow shock surface: x = planet_x - standoff + flare * r_perp^2.
        double shock_x = planet_x - shock_standoff + shock_flare * r2;
        bool behind_shock = x >= shock_x;
        if (!behind_shock) return 1.0;  // undisturbed solar wind
        // Shadowed cavity / tail downstream of the planet.
        if (dx > 0.0 && dx < tail_length &&
            r2 < planet_radius * planet_radius * (1.0 + 3.0 * dx)) {
            return cavity_density;
        }
        // Magnetosheath: compressed, decaying away from the shock nose.
        double depth = std::min(x - shock_x, 0.3);
        return 1.0 + sheath_gain * std::exp(-depth / 0.1) *
                         std::exp(-r2 / 0.12);
    }

    double max_density() const { return 1.0 + sheath_gain; }
};

}  // namespace

Dataset<3> make_mhd3d(Rng& rng, std::size_t n) {
    Dataset<3> ds;
    ds.name = "MHD.3d";
    ds.domain = Rect<3>{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    ds.bucket_capacity = 170;  // 4 KB buckets, 24-byte plasma-cell records
    ds.points.reserve(n);
    MhdScene scene;
    const double rho_max = scene.max_density();
    while (ds.points.size() < n) {
        double x = rng.uniform();
        double y = rng.uniform();
        double z = rng.uniform();
        if (rng.uniform() * rho_max <= scene.density(x, y, z)) {
            ds.points.push_back(Point<3>{{x, y, z}});
        }
    }
    return ds;
}

StreamDataset<2> make_uniform2d_stream(Rng rng, std::uint64_t n) {
    StreamDataset<2> ds;
    ds.name = "uniform.2d";
    ds.domain = Rect<2>{{{0.0, 0.0}}, {{kDomain2d, kDomain2d}}};
    ds.bucket_capacity = 56;
    ds.source = std::make_unique<GeneratorPointSource<2>>(
        n, [rng]() mutable {
            return Point<2>{{rng.uniform(0.0, kDomain2d),
                             rng.uniform(0.0, kDomain2d)}};
        });
    return ds;
}

StreamDataset<2> make_hotspot2d_stream(Rng rng, std::uint64_t n) {
    StreamDataset<2> ds;
    ds.name = "hot.2d";
    ds.domain = Rect<2>{{{0.0, 0.0}}, {{kDomain2d, kDomain2d}}};
    ds.bucket_capacity = 56;
    // Same sequence as make_hotspot2d: first n/2 uniform, then the normal
    // hot spot (the generator tracks its own position in the sequence).
    const std::uint64_t uniform_half = n / 2;
    ds.source = std::make_unique<GeneratorPointSource<2>>(
        n, [rng, uniform_half, i = std::uint64_t{0}]() mutable {
            if (i++ < uniform_half) {
                return Point<2>{{rng.uniform(0.0, kDomain2d),
                                 rng.uniform(0.0, kDomain2d)}};
            }
            const double center = kDomain2d / 2.0;
            const double sigma = kDomain2d / 10.0;
            double x = clamp_in(rng.normal(center, sigma), 0.0, kDomain2d);
            double y = clamp_in(rng.normal(center, sigma), 0.0, kDomain2d);
            return Point<2>{{x, y}};
        });
    return ds;
}

StreamDataset<3> make_dsmc3d_stream(Rng rng, std::uint64_t n) {
    StreamDataset<3> ds;
    ds.name = "DSMC.3d";
    ds.domain = Rect<3>{{{0.0, 0.0, 0.0}}, {{1.0, 1.0, 1.0}}};
    ds.bucket_capacity = 170;
    ds.source = std::make_unique<GeneratorPointSource<3>>(
        n, [rng, scene = DsmcScene{}]() mutable {
            return sample_dsmc(scene, rng);
        });
    return ds;
}

Dataset<4> make_dsmc4d(Rng& rng, std::size_t snapshots,
                       std::size_t per_snapshot) {
    PGF_CHECK(snapshots >= 1, "need at least one snapshot");
    Dataset<4> ds;
    ds.name = "DSMC.4d";
    ds.domain = Rect<4>{{{0.0, 0.0, 0.0, 0.0}},
                        {{static_cast<double>(snapshots), 1.0, 1.0, 1.0}}};
    ds.bucket_capacity = 215;  // 8 KB buckets (paper Sec. 3.5)
    ds.points.reserve(snapshots * per_snapshot);
    for (std::size_t t = 0; t < snapshots; ++t) {
        DsmcScene scene;
        // The compression front advects downstream over the simulated run.
        double progress = snapshots > 1
                              ? static_cast<double>(t) /
                                    static_cast<double>(snapshots - 1)
                              : 0.0;
        scene.plate_x = 0.35 + 0.35 * progress;
        for (std::size_t i = 0; i < per_snapshot; ++i) {
            Point<3> p = sample_dsmc(scene, rng);
            ds.points.push_back(
                Point<4>{{static_cast<double>(t) + 0.5, p[0], p[1], p[2]}});
        }
    }
    return ds;
}

}  // namespace pgf
