#include "pgf/util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "pgf/util/check.hpp"

namespace pgf {

Cli::Cli(int argc, const char* const* argv) {
    PGF_CHECK(argc >= 1, "Cli requires at least argv[0]");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::optional<std::string> Cli::raw(const std::string& name) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return std::nullopt;
    return it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
    auto v = raw(name);
    return v && !v->empty() ? *v : fallback;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
    auto v = raw(name);
    if (!v || v->empty()) return fallback;
    return std::strtoll(v->c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
    auto v = raw(name);
    if (!v || v->empty()) return fallback;
    return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
    auto v = raw(name);
    if (!v) return fallback;
    if (v->empty()) return true;  // bare --flag
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
    if (s == "0" || s == "false" || s == "no" || s == "off") return false;
    return fallback;
}

}  // namespace pgf
