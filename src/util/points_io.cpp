#include "pgf/util/points_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pgf/util/check.hpp"

namespace pgf {

namespace {

bool parse_row(const std::string& line, char delimiter,
               std::vector<double>* out) {
    out->clear();
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t end = line.find(delimiter, start);
        if (end == std::string::npos) end = line.size();
        std::string cell = line.substr(start, end - start);
        // Trim surrounding whitespace.
        std::size_t first = cell.find_first_not_of(" \t\r");
        if (first == std::string::npos) return false;
        std::size_t last = cell.find_last_not_of(" \t\r");
        cell = cell.substr(first, last - first + 1);
        char* parse_end = nullptr;
        double v = std::strtod(cell.c_str(), &parse_end);
        if (parse_end == cell.c_str() || *parse_end != '\0') return false;
        out->push_back(v);
        start = end + 1;
    }
    return !out->empty();
}

}  // namespace

std::vector<std::vector<double>> read_csv_points(const std::string& path,
                                                 char delimiter) {
    std::ifstream in(path);
    PGF_CHECK(in.is_open(), "read_csv_points: cannot open " + path);
    std::vector<std::vector<double>> rows;
    std::string line;
    std::vector<double> row;
    std::size_t line_no = 0;
    bool first_content_line = true;
    while (std::getline(in, line)) {
        ++line_no;
        // Skip blanks and comments.
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        if (!parse_row(line, delimiter, &row)) {
            // A single leading non-numeric row is a header.
            PGF_CHECK(first_content_line,
                      "read_csv_points: non-numeric cell at " + path + ":" +
                          std::to_string(line_no));
            first_content_line = false;
            continue;
        }
        first_content_line = false;
        if (!rows.empty()) {
            PGF_CHECK(row.size() == rows.front().size(),
                      "read_csv_points: ragged row at " + path + ":" +
                          std::to_string(line_no));
        }
        rows.push_back(row);
    }
    return rows;
}

void write_csv_points(const std::string& path,
                      const std::vector<std::vector<double>>& rows,
                      char delimiter) {
    std::ofstream out(path);
    PGF_CHECK(out.is_open(), "write_csv_points: cannot open " + path);
    std::ostringstream line;
    for (const auto& row : rows) {
        line.str("");
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) line << delimiter;
            line << row[i];
        }
        out << line.str() << '\n';
    }
    PGF_CHECK(out.good(), "write_csv_points: write failed for " + path);
}

}  // namespace pgf
