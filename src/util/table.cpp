#include "pgf/util/table.hpp"

#include <algorithm>
#include <iomanip>

#include "pgf/util/check.hpp"

namespace pgf {

std::string format_double(double value, int precision, bool trim) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    std::string s = os.str();
    if (trim && s.find('.') != std::string::npos) {
        s.erase(s.find_last_not_of('0') + 1);
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
}

TextTable::TextTable(std::vector<std::string> header) {
    set_header(std::move(header));
}

void TextTable::set_header(std::vector<std::string> header) {
    header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
    PGF_CHECK(header_.empty() || row.size() == header_.size(),
              "row width must match header width");
    rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
    std::size_t cols = header_.size();
    for (const auto& r : rows_) cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    if (!header_.empty()) widen(header_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::setw(static_cast<int>(width[i])) << row[i];
            if (i + 1 < row.size()) os << "  ";
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < cols; ++i) total += width[i] + (i ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_) emit(r);
}

std::string TextTable::str() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << csv_escape(cells[i]);
    }
    os << '\n';
}
}  // namespace

bool TextTable::write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    if (!header_.empty()) write_csv_row(out, header_);
    for (const auto& r : rows_) write_csv_row(out, r);
    return true;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
    PGF_CHECK(static_cast<bool>(out_), "CsvWriter: cannot open " + path);
    write_csv_row(out_, header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    write_csv_row(out_, cells);
}

void CsvWriter::write_row(std::initializer_list<double> values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(format_double(v, 6, true));
    write_csv_row(out_, cells);
}

}  // namespace pgf
