#include "pgf/util/check.hpp"

#include <sstream>

namespace pgf::detail {

namespace {
// Innermost active report scope of this thread (intrusive stack; each scope
// remembers its parent). Thread-local so concurrent audits don't interleave
// their context.
thread_local CheckReportScope* g_report_scope = nullptr;
}  // namespace

CheckReportScope::CheckReportScope(std::function<std::string()> render)
    : render_(std::move(render)), parent_(g_report_scope) {
    g_report_scope = this;
}

CheckReportScope::~CheckReportScope() { g_report_scope = parent_; }

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
    std::ostringstream os;
    os << "PGF_CHECK failed: (" << expr << ") at " << file << ":" << line
       << " — " << message;
    std::string report;
    for (const CheckReportScope* scope = g_report_scope; scope != nullptr;
         scope = scope->parent()) {
        if (!report.empty()) report += "\n";
        report += scope->render();
    }
    throw CheckError(os.str(), report);
}

}  // namespace pgf::detail
