#include "pgf/util/check.hpp"

#include <sstream>

namespace pgf::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
    std::ostringstream os;
    os << "PGF_CHECK failed: (" << expr << ") at " << file << ":" << line
       << " — " << message;
    throw CheckError(os.str());
}

}  // namespace pgf::detail
