#include "pgf/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "pgf/util/check.hpp"

namespace pgf {

Rng::Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    state_ = sm.next();
    inc_ = sm.next() | 1u;  // stream selector must be odd
    next_u32();             // advance once so state depends on inc_
}

std::uint32_t Rng::next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::below(std::uint32_t bound) {
    PGF_CHECK(bound > 0, "Rng::below requires a positive bound");
    // Lemire's nearly-divisionless unbiased method.
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
        std::uint32_t threshold = (0u - bound) % bound;
        while (lo < threshold) {
            m = static_cast<std::uint64_t>(next_u32()) * bound;
            lo = static_cast<std::uint32_t>(m);
        }
    }
    return static_cast<std::uint32_t>(m >> 32);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    PGF_CHECK(lo <= hi, "Rng::uniform_int requires lo <= hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<std::int64_t>(next_u64());
    }
    if (span <= 0xffffffffULL) {
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint32_t>(span)));
    }
    // Rejection sampling over 64-bit span.
    std::uint64_t limit = ~0ULL - (~0ULL % span) - 1;
    std::uint64_t r;
    do {
        r = next_u64();
    } while (r > limit);
    return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

double Rng::normal(double mean, double stddev) {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return mean + stddev * spare_normal_;
    }
    // Box–Muller: generate two independent standard normals.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * std::numbers::pi * u2;
    spare_normal_ = radius * std::sin(angle);
    has_spare_normal_ = true;
    return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double rate) {
    PGF_CHECK(rate > 0.0, "Rng::exponential requires rate > 0");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
    PGF_CHECK(k <= n, "Rng::sample_indices requires k <= n");
    // Partial Fisher–Yates over an index vector: O(n) setup, exact uniformity.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + below(static_cast<std::uint32_t>(n - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

}  // namespace pgf
