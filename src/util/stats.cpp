#include "pgf/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pgf/util/check.hpp"

namespace pgf {

void OnlineStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    auto na = static_cast<double>(n_);
    auto nb = static_cast<double>(other.n_);
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double OnlineStats::mean() const {
    PGF_CHECK(n_ > 0, "mean of empty OnlineStats");
    return mean_;
}

double OnlineStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
    PGF_CHECK(n_ > 0, "min of empty OnlineStats");
    return min_;
}

double OnlineStats::max() const {
    PGF_CHECK(n_ > 0, "max of empty OnlineStats");
    return max_;
}

double quantile(std::vector<double> values, double q) {
    PGF_CHECK(!values.empty(), "quantile of empty vector");
    PGF_CHECK(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    PGF_CHECK(hi > lo, "Histogram requires hi > lo");
    PGF_CHECK(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
    double t = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
    b = std::clamp<std::ptrdiff_t>(b, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(b)];
    ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
    PGF_CHECK(i < counts_.size(), "histogram bin out of range");
    return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t max_width) const {
    std::size_t peak = 1;
    for (std::size_t c : counts_) peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t width = counts_[i] * max_width / peak;
        os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
           << std::string(width, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

}  // namespace pgf
