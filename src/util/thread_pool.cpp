#include "pgf/util/thread_pool.hpp"

#include <algorithm>

#include "pgf/util/check.hpp"

namespace pgf {

namespace {

// Innermost pool currently executing parallel_for chunks on this thread.
// A reentrant submission (fn submitting to the pool that is running it)
// would self-deadlock on submit_mutex_; the thread-local lets checked
// builds fail fast with a diagnosable error instead. Saved/restored as a
// stack so nested *different* pools (an outer sweep pool driving an inner
// kernel pool) stay legal.
thread_local const ThreadPool* tls_running_pool = nullptr;

class RunningPoolScope {
public:
    explicit RunningPoolScope(const ThreadPool* pool)
        : saved_(tls_running_pool) {
        tls_running_pool = pool;
    }
    ~RunningPoolScope() { tls_running_pool = saved_; }

    RunningPoolScope(const RunningPoolScope&) = delete;
    RunningPoolScope& operator=(const RunningPoolScope&) = delete;

private:
    const ThreadPool* saved_;
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::chunk_size(std::size_t n) const {
    if (n == 0) return 0;
    // ~4 chunks per thread bounds the imbalance while keeping per-chunk
    // dispatch overhead negligible.
    std::size_t target = static_cast<std::size_t>(parallelism()) * 4;
    return std::max<std::size_t>(1, (n + target - 1) / target);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for_chunk(n, chunk_size(n), fn);
}

void ThreadPool::parallel_for_chunk(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    PGF_CHECK(chunk >= 1, "parallel_for_chunk requires chunk >= 1");
    // Reentrant submission would self-deadlock on submit_mutex_ below (or,
    // from a worker thread, starve the outer task forever). Fail fast with
    // a clear message while the stack still shows the offending fn.
    PGF_DCHECK(tls_running_pool != this,
               "ThreadPool::parallel_for is not reentrant: fn submitted to "
               "the pool that is running it; use a separate (inner) pool "
               "for nested parallelism");
    const std::size_t chunks = (n + chunk - 1) / chunk;
    // Concurrent external callers take turns; each completed invocation
    // leaves outstanding == 0, so the belt-and-braces check below also
    // catches reentrant submissions in unchecked builds — before this
    // thread would deadlock claiming chunks it can never run.
    MutexLock submit_lock(submit_mutex_);
    {
        MutexLock lock(mutex_);
        PGF_CHECK(task_.outstanding == 0,
                  "parallel_for is not reentrant");
        task_.fn = &fn;
        task_.n = n;
        task_.chunk = chunk;
        task_.next = 0;
        task_.outstanding = chunks;
        ++task_.generation;
    }
    work_cv_.notify_all();
    // The calling thread works too.
    {
        RunningPoolScope running(this);
        for (;;) {
            std::size_t begin;
            {
                MutexLock lock(mutex_);
                if (task_.next >= task_.n) break;
                begin = task_.next;
                task_.next += task_.chunk;
            }
            fn(begin, std::min(begin + chunk, n));
            {
                MutexLock lock(mutex_);
                --task_.outstanding;
            }
        }
    }
    MutexLock lock(mutex_);
    while (task_.outstanding != 0) lock.wait(done_cv_);
    task_.fn = nullptr;
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_generation = 0;
    RunningPoolScope running(this);
    for (;;) {
        const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
        std::size_t begin = 0, end = 0;
        {
            MutexLock lock(mutex_);
            while (!(shutdown_ ||
                     (task_.fn != nullptr &&
                      (task_.generation != seen_generation ||
                       task_.next < task_.n)))) {
                lock.wait(work_cv_);
            }
            if (shutdown_) return;
            seen_generation = task_.generation;
            if (task_.fn == nullptr || task_.next >= task_.n) continue;
            fn = task_.fn;
            begin = task_.next;
            task_.next += task_.chunk;
            end = std::min(begin + task_.chunk, task_.n);
        }
        (*fn)(begin, end);
        bool all_done;
        {
            MutexLock lock(mutex_);
            all_done = --task_.outstanding == 0;
        }
        if (all_done) done_cv_.notify_all();
    }
}

}  // namespace pgf
