#include "pgf/util/thread_pool.hpp"

#include <algorithm>

#include "pgf/util/check.hpp"

namespace pgf {

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? hw - 1 : 0;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::chunk_size(std::size_t n) const {
    if (n == 0) return 0;
    // ~4 chunks per thread bounds the imbalance while keeping per-chunk
    // dispatch overhead negligible.
    std::size_t target = static_cast<std::size_t>(parallelism()) * 4;
    return std::max<std::size_t>(1, (n + target - 1) / target);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for_chunk(n, chunk_size(n), fn);
}

void ThreadPool::parallel_for_chunk(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    PGF_CHECK(chunk >= 1, "parallel_for_chunk requires chunk >= 1");
    const std::size_t chunks = (n + chunk - 1) / chunk;
    // Concurrent external callers take turns; each completed invocation
    // leaves outstanding == 0, so the reentrancy check below still catches
    // submissions from inside fn (which would self-deadlock here anyway).
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PGF_CHECK(task_.outstanding == 0,
                  "parallel_for is not reentrant");
        task_.fn = &fn;
        task_.n = n;
        task_.chunk = chunk;
        task_.next = 0;
        task_.outstanding = chunks;
        ++task_.generation;
    }
    work_cv_.notify_all();
    // The calling thread works too.
    for (;;) {
        std::size_t begin;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (task_.next >= task_.n) break;
            begin = task_.next;
            task_.next += task_.chunk;
        }
        fn(begin, std::min(begin + chunk, n));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --task_.outstanding;
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return task_.outstanding == 0; });
    task_.fn = nullptr;
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
        std::size_t begin = 0, end = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return shutdown_ ||
                       (task_.generation != seen_generation &&
                        task_.fn != nullptr) ||
                       (task_.fn != nullptr && task_.next < task_.n);
            });
            if (shutdown_) return;
            seen_generation = task_.generation;
            if (task_.fn == nullptr || task_.next >= task_.n) continue;
            fn = task_.fn;
            begin = task_.next;
            task_.next += task_.chunk;
            end = std::min(begin + task_.chunk, task_.n);
        }
        (*fn)(begin, end);
        bool all_done;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            all_done = --task_.outstanding == 0;
        }
        if (all_done) done_cv_.notify_all();
    }
}

}  // namespace pgf
