#include "pgf/analysis/validate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace pgf::analysis {

namespace {

constexpr std::uint32_t kUnowned = std::numeric_limits<std::uint32_t>::max();

/// Cell coordinates of flattened index `idx` (row-major, last axis fastest)
/// rendered as "(c0, c1, ...)".
std::string cell_name(std::uint64_t idx,
                      const std::vector<std::uint32_t>& shape) {
    std::vector<std::uint64_t> coord(shape.size(), 0);
    for (std::size_t i = shape.size(); i-- > 0;) {
        coord[i] = idx % shape[i];
        idx /= shape[i];
    }
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < coord.size(); ++i) {
        if (i) os << ", ";
        os << coord[i];
    }
    os << ")";
    return os.str();
}

/// True when the bucket's vectors have dimensionality `d` and its cell box
/// is non-empty and inside the grid — the precondition for walking it.
bool box_walkable(const BucketInfo& b, const GridStructure& gs) {
    const std::size_t d = gs.dims();
    if (b.cell_lo.size() != d || b.cell_hi.size() != d) return false;
    for (std::size_t i = 0; i < d; ++i) {
        if (b.cell_lo[i] >= b.cell_hi[i] || b.cell_hi[i] > gs.shape[i]) {
            return false;
        }
    }
    return true;
}

/// Invokes fn(flat_index) for every cell of bucket `b` (which must be
/// walkable). Row-major odometer, last axis fastest.
template <typename Fn>
void for_each_flat_cell(const BucketInfo& b, const GridStructure& gs,
                        Fn&& fn) {
    const std::size_t d = gs.dims();
    std::vector<std::uint32_t> cell(b.cell_lo);
    for (;;) {
        std::uint64_t flat = 0;
        for (std::size_t i = 0; i < d; ++i) {
            flat = flat * gs.shape[i] + cell[i];
        }
        fn(flat);
        std::size_t axis = d;
        bool done = true;
        while (axis-- > 0) {
            if (++cell[axis] < b.cell_hi[axis]) {
                done = false;
                break;
            }
            cell[axis] = b.cell_lo[axis];
        }
        if (done) return;
    }
}

detail::CheckReportScope audit_scope(const ValidationReport& report) {
    return detail::CheckReportScope(
        [&report] { return "audit context:\n" + report.summary(); });
}

void fast_structure_checks(const GridStructure& gs, ValidationReport& r) {
    const std::size_t d = gs.dims();
    r.require(d >= 1, "gridfile.dims.empty",
              "structure has zero dimensions");
    r.require(gs.domain_lo.size() == d && gs.domain_hi.size() == d,
              "gridfile.domain.dims",
              "domain bounds do not match shape dimensionality");
    if (!r.ok()) return;

    for (std::size_t i = 0; i < d; ++i) {
        r.require_lazy(gs.shape[i] >= 1, "gridfile.shape.empty", [&] {
            return "axis " + std::to_string(i) + " has zero cells";
        });
        r.require_lazy(gs.domain_lo[i] < gs.domain_hi[i],
                       "gridfile.domain.empty", [&] {
                           return "axis " + std::to_string(i) +
                                  " has an empty domain interval";
                       });
    }
    if (!r.ok()) return;

    std::uint64_t covered = 0;
    for (std::size_t b = 0; b < gs.buckets.size(); ++b) {
        const BucketInfo& info = gs.buckets[b];
        const std::string which = "bucket " + std::to_string(b);
        r.require(info.cell_lo.size() == d && info.cell_hi.size() == d &&
                      info.region_lo.size() == d && info.region_hi.size() == d,
                  "gridfile.bucket.dims", which + " dimensionality mismatch");
        if (!box_walkable(info, gs)) {
            r.require(false, "gridfile.bucket.cellbox",
                      which + " cell box is empty or out of the grid");
            continue;
        }
        ++r.checks_run;  // the walkability check above
        for (std::size_t i = 0; i < d; ++i) {
            r.require_lazy(info.region_lo[i] < info.region_hi[i],
                           "gridfile.bucket.region.empty", [&] {
                               return which + " axis " + std::to_string(i) +
                                      " region interval is empty";
                           });
            r.require_lazy(info.region_lo[i] >= gs.domain_lo[i] &&
                               info.region_hi[i] <= gs.domain_hi[i],
                           "gridfile.bucket.region.domain", [&] {
                               return which + " axis " + std::to_string(i) +
                                      " region leaves the domain";
                           });
        }
        covered += info.cell_count();
    }
    r.require_lazy(covered == gs.cell_count(), "gridfile.coverage.total", [&] {
        return "buckets cover " + std::to_string(covered) + " cells, grid has " +
               std::to_string(gs.cell_count());
    });
}

void standard_structure_checks(const GridStructure& gs, ValidationReport& r) {
    // Exact tiling: rebuild the directory from the cell boxes. Rectangular
    // *and disjoint* merged regions is equivalent to each cell having
    // exactly one owner, given each bucket is an axis-aligned box.
    std::vector<std::uint32_t> owner(gs.cell_count(), kUnowned);
    for (std::size_t b = 0; b < gs.buckets.size(); ++b) {
        if (!box_walkable(gs.buckets[b], gs)) continue;  // reported in fast
        for_each_flat_cell(gs.buckets[b], gs, [&](std::uint64_t flat) {
            r.require_lazy(owner[flat] == kUnowned,
                           "gridfile.coverage.overlap", [&] {
                               return "cell " + cell_name(flat, gs.shape) +
                                      " owned by both bucket " +
                                      std::to_string(owner[flat]) +
                                      " and bucket " + std::to_string(b);
                           });
            owner[flat] = static_cast<std::uint32_t>(b);
        });
    }
    for (std::uint64_t c = 0; c < owner.size(); ++c) {
        r.require_lazy(owner[c] != kUnowned, "gridfile.coverage.hole", [&] {
            return "cell " + cell_name(c, gs.shape) +
                   " is mapped to no bucket";
        });
    }
}

void deep_structure_checks(const GridStructure& gs, ValidationReport& r) {
    // Reconstruct the implied linear scales: grid line k of axis i must
    // have one consistent data-space coordinate across every bucket whose
    // region starts or ends there, and the per-axis boundary sequence must
    // be strictly increasing (i.e. the scales are sorted with unique split
    // points) and anchored exactly at the domain bounds.
    const std::size_t d = gs.dims();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < d; ++i) {
        std::vector<double> boundary(gs.shape[i] + std::size_t{1}, nan);
        bool consistent = true;
        auto record = [&](std::uint32_t line, double coord, std::size_t b) {
            if (std::isnan(boundary[line])) {
                boundary[line] = coord;
                return;
            }
            r.require_lazy(boundary[line] == coord,
                           "gridfile.scale.inconsistent", [&] {
                               std::ostringstream os;
                               os << "axis " << i << " grid line " << line
                                  << ": bucket " << b << " places it at "
                                  << coord << " but it was previously at "
                                  << boundary[line];
                               return os.str();
                           });
            if (boundary[line] != coord) consistent = false;
        };
        for (std::size_t b = 0; b < gs.buckets.size(); ++b) {
            if (!box_walkable(gs.buckets[b], gs)) continue;
            record(gs.buckets[b].cell_lo[i], gs.buckets[b].region_lo[i], b);
            record(gs.buckets[b].cell_hi[i], gs.buckets[b].region_hi[i], b);
        }
        if (!consistent) continue;  // ordering checks would only re-report
        r.require_lazy(std::isnan(boundary.front()) ||
                           boundary.front() == gs.domain_lo[i],
                       "gridfile.scale.domain_lo", [&] {
                           return "axis " + std::to_string(i) +
                                  " first boundary is not the domain lower "
                                  "bound";
                       });
        r.require_lazy(std::isnan(boundary.back()) ||
                           boundary.back() == gs.domain_hi[i],
                       "gridfile.scale.domain_hi", [&] {
                           return "axis " + std::to_string(i) +
                                  " last boundary is not the domain upper "
                                  "bound";
                       });
        double prev = nan;
        std::uint32_t prev_line = 0;
        for (std::size_t k = 0; k < boundary.size(); ++k) {
            if (std::isnan(boundary[k])) continue;  // line interior to all
            if (!std::isnan(prev)) {
                r.require_lazy(prev < boundary[k], "gridfile.scale.sorted",
                               [&] {
                                   std::ostringstream os;
                                   os << "axis " << i << " boundaries not "
                                      << "strictly increasing: line "
                                      << prev_line << " at " << prev
                                      << " vs line " << k << " at "
                                      << boundary[k];
                                   return os.str();
                               });
            }
            prev = boundary[k];
            prev_line = static_cast<std::uint32_t>(k);
        }
    }
}

}  // namespace

std::string to_string(ValidationLevel level) {
    switch (level) {
        case ValidationLevel::kFast: return "fast";
        case ValidationLevel::kStandard: return "standard";
        case ValidationLevel::kDeep: return "deep";
    }
    return "unknown";
}

bool parse_validation_level(const std::string& text, ValidationLevel* out) {
    if (text == "fast") {
        *out = ValidationLevel::kFast;
    } else if (text == "standard") {
        *out = ValidationLevel::kStandard;
    } else if (text == "deep") {
        *out = ValidationLevel::kDeep;
    } else {
        return false;
    }
    return true;
}

void ValidationReport::merge(const ValidationReport& other) {
    checks_run += other.checks_run;
    level = std::max(level, other.level);
    findings.insert(findings.end(), other.findings.begin(),
                    other.findings.end());
}

std::string ValidationReport::summary(std::size_t max_findings) const {
    std::ostringstream os;
    os << "[" << subsystem << "] level=" << to_string(level)
       << " checks=" << checks_run << " findings=" << findings.size();
    const std::size_t shown = std::min(max_findings, findings.size());
    for (std::size_t i = 0; i < shown; ++i) {
        os << "\n  - " << findings[i].invariant << ": " << findings[i].detail;
    }
    if (shown < findings.size()) {
        os << "\n  … and " << findings.size() - shown << " more";
    }
    return os.str();
}

void ValidationReport::enforce() const {
    PGF_CHECK(ok(), subsystem + " audit found " +
                        std::to_string(findings.size()) +
                        " violated invariant(s)\n" + summary());
}

ValidationReport audit_structure(const GridStructure& gs,
                                 ValidationLevel level) {
    ValidationReport r("gridfile.structure", level);
    auto scope = audit_scope(r);
    fast_structure_checks(gs, r);
    if (level >= ValidationLevel::kStandard && gs.dims() >= 1) {
        standard_structure_checks(gs, r);
    }
    if (level >= ValidationLevel::kDeep && gs.dims() >= 1) {
        deep_structure_checks(gs, r);
    }
    return r;
}

ValidationReport audit_assignment(const GridStructure& gs,
                                  const Assignment& assignment,
                                  ValidationLevel level,
                                  const AssignmentAuditOptions& options) {
    ValidationReport r("decluster.assignment", level);
    auto scope = audit_scope(r);

    r.require(assignment.num_disks >= 1, "decluster.disks.none",
              "assignment declares zero disks");
    r.require_lazy(assignment.disk_of.size() == gs.bucket_count(),
                   "decluster.assignment.incomplete", [&] {
                       return "assignment covers " +
                              std::to_string(assignment.disk_of.size()) +
                              " buckets, structure has " +
                              std::to_string(gs.bucket_count());
                   });
    if (assignment.num_disks == 0) return r;

    std::vector<std::size_t> load(assignment.num_disks, 0);
    std::vector<std::size_t> records(assignment.num_disks, 0);
    std::size_t total_records = 0;
    for (std::size_t b = 0; b < assignment.disk_of.size(); ++b) {
        const std::uint32_t disk = assignment.disk_of[b];
        r.require_lazy(disk < assignment.num_disks,
                       "decluster.assignment.disk_range", [&] {
                           return "bucket " + std::to_string(b) +
                                  " assigned to unknown disk " +
                                  std::to_string(disk);
                       });
        if (disk >= assignment.num_disks) continue;
        ++load[disk];
        if (b < gs.buckets.size()) {
            records[disk] += gs.buckets[b].record_count;
            total_records += gs.buckets[b].record_count;
        }
    }

    if (level >= ValidationLevel::kStandard) {
        const std::size_t max_load =
            load.empty() ? 0 : *std::max_element(load.begin(), load.end());
        if (options.max_bucket_load > 0) {
            r.require_lazy(max_load <= options.max_bucket_load,
                           "decluster.load.bound", [&] {
                               return "max disk load " +
                                      std::to_string(max_load) +
                                      " exceeds declared bound " +
                                      std::to_string(options.max_bucket_load);
                           });
        }
    }

    if (level >= ValidationLevel::kDeep && options.max_data_imbalance > 0.0 &&
        total_records > 0) {
        const std::size_t max_records =
            *std::max_element(records.begin(), records.end());
        const double imbalance =
            static_cast<double>(max_records) *
            static_cast<double>(assignment.num_disks) /
            static_cast<double>(total_records);
        r.require_lazy(imbalance <= options.max_data_imbalance,
                       "decluster.balance.bound", [&] {
                           std::ostringstream os;
                           os << "data imbalance " << imbalance
                              << " exceeds declared bound "
                              << options.max_data_imbalance;
                           return os.str();
                       });
    }
    return r;
}

ValidationReport audit_conflict_resolution(
    const GridStructure& gs, const std::vector<CandidateSet>& candidates,
    const Assignment& assignment) {
    ValidationReport r("decluster.conflict", ValidationLevel::kStandard);
    auto scope = audit_scope(r);

    r.require_lazy(candidates.size() == gs.bucket_count(),
                   "decluster.conflict.candidates", [&] {
                       return std::to_string(candidates.size()) +
                              " candidate sets for " +
                              std::to_string(gs.bucket_count()) + " buckets";
                   });
    const std::size_t n =
        std::min({candidates.size(), gs.bucket_count(),
                  assignment.disk_of.size()});
    r.require_lazy(assignment.disk_of.size() == gs.bucket_count(),
                   "decluster.assignment.incomplete", [&] {
                       return "assignment covers " +
                              std::to_string(assignment.disk_of.size()) +
                              " buckets, structure has " +
                              std::to_string(gs.bucket_count());
                   });

    for (std::size_t b = 0; b < n; ++b) {
        const CandidateSet& c = candidates[b];
        const std::string which = "bucket " + std::to_string(b);
        r.require(!c.disks.empty(), "decluster.conflict.empty",
                  which + " has no candidate disks");
        r.require(c.disks.size() == c.counts.size(),
                  "decluster.conflict.counts",
                  which + " candidate/count arity mismatch");
        if (c.disks.empty() || c.disks.size() != c.counts.size()) continue;

        bool sorted = true;
        std::uint64_t multiplicity = c.counts[0];
        for (std::size_t k = 1; k < c.disks.size(); ++k) {
            if (c.disks[k - 1] >= c.disks[k]) sorted = false;
            multiplicity += c.counts[k];
        }
        r.require(sorted, "decluster.conflict.sorted",
                  which + " candidate disks not strictly sorted");
        r.require_lazy(c.disks.back() < assignment.num_disks,
                       "decluster.conflict.disk_range", [&] {
                           return which + " names disk " +
                                  std::to_string(c.disks.back()) + " of " +
                                  std::to_string(assignment.num_disks);
                       });
        r.require_lazy(multiplicity == gs.buckets[b].cell_count(),
                       "decluster.conflict.multiplicity", [&] {
                           return which + " candidate multiplicities sum to " +
                                  std::to_string(multiplicity) +
                                  " but the bucket spans " +
                                  std::to_string(gs.buckets[b].cell_count()) +
                                  " cells";
                       });
        r.require_lazy(std::binary_search(c.disks.begin(), c.disks.end(),
                                          assignment.disk_of[b]),
                       "decluster.conflict.postcondition", [&] {
                           return which + " resolved to disk " +
                                  std::to_string(assignment.disk_of[b]) +
                                  " which is not in its candidate set";
                       });
    }
    return r;
}

}  // namespace pgf::analysis
