#include "pgf/analysis/sim_audit.hpp"

#include <limits>
#include <sstream>

namespace pgf::analysis {

namespace {
std::string time_pair(sim::SimTime a, sim::SimTime b) {
    std::ostringstream os;
    os << a << " vs " << b;
    return os.str();
}
}  // namespace

DesAudit::DesAudit(sim::Simulator& sim)
    : sim_(&sim),
      report_("sim", ValidationLevel::kStandard),
      scope_([this] { return "audit context:\n" + report_.summary(); }),
      last_dispatch_(-std::numeric_limits<sim::SimTime>::infinity()) {
    sim::Simulator::Observer obs;
    obs.on_schedule = [this](sim::SimTime when, sim::SimTime now) {
        on_schedule(when, now);
    };
    obs.on_dispatch = [this](sim::SimTime when, std::size_t pending) {
        on_dispatch(when, pending);
    };
    sim_->set_observer(std::move(obs));
}

DesAudit::~DesAudit() { detach(); }

void DesAudit::detach() {
    if (attached_) {
        sim_->clear_observer();
        attached_ = false;
    }
}

void DesAudit::mark_teardown() {
    torn_down_ = true;
    report_.require_lazy(sim_->empty(), "sim.teardown.pending", [&] {
        return std::to_string(sim_->pending()) +
               " event(s) still queued at teardown";
    });
}

void DesAudit::on_schedule(sim::SimTime when, sim::SimTime now) {
    ++scheduled_;
    report_.require_lazy(!torn_down_, "sim.teardown.schedule", [&] {
        std::ostringstream os;
        os << "event scheduled at t=" << when << " after teardown";
        return os.str();
    });
    report_.require_lazy(when >= now, "sim.causality.schedule", [&] {
        return "event scheduled into the past: " + time_pair(when, now);
    });
}

void DesAudit::on_dispatch(sim::SimTime when, std::size_t /*pending*/) {
    ++dispatched_;
    report_.require_lazy(!torn_down_, "sim.teardown.dispatch", [&] {
        std::ostringstream os;
        os << "event fired at t=" << when << " after teardown";
        return os.str();
    });
    report_.require_lazy(when >= last_dispatch_, "sim.causality.dispatch",
                         [&] {
                             return "dispatch timestamps decreased: " +
                                    time_pair(last_dispatch_, when);
                         });
    last_dispatch_ = when;
}

}  // namespace pgf::analysis
