#include "pgf/analytic/optimal.hpp"

#include "pgf/util/check.hpp"

namespace pgf {

std::uint64_t optimal_square_response(std::uint32_t l, std::uint32_t num_disks) {
    PGF_CHECK(l >= 1 && num_disks >= 1, "need l >= 1 and M >= 1");
    std::uint64_t cells = static_cast<std::uint64_t>(l) * l;
    return (cells + num_disks - 1) / num_disks;
}

double optimal_square_response_real(std::uint32_t l, std::uint32_t num_disks) {
    PGF_CHECK(l >= 1 && num_disks >= 1, "need l >= 1 and M >= 1");
    return static_cast<double>(static_cast<std::uint64_t>(l) * l) / num_disks;
}

}  // namespace pgf
