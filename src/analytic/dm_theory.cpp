#include "pgf/analytic/dm_theory.hpp"

#include <algorithm>
#include <vector>

#include "pgf/analytic/optimal.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

DmPrediction dm_theorem1(std::uint32_t l, std::uint32_t num_disks) {
    PGF_CHECK(l >= 1 && num_disks >= 1, "need l >= 1 and M >= 1");
    const std::uint32_t m = num_disks;
    DmPrediction p;
    if (m > l) {
        p.response = l;
        // Optimal would be ceil(l^2/M) < l whenever M > l (and l > 1).
        p.strictly_optimal = (p.response == optimal_square_response(l, m));
        return p;
    }
    const std::uint64_t beta = l % m;
    const std::uint64_t opt = optimal_square_response(l, m);
    if (beta == 0 ||
        static_cast<double>(beta) > m * (1.0 - 1.0 / static_cast<double>(beta))) {
        p.response = opt;
        p.strictly_optimal = true;
        return p;
    }
    p.response = opt + beta - (beta * beta + m - 1) / m;  // ceil(beta^2/M)
    p.strictly_optimal = (p.response == opt);
    return p;
}

std::uint64_t dm_response_at(std::uint32_t x0, std::uint32_t y0,
                             std::uint32_t l, std::uint32_t num_disks) {
    PGF_CHECK(l >= 1 && num_disks >= 1, "need l >= 1 and M >= 1");
    std::vector<std::uint64_t> per_disk(num_disks, 0);
    for (std::uint32_t i = 0; i < l; ++i) {
        for (std::uint32_t j = 0; j < l; ++j) {
            ++per_disk[(static_cast<std::uint64_t>(x0) + i + y0 + j) %
                       num_disks];
        }
    }
    return *std::max_element(per_disk.begin(), per_disk.end());
}

std::uint64_t dm_response_exact(std::uint32_t l, std::uint32_t num_disks) {
    return dm_response_at(0, 0, l, num_disks);
}

namespace {

/// Walks every cell of the box described by `extents`, calling
/// fn(coordinates). Shared by the partial-match enumerators.
template <typename Fn>
void for_each_box_cell(const std::vector<std::uint32_t>& extents, Fn&& fn) {
    std::vector<std::uint32_t> cell(extents.size(), 0);
    for (;;) {
        fn(cell);
        std::size_t axis = extents.size();
        for (;;) {
            if (axis == 0) return;
            --axis;
            if (++cell[axis] < extents[axis]) break;
            cell[axis] = 0;
        }
    }
}

}  // namespace

std::uint64_t dm_partial_match_exact(
    const std::vector<std::uint32_t>& free_extents, std::uint32_t num_disks) {
    PGF_CHECK(!free_extents.empty(),
              "a partial match query needs at least one unspecified attribute");
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    for (std::uint32_t e : free_extents) {
        PGF_CHECK(e >= 1, "axis extents must be positive");
    }
    std::vector<std::uint64_t> per_disk(num_disks, 0);
    for_each_box_cell(free_extents, [&](const std::vector<std::uint32_t>& c) {
        std::uint64_t sum = 0;
        for (std::uint32_t v : c) sum += v;
        ++per_disk[sum % num_disks];
    });
    return *std::max_element(per_disk.begin(), per_disk.end());
}

std::uint64_t fx_partial_match_at(std::uint32_t pinned_xor,
                                  const std::vector<std::uint32_t>& free_anchor,
                                  const std::vector<std::uint32_t>& free_extents,
                                  std::uint32_t num_disks) {
    PGF_CHECK(free_anchor.size() == free_extents.size(),
              "anchor/extents dimensionality mismatch");
    PGF_CHECK(!free_extents.empty(),
              "a partial match query needs at least one unspecified attribute");
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    std::vector<std::uint64_t> per_disk(num_disks, 0);
    for_each_box_cell(free_extents, [&](const std::vector<std::uint32_t>& c) {
        std::uint32_t x = pinned_xor;
        for (std::size_t i = 0; i < c.size(); ++i) {
            x ^= free_anchor[i] + c[i];
        }
        ++per_disk[x % num_disks];
    });
    return *std::max_element(per_disk.begin(), per_disk.end());
}

}  // namespace pgf
