#include "pgf/analytic/fx_theory.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

FxBounds fx_theorem2(unsigned m, unsigned n) {
    PGF_CHECK(m < 32 && n < 32, "fx_theorem2: exponents out of range");
    FxBounds b;
    if (n <= m) {
        double value = std::ldexp(1.0, static_cast<int>(2 * m) -
                                           static_cast<int>(n));  // 4^m / 2^n
        b.lower = b.upper = value;
        b.exact = true;
        return b;
    }
    b.lower = std::ldexp(1.0, 2 * static_cast<int>(m) - static_cast<int>(n));
    b.upper = std::ldexp(1.0, static_cast<int>(m));
    b.exact = false;
    return b;
}

std::uint64_t fx_response_at(std::uint32_t x0, std::uint32_t y0,
                             std::uint32_t l, std::uint32_t num_disks) {
    PGF_CHECK(l >= 1 && num_disks >= 1, "need l >= 1 and M >= 1");
    std::vector<std::uint64_t> per_disk(num_disks, 0);
    for (std::uint32_t i = 0; i < l; ++i) {
        for (std::uint32_t j = 0; j < l; ++j) {
            ++per_disk[((x0 + i) ^ (y0 + j)) % num_disks];
        }
    }
    return *std::max_element(per_disk.begin(), per_disk.end());
}

FxMeasurement fx_response_measure(std::uint32_t l, std::uint32_t num_disks,
                                  std::uint32_t grid) {
    PGF_CHECK(grid >= l, "grid must be at least the query side");
    FxMeasurement m;
    m.best = ~std::uint64_t{0};
    double sum = 0.0;
    std::uint64_t count = 0;
    for (std::uint32_t x0 = 0; x0 + l <= grid; ++x0) {
        for (std::uint32_t y0 = 0; y0 + l <= grid; ++y0) {
            std::uint64_t r = fx_response_at(x0, y0, l, num_disks);
            sum += static_cast<double>(r);
            ++count;
            m.worst = std::max(m.worst, r);
            m.best = std::min(m.best, r);
        }
    }
    PGF_CHECK(count > 0, "no anchor positions");
    m.expected = sum / static_cast<double>(count);
    return m;
}

}  // namespace pgf
