#include "pgf/gridfile/structure.hpp"

namespace pgf {

void GridStructure::validate() const {
    const std::size_t d = dims();
    PGF_CHECK(d >= 1, "GridStructure must have at least one dimension");
    PGF_CHECK(domain_lo.size() == d && domain_hi.size() == d,
              "GridStructure domain dimensionality mismatch");
    for (std::size_t i = 0; i < d; ++i) {
        PGF_CHECK(domain_hi[i] > domain_lo[i], "GridStructure empty domain");
        PGF_CHECK(shape[i] >= 1, "GridStructure empty axis");
    }
    // Every cell must be covered by exactly one bucket.
    std::uint64_t covered = 0;
    for (const auto& b : buckets) {
        PGF_CHECK(b.cell_lo.size() == d && b.cell_hi.size() == d &&
                      b.region_lo.size() == d && b.region_hi.size() == d,
                  "BucketInfo dimensionality mismatch");
        for (std::size_t i = 0; i < d; ++i) {
            PGF_CHECK(b.cell_lo[i] < b.cell_hi[i] && b.cell_hi[i] <= shape[i],
                      "BucketInfo cell box out of grid");
            PGF_CHECK(b.region_lo[i] < b.region_hi[i],
                      "BucketInfo empty region");
        }
        covered += b.cell_count();
    }
    PGF_CHECK(covered == cell_count(),
              "buckets must cover every grid cell exactly once");
}

GridStructure make_cartesian_structure(std::vector<std::uint32_t> shape,
                                       std::vector<double> domain_lo,
                                       std::vector<double> domain_hi,
                                       std::size_t records_per_cell) {
    const std::size_t d = shape.size();
    PGF_CHECK(d >= 1, "make_cartesian_structure: need at least one axis");
    PGF_CHECK(domain_lo.size() == d && domain_hi.size() == d,
              "make_cartesian_structure: domain dimensionality mismatch");
    GridStructure gs;
    gs.shape = std::move(shape);
    gs.domain_lo = std::move(domain_lo);
    gs.domain_hi = std::move(domain_hi);

    std::uint64_t total = gs.cell_count();
    gs.buckets.reserve(total);
    std::vector<std::uint32_t> cell(d, 0);
    for (std::uint64_t n = 0; n < total; ++n) {
        BucketInfo b;
        b.cell_lo.resize(d);
        b.cell_hi.resize(d);
        b.region_lo.resize(d);
        b.region_hi.resize(d);
        for (std::size_t i = 0; i < d; ++i) {
            b.cell_lo[i] = cell[i];
            b.cell_hi[i] = cell[i] + 1;
            double w = gs.domain_extent(i) / gs.shape[i];
            b.region_lo[i] = gs.domain_lo[i] + w * cell[i];
            b.region_hi[i] = gs.domain_lo[i] + w * (cell[i] + 1);
        }
        b.record_count = records_per_cell;
        gs.buckets.push_back(std::move(b));
        for (std::size_t i = d; i-- > 0;) {  // odometer, last axis fastest
            if (++cell[i] < gs.shape[i]) break;
            cell[i] = 0;
        }
    }
    gs.validate();
    return gs;
}

}  // namespace pgf
