#include "pgf/gridfile/scales.hpp"

#include <algorithm>

#include "pgf/util/check.hpp"

namespace pgf {

LinearScale::LinearScale(double lo, double hi) : lo_(lo), hi_(hi) {
    PGF_CHECK(hi > lo, "LinearScale requires hi > lo");
}

std::uint32_t LinearScale::locate(double x) const {
    // upper_bound: the first split strictly greater than x; the number of
    // splits <= x is the interval index.
    auto it = std::upper_bound(splits_.begin(), splits_.end(), x);
    auto idx = static_cast<std::uint32_t>(it - splits_.begin());
    // Clamp out-of-domain values into the boundary intervals.
    if (x < lo_) return 0;
    if (x >= hi_) return intervals() - 1;
    return idx;
}

// The interval bounds checks run per axis on the query hot path
// (query_cell_box) and per bucket in the structure export; callers only
// pass locate()-derived or cell-box-derived indices, so they are
// debug-only (PGF_DCHECK).
double LinearScale::interval_lo(std::uint32_t i) const {
    PGF_DCHECK(i < intervals(), "interval index out of range");
    return i == 0 ? lo_ : splits_[i - 1];
}

double LinearScale::interval_hi(std::uint32_t i) const {
    PGF_DCHECK(i < intervals(), "interval index out of range");
    return i == splits_.size() ? hi_ : splits_[i];
}

bool LinearScale::insert_split(double x, std::uint32_t* split_interval) {
    PGF_CHECK(x > lo_ && x < hi_, "split must lie strictly inside the domain");
    auto it = std::lower_bound(splits_.begin(), splits_.end(), x);
    if (it != splits_.end() && *it == x) return false;  // duplicate boundary
    auto idx = static_cast<std::uint32_t>(it - splits_.begin());
    splits_.insert(it, x);
    if (split_interval != nullptr) *split_interval = idx;
    return true;
}

}  // namespace pgf
