#include "pgf/parallel/network.hpp"

#include "pgf/util/check.hpp"

namespace pgf {

Network::Network(NetworkParams params) : params_(params) {
    PGF_CHECK(params_.bandwidth_bytes_per_s > 0.0,
              "network bandwidth must be positive");
    PGF_CHECK(params_.latency_s >= 0.0, "network latency must be >= 0");
}

sim::SimTime Network::transfer_time(std::size_t bytes, bool remote) const {
    if (!remote) return 0.0;
    return params_.latency_s +
           static_cast<double>(bytes) / params_.bandwidth_bytes_per_s;
}

}  // namespace pgf
