// Non-template pieces of the concurrent serving path: the DES-equivalent
// block partitioning and the latency aggregation of a served batch.
#include "pgf/parallel/query_engine.hpp"

#include <algorithm>

#include "pgf/util/stats.hpp"

namespace pgf {

std::vector<std::vector<std::uint32_t>> partition_node_blocks(
    const std::vector<std::uint32_t>& buckets, const Assignment& assignment,
    std::uint32_t nodes, std::uint32_t disks_per_node) {
    const std::uint32_t total_disks = nodes * disks_per_node;
    // Bin per disk first, exactly like the DES server's request builder,
    // so a node's list is its disks' bins concatenated in disk order —
    // not simply the query's bucket order filtered per node (the two
    // differ whenever a node owns several disks).
    std::vector<std::vector<std::uint32_t>> per_disk(total_disks);
    for (std::uint32_t b : buckets) {
        const std::uint32_t disk = assignment.disk_of[b];
        PGF_CHECK(disk < total_disks,
                  "assignment references a disk outside the cluster");
        per_disk[disk].push_back(b);
    }
    std::vector<std::vector<std::uint32_t>> per_node(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
        std::size_t count = 0;
        for (std::uint32_t k = 0; k < disks_per_node; ++k) {
            count += per_disk[n * disks_per_node + k].size();
        }
        per_node[n].reserve(count);
        for (std::uint32_t k = 0; k < disks_per_node; ++k) {
            const auto& bin = per_disk[n * disks_per_node + k];
            per_node[n].insert(per_node[n].end(), bin.begin(), bin.end());
        }
    }
    return per_node;
}

void summarize_serving(std::vector<double> latencies_ms, double wall_s,
                       ServingReport& report) {
    report.wall_s = wall_s;
    report.qps = wall_s > 0.0
                     ? static_cast<double>(latencies_ms.size()) / wall_s
                     : 0.0;
    if (latencies_ms.empty()) {
        report.mean_ms = report.p50_ms = report.p95_ms = report.p99_ms =
            report.max_ms = 0.0;
        return;
    }
    double sum = 0.0;
    double mx = latencies_ms.front();
    for (double v : latencies_ms) {
        sum += v;
        mx = std::max(mx, v);
    }
    report.mean_ms = sum / static_cast<double>(latencies_ms.size());
    report.max_ms = mx;
    report.p50_ms = quantile(latencies_ms, 0.50);
    report.p95_ms = quantile(latencies_ms, 0.95);
    report.p99_ms = quantile(latencies_ms, 0.99);
}

}  // namespace pgf
