#include "pgf/parallel/disk_model.hpp"

#include "pgf/util/check.hpp"

namespace pgf {

SimulatedDisk::SimulatedDisk(DiskParams params) : params_(params) {
    PGF_CHECK(params_.transfer_bytes_per_s > 0.0,
              "disk transfer rate must be positive");
    PGF_CHECK(params_.block_bytes > 0, "disk block size must be positive");
}

sim::SimTime SimulatedDisk::read(std::uint64_t block) {
    if (params_.cache_blocks > 0 && index_.count(block) > 0) {
        ++cache_hits_;
        // Refresh recency.
        lru_.splice(lru_.begin(), lru_, index_[block]);
        return params_.cache_hit_s;
    }
    sim::SimTime t = miss_service(block);
    if (params_.cache_blocks > 0) cache_insert(block);
    return t;
}

sim::SimTime SimulatedDisk::read_with(std::uint64_t block, bool cached) {
    if (cached) {
        ++cache_hits_;
        return params_.cache_hit_s;
    }
    return miss_service(block);
}

sim::SimTime SimulatedDisk::miss_service(std::uint64_t block) {
    ++physical_reads_;
    double transfer = static_cast<double>(params_.block_bytes) /
                      params_.transfer_bytes_per_s;
    double positioning = 0.0;
    if (!(has_last_ && block == last_block_ + 1)) {
        positioning = params_.avg_seek_s + params_.avg_rotation_s;
    }
    last_block_ = block;
    has_last_ = true;
    return positioning + transfer;
}

void SimulatedDisk::cache_insert(std::uint64_t block) {
    lru_.push_front(block);
    index_[block] = lru_.begin();
    if (lru_.size() > params_.cache_blocks) {
        index_.erase(lru_.back());
        lru_.pop_back();
    }
}

void SimulatedDisk::reset_counters() {
    physical_reads_ = 0;
    cache_hits_ = 0;
}

void SimulatedDisk::drop_cache() {
    lru_.clear();
    index_.clear();
    has_last_ = false;
}

}  // namespace pgf
