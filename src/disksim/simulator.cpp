#include "pgf/disksim/simulator.hpp"

namespace pgf {

WorkloadStats evaluate_workload(
    const std::vector<std::vector<std::uint32_t>>& query_buckets,
    const Assignment& a) {
    WorkloadStats stats;
    stats.queries = query_buckets.size();
    OnlineStats response;
    OnlineStats touched;
    ResponseAccumulator acc;
    for (const auto& buckets : query_buckets) {
        response.add(acc.response_time(buckets, a));
        touched.add(static_cast<double>(buckets.size()));
    }
    if (stats.queries > 0) {
        stats.avg_response = response.mean();
        stats.max_response = response.max();
        stats.avg_buckets = touched.mean();
        stats.optimal = optimal_response(touched.mean(), a.num_disks);
    }
    stats.data_balance = degree_of_data_balance(a);
    return stats;
}

}  // namespace pgf
