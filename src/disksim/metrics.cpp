#include "pgf/disksim/metrics.hpp"

#include <algorithm>
#include <utility>

#include "pgf/graph/weight_traits.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

std::uint32_t response_time(const std::vector<std::uint32_t>& query_buckets,
                            const Assignment& a) {
    std::vector<std::uint32_t> per_disk(a.num_disks, 0);
    for (std::uint32_t b : query_buckets) {
        PGF_CHECK(b < a.disk_of.size(), "query references unknown bucket");
        ++per_disk[a.disk_of[b]];
    }
    std::uint32_t worst = 0;
    for (std::uint32_t n : per_disk) worst = std::max(worst, n);
    return worst;
}

std::uint32_t ResponseAccumulator::response_time(
    const std::vector<std::uint32_t>& query_buckets, const Assignment& a) {
    if (stamp_.size() < a.num_disks) {
        stamp_.resize(a.num_disks, 0);
        count_.resize(a.num_disks, 0);
    }
    ++epoch_;
    std::uint32_t worst = 0;
    for (std::uint32_t b : query_buckets) {
        PGF_CHECK(b < a.disk_of.size(), "query references unknown bucket");
        const std::uint32_t d = a.disk_of[b];
        if (stamp_[d] != epoch_) {
            stamp_[d] = epoch_;
            count_[d] = 0;
        }
        worst = std::max(worst, ++count_[d]);
    }
    return worst;
}

double optimal_response(double avg_buckets_per_query, std::uint32_t num_disks) {
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    return avg_buckets_per_query / num_disks;
}

double degree_of_data_balance(const Assignment& a) {
    PGF_CHECK(!a.disk_of.empty(), "balance of an empty assignment");
    std::vector<std::size_t> load = a.load();
    std::size_t b_max = *std::max_element(load.begin(), load.end());
    return static_cast<double>(b_max) * a.num_disks /
           static_cast<double>(a.disk_of.size());
}

double degree_of_area_balance(const GridStructure& gs, const Assignment& a) {
    PGF_CHECK(gs.bucket_count() == a.disk_of.size(),
              "assignment does not match the grid structure");
    std::vector<double> volume(a.num_disks, 0.0);
    double total = 0.0;
    for (std::size_t b = 0; b < gs.bucket_count(); ++b) {
        double v = gs.buckets[b].volume();
        volume[a.disk_of[b]] += v;
        total += v;
    }
    double v_max = *std::max_element(volume.begin(), volume.end());
    return v_max * a.num_disks / total;
}

std::vector<std::size_t> nearest_neighbors(const BucketWeights& weights,
                                           ThreadPool* pool) {
    const std::size_t n = weights.size();
    std::vector<std::size_t> nn(n, 0);
    // Row-parallel: every output element depends on one batched weight row
    // only. The strict > keeps the first (lowest index) maximum, pinning
    // the documented tie-break in both the serial and the chunked path.
    auto rows = [&](std::size_t begin, std::size_t end) {
        std::vector<double> row(n);
        for (std::size_t i = begin; i < end; ++i) {
            weights.fill_row(i, row.data());
            double best = -1.0;
            std::size_t best_j = i;
            for (std::size_t j = 0; j < n; ++j) {
                if (j == i) continue;
                if (row[j] > best) {
                    best = row[j];
                    best_j = j;
                }
            }
            nn[i] = best_j;
        }
    };
    if (pool != nullptr && n >= graph_detail::kParallelScanThreshold) {
        pool->parallel_for(n, rows);
    } else {
        rows(0, n);
    }
    return nn;
}

std::size_t closest_pairs_same_disk(const GridStructure& gs,
                                    const Assignment& a, WeightKind weight,
                                    ThreadPool* pool) {
    PGF_CHECK(gs.bucket_count() == a.disk_of.size(),
              "assignment does not match the grid structure");
    if (gs.bucket_count() < 2) return 0;
    BucketWeights weights(gs, weight);
    std::vector<std::size_t> nn = nearest_neighbors(weights, pool);
    // Sorted vector + dedup instead of a std::set: the Table 2/3 metric
    // loop runs once per sweep configuration and a node-based set allocates
    // per inserted pair.
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    pairs.reserve(nn.size());
    for (std::size_t b = 0; b < nn.size(); ++b) {
        if (a.disk_of[b] == a.disk_of[nn[b]]) {
            pairs.emplace_back(std::min(b, nn[b]), std::max(b, nn[b]));
        }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs.size();
}

}  // namespace pgf
