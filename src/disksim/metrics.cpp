#include "pgf/disksim/metrics.hpp"

#include <algorithm>
#include <set>

#include "pgf/util/check.hpp"

namespace pgf {

std::uint32_t response_time(const std::vector<std::uint32_t>& query_buckets,
                            const Assignment& a) {
    std::vector<std::uint32_t> per_disk(a.num_disks, 0);
    for (std::uint32_t b : query_buckets) {
        PGF_CHECK(b < a.disk_of.size(), "query references unknown bucket");
        ++per_disk[a.disk_of[b]];
    }
    std::uint32_t worst = 0;
    for (std::uint32_t n : per_disk) worst = std::max(worst, n);
    return worst;
}

std::uint32_t ResponseAccumulator::response_time(
    const std::vector<std::uint32_t>& query_buckets, const Assignment& a) {
    if (stamp_.size() < a.num_disks) {
        stamp_.resize(a.num_disks, 0);
        count_.resize(a.num_disks, 0);
    }
    ++epoch_;
    std::uint32_t worst = 0;
    for (std::uint32_t b : query_buckets) {
        PGF_CHECK(b < a.disk_of.size(), "query references unknown bucket");
        const std::uint32_t d = a.disk_of[b];
        if (stamp_[d] != epoch_) {
            stamp_[d] = epoch_;
            count_[d] = 0;
        }
        worst = std::max(worst, ++count_[d]);
    }
    return worst;
}

double optimal_response(double avg_buckets_per_query, std::uint32_t num_disks) {
    PGF_CHECK(num_disks >= 1, "need at least one disk");
    return avg_buckets_per_query / num_disks;
}

double degree_of_data_balance(const Assignment& a) {
    PGF_CHECK(!a.disk_of.empty(), "balance of an empty assignment");
    std::vector<std::size_t> load = a.load();
    std::size_t b_max = *std::max_element(load.begin(), load.end());
    return static_cast<double>(b_max) * a.num_disks /
           static_cast<double>(a.disk_of.size());
}

double degree_of_area_balance(const GridStructure& gs, const Assignment& a) {
    PGF_CHECK(gs.bucket_count() == a.disk_of.size(),
              "assignment does not match the grid structure");
    std::vector<double> volume(a.num_disks, 0.0);
    double total = 0.0;
    for (std::size_t b = 0; b < gs.bucket_count(); ++b) {
        double v = gs.buckets[b].volume();
        volume[a.disk_of[b]] += v;
        total += v;
    }
    double v_max = *std::max_element(volume.begin(), volume.end());
    return v_max * a.num_disks / total;
}

std::vector<std::size_t> nearest_neighbors(const BucketWeights& weights) {
    const std::size_t n = weights.size();
    std::vector<std::size_t> nn(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        double best = -1.0;
        std::size_t best_j = i;
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            double w = weights(i, j);
            if (w > best) {
                best = w;
                best_j = j;
            }
        }
        nn[i] = best_j;
    }
    return nn;
}

std::size_t closest_pairs_same_disk(const GridStructure& gs,
                                    const Assignment& a, WeightKind weight) {
    PGF_CHECK(gs.bucket_count() == a.disk_of.size(),
              "assignment does not match the grid structure");
    if (gs.bucket_count() < 2) return 0;
    BucketWeights weights(gs, weight);
    std::vector<std::size_t> nn = nearest_neighbors(weights);
    std::set<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t b = 0; b < nn.size(); ++b) {
        if (a.disk_of[b] == a.disk_of[nn[b]]) {
            pairs.insert({std::min(b, nn[b]), std::max(b, nn[b])});
        }
    }
    return pairs.size();
}

}  // namespace pgf
