// Little-endian byte stream over a BufferPool.
//
// ByteWriter appends to consecutively allocated pages; ByteReader walks the
// same page sequence. Formats built on these are self-describing (every
// variable-length field is count-prefixed), so no total length is stored.
#pragma once

#include <cstdint>
#include <string>

#include "pgf/storage/buffer_pool.hpp"

namespace pgf {

class ByteWriter {
public:
    /// Starts writing at a fresh page of `pool`; first_page() gives the
    /// entry point a loader must start from.
    explicit ByteWriter(BufferPool& pool);

    void put_u8(std::uint8_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    void put_f64(double v);
    void put_string(const std::string& s);  // u32 length + bytes

    /// Flushes the current page; the writer must not be used afterwards.
    void finish();

    std::uint64_t first_page() const { return first_page_; }
    std::uint64_t bytes_written() const { return bytes_; }

private:
    void put_byte(std::byte b);

    BufferPool& pool_;
    std::uint64_t first_page_;
    std::uint64_t current_page_;
    std::size_t offset_ = 0;
    std::uint64_t bytes_ = 0;
    bool finished_ = false;
};

class ByteReader {
public:
    ByteReader(BufferPool& pool, std::uint64_t first_page);

    std::uint8_t get_u8();
    std::uint32_t get_u32();
    std::uint64_t get_u64();
    double get_f64();
    std::string get_string();

    std::uint64_t bytes_read() const { return bytes_; }

private:
    std::byte get_byte();

    BufferPool& pool_;
    std::uint64_t current_page_;
    std::size_t offset_ = 0;
    std::uint64_t bytes_ = 0;
};

}  // namespace pgf
