// Grid file persistence: save/load a GridFile<D> to a page file.
//
// Format (ByteWriter stream starting at page 0):
//   magic "PGFGRID1" (string), u32 dims, domain lo/hi (f64 each per dim),
//   u64 bucket_capacity, u8 split_policy,
//   per dim: u32 split count + f64 splits,
//   u32 bucket count, per bucket:
//     cell lo/hi (u32 each per dim), u64 record count,
//     per record: point (f64 per dim) + u64 id.
// The directory is not stored — it is reconstructed from the bucket cell
// boxes on load (GridFile<D>::restore validates the tiling).
#pragma once

#include <string>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/storage/serializer.hpp"

namespace pgf {

inline constexpr const char kGridFileMagic[] = "PGFGRID1";

/// Dimensionality recorded in a persisted grid file (so callers can
/// dispatch to the right load_grid_file<D> instantiation).
inline std::uint32_t stored_grid_file_dims(const std::string& path) {
    PageFile file = PageFile::open(path);
    BufferPool pool(file, 4);
    ByteReader r(pool, 0);
    PGF_CHECK(r.get_string() == kGridFileMagic,
              "stored_grid_file_dims: bad magic in " + path);
    return r.get_u32();
}

/// Saves `gf` to `path` (created/truncated). `pool_pages` bounds the write
/// cache. Returns the number of data pages written. Works for any backend
/// of the shared engine — an in-memory GridFile and a disk-backed
/// PagedGridFile with the same structure write byte-identical snapshots
/// (the streaming bulk loader leans on this: a stream-built paged file
/// persists through the same path the in-memory golden uses).
template <std::size_t D, typename Store>
std::uint64_t save_grid_file(const GridFileCore<D, Store>& gf,
                             const std::string& path,
                             std::size_t page_size = PageFile::kDefaultPageSize,
                             std::size_t pool_pages = 64) {
    PageFile file = PageFile::create(path, page_size);
    BufferPool pool(file, pool_pages);
    ByteWriter w(pool);
    w.put_string(kGridFileMagic);
    w.put_u32(static_cast<std::uint32_t>(D));
    for (std::size_t i = 0; i < D; ++i) {
        w.put_f64(gf.domain().lo[i]);
        w.put_f64(gf.domain().hi[i]);
    }
    w.put_u64(gf.bucket_capacity());
    w.put_u8(static_cast<std::uint8_t>(gf.split_policy()));
    for (std::size_t i = 0; i < D; ++i) {
        const auto& splits = gf.scale(i).splits();
        w.put_u32(static_cast<std::uint32_t>(splits.size()));
        for (double s : splits) w.put_f64(s);
    }
    w.put_u32(static_cast<std::uint32_t>(gf.bucket_count()));
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const auto& cells = gf.bucket_cells(b);
        for (std::size_t i = 0; i < D; ++i) {
            w.put_u32(cells.lo[i]);
            w.put_u32(cells.hi[i]);
        }
        // On a paged backend this reads the bucket through the pool; the
        // reference stays valid until the next bucket's read.
        const auto& records = gf.bucket_records(b);
        w.put_u64(records.size());
        for (const auto& rec : records) {
            for (std::size_t i = 0; i < D; ++i) w.put_f64(rec.point[i]);
            w.put_u64(rec.id);
        }
    }
    w.finish();
    file.sync();
    return file.page_count();
}

/// Loads a grid file previously written by save_grid_file. Throws
/// CheckError on any format violation (wrong magic, wrong dimensionality,
/// non-tiling bucket boxes).
template <std::size_t D>
GridFile<D> load_grid_file(const std::string& path,
                           std::size_t pool_pages = 64) {
    PageFile file = PageFile::open(path);
    BufferPool pool(file, pool_pages);
    ByteReader r(pool, 0);
    PGF_CHECK(r.get_string() == kGridFileMagic,
              "load_grid_file: bad magic in " + path);
    PGF_CHECK(r.get_u32() == D,
              "load_grid_file: stored dimensionality does not match D");
    Rect<D> domain;
    for (std::size_t i = 0; i < D; ++i) {
        domain.lo[i] = r.get_f64();
        domain.hi[i] = r.get_f64();
    }
    typename GridFile<D>::Config config;
    config.bucket_capacity = r.get_u64();
    config.split_policy = static_cast<SplitPolicy>(r.get_u8());
    std::vector<LinearScale> scales;
    scales.reserve(D);
    for (std::size_t i = 0; i < D; ++i) {
        LinearScale scale(domain.lo[i], domain.hi[i]);
        std::uint32_t n = r.get_u32();
        for (std::uint32_t k = 0; k < n; ++k) {
            PGF_CHECK(scale.insert_split(r.get_f64(), nullptr),
                      "load_grid_file: duplicate scale split");
        }
        scales.push_back(std::move(scale));
    }
    std::uint32_t bucket_count = r.get_u32();
    std::vector<typename GridFile<D>::Bucket> buckets;
    buckets.reserve(bucket_count);
    for (std::uint32_t b = 0; b < bucket_count; ++b) {
        typename GridFile<D>::Bucket bucket;
        for (std::size_t i = 0; i < D; ++i) {
            bucket.cells.lo[i] = r.get_u32();
            bucket.cells.hi[i] = r.get_u32();
        }
        std::uint64_t records = r.get_u64();
        bucket.records.reserve(records);
        for (std::uint64_t k = 0; k < records; ++k) {
            GridRecord<D> rec;
            for (std::size_t i = 0; i < D; ++i) rec.point[i] = r.get_f64();
            rec.id = r.get_u64();
            bucket.records.push_back(rec);
        }
        buckets.push_back(std::move(bucket));
    }
    return GridFile<D>::restore(domain, config, std::move(scales),
                                std::move(buckets));
}

}  // namespace pgf
