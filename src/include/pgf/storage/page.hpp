// The on-disk page format shared by every PageFile-backed store.
//
// Every page starts with a 16-byte header; the rest is payload owned by
// the layer above (bucket records, snapshot byte streams, ...):
//
//   offset  size  field
//        0     4  crc32c over bytes [4, page_size)   (little endian)
//        4     2  format version (kPageFormatVersion)
//        6     2  flags (reserved, 0)
//        8     8  page LSN — the WAL record that last wrote this page
//                 (0 = never logged / durability off)
//
// The checksum uses CRC32C (Castagnoli) with a zero initial value and no
// final xor. That choice makes an all-zero page self-consistent: a page
// the filesystem extended with zeros (e.g. after a crash between file
// growth and the first write) reads back as a *valid empty page* rather
// than a checksum error, and recovery simply overwrites it from the log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pgf {

/// Bytes reserved at the start of every page for the durability header.
inline constexpr std::size_t kPageHeaderBytes = 16;

/// Stamped into the version field by every write ("PGFPAGE2" files).
inline constexpr std::uint16_t kPageFormatVersion = 2;

/// CRC32C (Castagnoli, poly 0x82F63B78, reflected), zero-init / zero-xorout.
/// `seed` chains incremental computations: crc32c(b, crc32c(a)) ==
/// crc32c(a+b).
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// The stored checksum of a full page image.
std::uint32_t page_stored_crc(std::span<const std::byte> page);

/// The checksum the page contents *should* carry: crc32c over
/// [kPageCrcBytes, page.size()).
std::uint32_t page_compute_crc(std::span<const std::byte> page);

/// True when the stored checksum matches the contents. An all-zero page
/// passes by construction (see header comment).
bool page_checksum_ok(std::span<const std::byte> page);

/// The format version field (0 on never-written pages).
std::uint16_t page_version(std::span<const std::byte> page);

/// The page LSN field.
std::uint64_t page_lsn(std::span<const std::byte> page);

/// Stamps the page LSN field (checksum becomes stale until the next
/// PageFile::write, which recomputes it).
void set_page_lsn(std::span<std::byte> page, std::uint64_t lsn);

}  // namespace pgf
