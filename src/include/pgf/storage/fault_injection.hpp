// Crash injection for the durability tests.
//
// A FaultInjector carries a write-op budget shared by the data PageFile
// and the WriteAheadLog of one store. Every injectable write (a data page
// write, a WAL group flush) spends one unit; the op that exhausts the
// budget is *torn* — only a prefix of its bytes reaches "disk" — the file
// object is poisoned so nothing later (destructor flushes, superblock
// updates) can repair the damage, and CrashError unwinds the workload,
// exactly as if the process had been killed mid-write. Recovery then gets
// the frozen on-disk state.
//
// With the default unlimited budget the injector just counts ops — the
// tests run a workload once uninjured to learn how many injection points
// it has, then sweep budgets across them.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

#include "pgf/storage/page_file.hpp"

namespace pgf {

/// Thrown by an injected fault at the moment the simulated process dies.
/// Deliberately not a CheckError: a crash is not an invariant violation.
class CrashError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class FaultInjector {
public:
    static constexpr std::uint64_t kUnlimited =
        std::numeric_limits<std::uint64_t>::max();

    /// Crash on the (budget+1)-th injectable write op; kUnlimited = never
    /// (count only).
    explicit FaultInjector(std::uint64_t budget = kUnlimited)
        : budget_(budget) {}

    /// Re-arms the injector to crash on the (budget+1)-th injectable op
    /// from *now* — tests use this to exclude file creation from the
    /// sweep (initialization is not crash-protected, just like a real
    /// system's mkfs).
    void arm(std::uint64_t budget) {
        budget_.store(ops_seen_.load(std::memory_order_relaxed) + budget,
                      std::memory_order_relaxed);
    }

    /// Spends one op. True exactly once: on the op that must crash.
    bool should_crash() {
        const std::uint64_t seen =
            ops_seen_.fetch_add(1, std::memory_order_relaxed);
        if (seen == budget_.load(std::memory_order_relaxed)) {
            crashed_.store(true, std::memory_order_release);
            return true;
        }
        return false;
    }

    bool crashed() const { return crashed_.load(std::memory_order_acquire); }
    std::uint64_t ops_seen() const {
        return ops_seen_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> budget_;
    std::atomic<std::uint64_t> ops_seen_{0};
    std::atomic<bool> crashed_{false};
};

/// A PageFile whose page writes die on cue. Superblock writes and reads
/// are never injected (the superblock is rewritten by sync/destruction —
/// injecting there would just re-crash the already-crashed file).
class FaultInjectingPageFile final : public PageFile {
public:
    FaultInjectingPageFile(PageFile&& base, FaultInjector* injector)
        : PageFile(std::move(base)), injector_(injector) {}

    void write(std::uint64_t id, std::span<const std::byte> data) override {
        if (injector_->crashed()) {
            // The process is already "dead": drop the write (and poison so
            // the base destructor cannot flush a fresh superblock either).
            poison();
            return;
        }
        if (injector_->should_crash()) {
            // Half a page reaches disk, then the process dies.
            write_torn(id, data, page_size() / 2);
            poison();
            throw CrashError("injected crash during page write");
        }
        PageFile::write(id, data);
    }

    void sync() override {
        if (injector_->crashed()) {
            poison();
            return;
        }
        PageFile::sync();
    }

private:
    FaultInjector* injector_;
};

}  // namespace pgf
