// Crash recovery for the paged grid file: replays a write-ahead log
// (pgf/storage/wal.hpp) over the data PageFile left behind by a crash.
//
// Two passes, both bounded by the last commit marker in the log's valid
// prefix (everything after it belongs to an interrupted operation and is
// discarded — including a physical truncation of the log, so later
// appends cannot resurrect half an operation):
//
//   physical  — the *final* journaled image of every page is applied,
//               LSN-checked for idempotency: a page whose on-disk image
//               already verifies at exactly the record's LSN is skipped,
//               so replaying twice produces byte-identical files. An
//               on-disk image with a *different* LSN — older (never
//               flushed) or newer (flushed by the interrupted operation)
//               — is overwritten with the committed image.
//   logical   — bucket metadata is rebuilt from the metadata records:
//               kCreate adds a bucket with its box, kSplit shrinks the
//               split bucket, kRefine shifts every box exactly as
//               GridFileCore::shift_cell_boxes did, and record counts
//               come from the replayed page images. The refinement list
//               is returned for GridFileCore's RestoreTag constructor to
//               regrow the scales and retile the directory.
//
// Initialization is not crash-protected (like a real system's mkfs): the
// data file's superblock and the log's genesis + first commit must be on
// disk, which PagedGridFile guarantees by flushing the log once at the
// end of construction. From then on, a crash at *any* write yields a
// recoverable state (swept exhaustively by tests/storage/
// test_crash_recovery.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/grid_file_core.hpp"
#include "pgf/storage/page.hpp"
#include "pgf/storage/page_file.hpp"
#include "pgf/storage/paged_bucket_store.hpp"
#include "pgf/storage/wal.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

/// What a replay did — surfaced by `pgfcli recover` and asserted on by
/// the idempotency tests.
struct ReplayStats {
    std::uint64_t wal_records = 0;        ///< records in the valid prefix
    std::uint64_t applied_records = 0;    ///< records at or before the commit
    std::uint64_t discarded_records = 0;  ///< uncommitted suffix (truncated)
    std::uint64_t pages_replayed = 0;     ///< page images written to disk
    std::uint64_t pages_skipped = 0;      ///< already durable at that LSN
    std::uint64_t last_commit_lsn = 0;
};

/// Everything replay_wal reconstructs: the replayed data file, the
/// reopened log, and the logical state GridFileCore needs to rebuild its
/// access structure.
template <std::size_t D>
struct RecoveredGrid {
    std::unique_ptr<PageFile> file;
    std::unique_ptr<WriteAheadLog> wal;
    std::vector<typename PagedBucketStore<D>::Meta> metas;
    Rect<D> domain{};
    std::size_t page_size = 0;
    std::size_t bucket_capacity = 0;
    SplitPolicy split_policy = SplitPolicy::kMidpoint;
    std::vector<GridRefineOp> refines;
    ReplayStats stats;
};

/// Dimension count recorded in a log's genesis record — lets a CLI
/// dispatch to the right replay_wal<D> without external metadata.
inline std::uint32_t wal_probe_dims(const std::string& wal_path) {
    WalReader reader(wal_path);
    const auto scan = reader.scan();
    PGF_CHECK(scan.has_genesis,
              "recover: no genesis record in " + wal_path);
    WalReader::Record rec;
    PGF_CHECK(reader.next(rec) && rec.kind == WalRecordKind::kGenesis,
              "recover: genesis is not the first record in " + wal_path);
    std::size_t off = 0;
    return wal_get_u32(rec.body, off);
}

/// Replays the committed prefix of `wal_path` over the page file at
/// `data_path` (see the file comment). Throws CheckError when the log has
/// no genesis or no commit marker — nothing recoverable was ever durable.
template <std::size_t D>
RecoveredGrid<D> replay_wal(const std::string& data_path,
                            const std::string& wal_path) {
    using Store = PagedBucketStore<D>;
    RecoveredGrid<D> out;

    WalReader reader(wal_path);
    const auto scan = reader.scan();
    PGF_CHECK(scan.has_genesis,
              "recover: no genesis record in " + wal_path);
    PGF_CHECK(scan.last_commit_lsn > 0,
              "recover: no commit marker in " + wal_path +
                  " (nothing consistent was ever durable)");
    out.stats.wal_records = scan.records;
    out.stats.last_commit_lsn = scan.last_commit_lsn;

    // Logical pass over the committed prefix; page images are collected
    // (final image per page wins) and applied afterwards.
    bool saw_genesis = false;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::vector<std::byte>>>
        images;  // page -> (lsn, payload)
    WalReader::Record rec;
    while (reader.next(rec)) {
        if (rec.lsn > scan.last_commit_lsn) {
            ++out.stats.discarded_records;
            continue;
        }
        ++out.stats.applied_records;
        std::size_t off = 0;
        switch (rec.kind) {
            case WalRecordKind::kGenesis: {
                PGF_CHECK(!saw_genesis, "recover: duplicate genesis record");
                PGF_CHECK(rec.body.size() == 4 + 8 + 8 + 1 + 16 * D,
                          "recover: genesis record has the wrong size");
                const std::uint32_t dims = wal_get_u32(rec.body, off);
                PGF_CHECK(dims == D,
                          "recover: log is for a different dimension count");
                out.page_size = wal_get_u64(rec.body, off);
                out.bucket_capacity = wal_get_u64(rec.body, off);
                const auto policy =
                    std::to_integer<std::uint8_t>(rec.body[off]);
                ++off;
                out.split_policy = static_cast<SplitPolicy>(policy);
                for (std::size_t i = 0; i < D; ++i) {
                    out.domain.lo[i] = wal_get_f64(rec.body, off);
                    out.domain.hi[i] = wal_get_f64(rec.body, off);
                }
                PGF_CHECK(Store::capacity_for(out.page_size) ==
                              out.bucket_capacity,
                          "recover: genesis capacity does not match its "
                          "page size");
                saw_genesis = true;
                break;
            }
            case WalRecordKind::kCreate: {
                PGF_CHECK(rec.body.size() == 4 + 8 + 8 * D,
                          "recover: create record has the wrong size");
                const std::uint32_t id = wal_get_u32(rec.body, off);
                PGF_CHECK(id == out.metas.size(),
                          "recover: bucket create out of sequence");
                typename Store::Meta meta;
                meta.page = wal_get_u64(rec.body, off);
                for (std::size_t i = 0; i < D; ++i) {
                    meta.cells.lo[i] = wal_get_u32(rec.body, off);
                    meta.cells.hi[i] = wal_get_u32(rec.body, off);
                }
                out.metas.push_back(meta);
                break;
            }
            case WalRecordKind::kSplit: {
                PGF_CHECK(rec.body.size() == 12,
                          "recover: split record has the wrong size");
                const std::uint32_t from = wal_get_u32(rec.body, off);
                const std::uint32_t to = wal_get_u32(rec.body, off);
                const std::uint32_t axis = wal_get_u32(rec.body, off);
                PGF_CHECK(from < out.metas.size() && to < out.metas.size() &&
                              axis < D,
                          "recover: split record references unknown state");
                out.metas[from].cells.hi[axis] =
                    out.metas[to].cells.lo[axis];
                break;
            }
            case WalRecordKind::kRefine: {
                PGF_CHECK(rec.body.size() == 16,
                          "recover: refine record has the wrong size");
                GridRefineOp op;
                op.axis = wal_get_u32(rec.body, off);
                op.interval = wal_get_u32(rec.body, off);
                op.coord = wal_get_f64(rec.body, off);
                PGF_CHECK(op.axis < D,
                          "recover: refine record axis out of range");
                out.refines.push_back(op);
                // Shift every bucket's cell box exactly as the engine's
                // shift_cell_boxes did when the record was written.
                for (auto& meta : out.metas) {
                    if (meta.cells.lo[op.axis] > op.interval) {
                        ++meta.cells.lo[op.axis];
                        ++meta.cells.hi[op.axis];
                    } else if (meta.cells.hi[op.axis] > op.interval) {
                        ++meta.cells.hi[op.axis];
                    }
                }
                break;
            }
            case WalRecordKind::kPage: {
                PGF_CHECK(rec.body.size() >= 8,
                          "recover: page record has the wrong size");
                const std::uint64_t page = wal_get_u64(rec.body, off);
                auto& slot = images[page];
                slot.first = rec.lsn;
                slot.second.assign(rec.body.begin() + 8, rec.body.end());
                break;
            }
            case WalRecordKind::kCommit:
                break;
        }
    }
    PGF_CHECK(saw_genesis, "recover: genesis outside the committed prefix");

    // Physical pass: apply the final committed image of every page.
    out.file = std::make_unique<PageFile>(PageFile::open(data_path));
    PGF_CHECK(out.file->page_size() == out.page_size,
              "recover: data file page size disagrees with the log");
    std::uint64_t needed = 0;
    for (const auto& meta : out.metas) needed = std::max(needed, meta.page + 1);
    for (const auto& [page, image] : images) needed = std::max(needed, page + 1);
    out.file->ensure_page_count(needed);
    std::vector<std::byte> disk(out.page_size);
    for (const auto& [page, image] : images) {
        PGF_CHECK(image.second.size() == out.file->payload_size(),
                  "recover: page image has the wrong payload size");
        const bool intact = out.file->try_read(page, disk);
        if (intact && page_lsn(disk) == image.first) {
            ++out.stats.pages_skipped;  // already durable at this LSN
            continue;
        }
        out.file->write_payload(page, image.second, image.first);
        ++out.stats.pages_replayed;
    }
    out.file->sync();

    // Record counts come from the committed images (every committed bucket
    // has one: create_bucket journals its empty page).
    for (auto& meta : out.metas) {
        auto it = images.find(meta.page);
        PGF_CHECK(it != images.end(),
                  "recover: committed bucket has no page image");
        meta.count = Store::page_record_count(it->second.second);
        PGF_CHECK(meta.count <= out.bucket_capacity,
                  "recover: page image overflows its bucket");
    }

    // Drop the uncommitted log suffix for good, then reopen the log for
    // appending — new operations continue the LSN sequence from the
    // commit marker.
    std::filesystem::resize_file(wal_path, scan.commit_bytes);
    out.wal = WriteAheadLog::open(wal_path);
    return out;
}

}  // namespace pgf
