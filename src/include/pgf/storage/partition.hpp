// Physical partitioning: turn a declustering assignment into per-disk page
// files — the loading step a shared-nothing deployment performs before
// queries run (the paper's grid files were "distributed over all the
// participating processors' local disks", Sec. 3.5).
//
// Pages are appended to each disk's file in bucket-id order, so a disk's
// buckets become sequential on its platter — the layout the disk model's
// sequential-read optimization rewards.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pgf/decluster/types.hpp"

namespace pgf {

struct PartitionResult {
    /// Pages written to each disk file.
    std::vector<std::uint64_t> pages_per_disk;
    /// location[b] = (disk, page id within that disk's file) of bucket b.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> location;
    /// Paths of the created per-disk page files.
    std::vector<std::string> paths;
};

/// Copies each bucket's page out of `source_path` (a PageFile, e.g. the
/// backing store of a PagedGridFile) into `<output_prefix>.disk<k>`, where
/// k = assignment.disk_of[bucket]. `bucket_pages[b]` is bucket b's page id
/// in the source file (PagedGridFile::bucket_page). Existing output files
/// are truncated.
PartitionResult partition_pages(const std::string& source_path,
                                const std::vector<std::uint64_t>& bucket_pages,
                                const Assignment& assignment,
                                const std::string& output_prefix);

/// Convenience overload for any paged backend (e.g. PagedGridFile): the
/// file is flushed so the on-disk pages are current, the per-bucket page
/// ids are gathered, and the pages are scattered to the per-disk files.
template <typename PagedGF>
PartitionResult partition_pages(PagedGF& gf, const Assignment& assignment,
                                const std::string& output_prefix) {
    gf.flush();
    std::vector<std::uint64_t> pages;
    pages.reserve(gf.bucket_count());
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        pages.push_back(gf.bucket_page(b));
    }
    return partition_pages(gf.path(), pages, assignment, output_prefix);
}

}  // namespace pgf
