// Disk-resident BucketStore: one bucket == one page of a PageFile, read
// and written through the LRU BufferPool. Only bucket metadata (cell box,
// page id, record count) stays in memory.
//
// Page layout (little-endian): the PageFile's 16-byte durability header
// (checksum, format version, LSN — see pgf/storage/page.hpp), then a u64
// record count, then `count` records of (D+1) u64 words — D coordinate
// doubles (bit-cast) plus the record id. The capacity follows from the
// page size: (page_size - 16 - 8) / ((D+1)*8). The BufferPool hands this
// layer payload-only views, so everything below the durability header is
// encoded/decoded exactly as before the header existed.
//
// Durability (optional): constructed with a WalSetup naming a log path,
// the store journals physical redo into a WriteAheadLog — a genesis
// record with the grid parameters, a page image for every page encode, a
// metadata record for every bucket create / split / refinement, and a
// commit marker at each operation boundary. The BufferPool enforces
// WAL-before-data ordering on eviction (a dirty page's log records are
// flushed before its image may overwrite the on-disk pre-image), so after
// a crash anywhere, pgf/storage/recovery.hpp replays the committed log
// prefix into a state that passes the deep audit. Without a WalSetup the
// store behaves exactly as before — no log, no extra writes, and on-disk
// bytes identical to the pre-durability format apart from the page header.
//
// Edit protocol (see bucket_store.hpp): edit(b) decodes b's page into one
// in-memory buffer; the engine mutates it (an overflowing buffer may
// transiently exceed the page capacity — it lives in memory until splits
// produce page-sized halves); split_active encodes the non-continuing half
// to its page; commit(b) encodes the buffer back to b's page. A strict-
// capacity store: a bucket can never stay oversized, so the engine rejects
// inseparable duplicate overflows with CheckError.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/bucket_store.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/fault_injection.hpp"
#include "pgf/storage/page.hpp"
#include "pgf/storage/page_file.hpp"
#include "pgf/storage/wal.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

/// Durability knobs of a PagedBucketStore. Default-constructed == no WAL:
/// the historical store, byte-identical behavior and on-disk format.
template <std::size_t D>
struct WalSetup {
    /// Path of the write-ahead log; empty disables durability entirely.
    std::string path;
    /// Crash-injection hook: wired into both the data file's page writes
    /// and the log's group flushes (tests arm it after construction).
    FaultInjector* injector = nullptr;
    // Genesis payload — the grid parameters recovery needs to rebuild the
    // file without any snapshot:
    Rect<D> domain{};
    std::uint8_t split_policy = 0;
};

template <std::size_t D>
class PagedBucketStore {
public:
    using Records = std::vector<GridRecord<D>>;
    static constexpr bool kStrictCapacity = true;
    static constexpr std::size_t kRecordBytes = (D + 1) * 8;
    static constexpr std::size_t kCountBytes = 8;

    /// In-memory bucket metadata — public because recovery rebuilds the
    /// vector from the log and hands it to the OpenTag constructor.
    struct Meta {
        CellBox<D> cells;
        std::uint64_t page = 0;
        std::size_t count = 0;  ///< mirrored from the page header
    };

    /// Records per page for a given page size, net of the PageFile's
    /// durability header (0 when the headers alone don't fit — callers
    /// must check the result is usable).
    static std::size_t capacity_for(std::size_t page_size) {
        if (page_size <= kPageHeaderBytes + kCountBytes) return 0;
        return (page_size - kPageHeaderBytes - kCountBytes) / kRecordBytes;
    }

    /// Smallest page size holding exactly `capacity` records — the inverse
    /// of capacity_for, used to build a paged file cell-for-cell comparable
    /// to an in-memory one with that bucket capacity.
    static std::size_t page_size_for(std::size_t capacity) {
        return kPageHeaderBytes + kCountBytes + capacity * kRecordBytes;
    }

    /// Creates (truncating) the backing file at `path`. `pool_config`
    /// selects the builder pool's replacement policy (default LRU — the
    /// historical behavior; serving-side node pools pick their own policy
    /// via NodeBacking). A non-empty `wal.path` turns on write-ahead
    /// logging (and truncates any log already there).
    PagedBucketStore(const std::string& path, std::size_t page_size,
                     std::size_t pool_pages,
                     BufferPoolConfig pool_config = {},
                     WalSetup<D> wal_setup = {})
        : file_(make_file(path, page_size, wal_setup.injector)),
          wal_(make_wal(wal_setup)),
          pool_(*file_, pool_pages, pool_config, wal_.get()),
          capacity_(capacity_for(page_size)) {
        if (wal_ != nullptr) log_genesis(page_size, wal_setup);
    }

    /// Recovery tag: adopt an already-replayed data file, the metadata
    /// reconstructed from the log, and the reopened (tail-truncated) log
    /// itself. Used by pgf/storage/recovery.hpp only.
    struct OpenTag {};
    PagedBucketStore(OpenTag, std::unique_ptr<PageFile> file,
                     std::vector<Meta> metas,
                     std::unique_ptr<WriteAheadLog> wal,
                     std::size_t pool_pages, BufferPoolConfig pool_config = {})
        : file_(std::move(file)),
          wal_(std::move(wal)),
          pool_(*file_, pool_pages, pool_config, wal_.get()),
          capacity_(capacity_for(file_->page_size())),
          metas_(std::move(metas)) {}

    std::size_t bucket_count() const { return metas_.size(); }
    void reserve(std::size_t buckets) { metas_.reserve(buckets); }

    std::uint32_t create_bucket(const CellBox<D>& cells,
                                std::size_t /*reserve_hint*/) {
        auto id = static_cast<std::uint32_t>(metas_.size());
        Meta meta;
        meta.cells = cells;
        meta.page = pool_.allocate().page_id();
        metas_.push_back(meta);
        if (wal_ != nullptr) {
            std::vector<std::byte> body;
            wal_put_u32(body, id);
            wal_put_u64(body, meta.page);
            for (std::size_t i = 0; i < D; ++i) {
                wal_put_u32(body, cells.lo[i]);
                wal_put_u32(body, cells.hi[i]);
            }
            wal_->append(WalRecordKind::kCreate, body);
            // Also journal the page's empty image: every committed bucket
            // then has a backing kPage record, so recovery can roll an
            // uncommitted on-disk image back to the committed state even
            // for buckets that never saw a record.
            store(id, nullptr, 0);
        }
        return id;
    }

    const CellBox<D>& cells(std::uint32_t b) const { return metas_[b].cells; }
    CellBox<D>& cells(std::uint32_t b) { return metas_[b].cells; }
    std::size_t size(std::uint32_t b) const { return metas_[b].count; }

    const Records& read(std::uint32_t b) const {
        // Inside a batch session the active bucket's page is stale by
        // design; its truth is the edit buffer.
        if (session_open_ && b == active_) return edit_buf_;
        load(b, read_buf_);
        return read_buf_;
    }

    Records& edit(std::uint32_t b) {
        if (batch_) {
            if (session_open_ && active_ == b) return edit_buf_;
            sync_session();  // persist the previous bucket before switching
            active_ = b;
            load(b, edit_buf_);
            session_open_ = true;
            return edit_buf_;
        }
        active_ = b;
        load(b, edit_buf_);
        return edit_buf_;
    }
    Records& active() { return edit_buf_; }

    // -- batch sessions ------------------------------------------------------
    //
    // The streaming bulk loader feeds records in Hilbert order, so runs of
    // consecutive edit/commit pairs land in the same bucket. In batch mode
    // commit() only updates the bucket's metadata count and defers the
    // O(page) encode until the session moves to a different bucket (or the
    // batch ends / the file is flushed / the page is read raw), turning
    // ~capacity encodes + decodes per bucket into one of each. Observable
    // behavior is unchanged: read()/size() serve the live buffer and
    // metadata, and every page is consistent again after end_batch().
    //
    // With a WAL, each session sync also logs the page image and a commit
    // marker — a crash mid-batch recovers to the last synced boundary.

    /// Enters batch mode. Only one batch may be open at a time.
    void begin_batch() {
        PGF_CHECK(!batch_, "begin_batch: batch already open");
        batch_ = true;
        session_open_ = false;
        session_dirty_ = false;
    }

    /// Persists any pending session and leaves batch mode.
    void end_batch() {
        PGF_CHECK(batch_, "end_batch: no batch open");
        sync_session();
        session_open_ = false;
        batch_ = false;
    }

    void split_active(std::uint32_t b, std::uint32_t new_id, std::size_t pivot,
                      bool continue_with_upper) {
        auto split = edit_buf_.begin() + static_cast<std::ptrdiff_t>(pivot);
        if (continue_with_upper) {
            // Persist the lower half to b's page; keep the upper in memory.
            store(b, edit_buf_.data(), pivot);
            edit_buf_.erase(edit_buf_.begin(), split);
            active_ = new_id;
        } else {
            store(new_id, edit_buf_.data() + pivot, edit_buf_.size() - pivot);
            edit_buf_.erase(split, edit_buf_.end());
        }
        // Either way the continuing half now differs from its page.
        if (batch_) session_dirty_ = true;
    }

    void commit(std::uint32_t b) {
        if (batch_) {
            PGF_CHECK(session_open_ && b == active_,
                      "batch commit outside the open session");
            PGF_CHECK(edit_buf_.size() <= capacity_,
                      "store: bucket exceeds its page");
            metas_[b].count = edit_buf_.size();
            session_dirty_ = true;
            return;
        }
        store(b, edit_buf_.data(), edit_buf_.size());
    }

    // -- durability hooks (no-ops without a WAL) -----------------------------

    /// Journals a grid refinement: the engine inserted a scale split at
    /// `coord` on `axis` (creating grid interval `interval`) and shifted
    /// every bucket's cell box. Replay repeats exactly that.
    void note_refine(std::size_t axis, std::uint32_t interval, double coord) {
        if (wal_ == nullptr) return;
        std::vector<std::byte> body;
        wal_put_u32(body, static_cast<std::uint32_t>(axis));
        wal_put_u32(body, interval);
        wal_put_f64(body, coord);
        wal_->append(WalRecordKind::kRefine, body);
    }

    /// Journals a bucket split: `from` shrank along `axis` so that its
    /// upper half became `to` (whose box the kCreate record carries).
    void note_split(std::uint32_t from, std::uint32_t to, std::size_t axis) {
        if (wal_ == nullptr) return;
        std::vector<std::byte> body;
        wal_put_u32(body, from);
        wal_put_u32(body, to);
        wal_put_u32(body, static_cast<std::uint32_t>(axis));
        wal_->append(WalRecordKind::kSplit, body);
    }

    /// Journals a commit marker: the grid is consistent at this LSN. The
    /// engine calls this after each completed insert/erase; inside a batch
    /// session the marker is deferred to the next sync_session() (the
    /// per-record granularity would defeat the batch).
    void note_op_end() {
        if (wal_ == nullptr || batch_) return;
        wal_->append(WalRecordKind::kCommit, {});
    }

    /// The log (null when durability is off) — benches read its stats,
    /// tests force flushes.
    WriteAheadLog* wal() const { return wal_.get(); }

    // -- paged-only surface --------------------------------------------------

    /// Page id backing bucket `b` (for partitioned-storage experiments and
    /// the disk-backed parallel server).
    std::uint64_t page(std::uint32_t b) const { return metas_[b].page; }

    const BufferPool& pool() const { return pool_; }
    BufferPool& pool() { return pool_; }
    const std::string& path() const { return file_->path(); }

    /// Writes back every dirty page and syncs the file (and the log).
    void flush() {
        sync_session();
        pool_.flush_all();
        if (wal_ != nullptr) wal_->flush();
    }

    /// Copies the raw payload bytes of bucket `b`'s page (through the
    /// pool) into `out` — the audit layer's window for header/roundtrip
    /// checks.
    void read_bucket_page(std::uint32_t b, std::vector<std::byte>& out) const {
        sync_session();  // an open batch session's page is stale until synced
        auto page = pool_.fetch(metas_[b].page);
        auto data = page.data();
        out.assign(data.begin(), data.end());
    }

    /// Durability-header probe straight from disk (bypassing the pool):
    /// whether the page's checksum verifies, its format version, and its
    /// stamped LSN. The audit layer's window for `paged.page.*` checks —
    /// flush() first, or dirty pool pages make the on-disk image stale
    /// (stale is fine for the checksum check: the previous image was
    /// written with a valid checksum too).
    struct PageProbe {
        bool checksum_ok = false;
        std::uint16_t version = 0;
        std::uint64_t lsn = 0;
    };
    PageProbe probe_page(std::uint64_t page_id) const {
        std::vector<std::byte> image(file_->page_size());
        PageProbe probe;
        probe.checksum_ok = file_->try_read(page_id, image);
        probe.version = page_version(image);
        probe.lsn = page_lsn(image);
        return probe;
    }

    /// Record count claimed by a raw page payload's header (no validation —
    /// audits compare this against the in-memory metadata before trusting
    /// it for a decode).
    static std::uint64_t page_record_count(std::span<const std::byte> data) {
        return read_u64(data.data());
    }

    /// Decodes a raw page payload (count header + records) into `out`.
    /// Usable on any copy of a bucket page — the disk-backed server reads
    /// pages through its own per-node pools and decodes with this.
    static void decode_page(std::span<const std::byte> data, Records& out) {
        const std::byte* p = data.data();
        const std::uint64_t count = read_u64(p);
        out.resize(count);
        for (std::uint64_t k = 0; k < count; ++k) {
            const std::byte* rec = p + kCountBytes + k * kRecordBytes;
            for (std::size_t i = 0; i < D; ++i) {
                out[k].point[i] = std::bit_cast<double>(read_u64(rec + i * 8));
            }
            out[k].id = read_u64(rec + D * 8);
        }
    }

    /// Encodes `count` records into a raw page payload (the inverse of
    /// decode_page); bytes past the last record are left untouched.
    static void encode_page(std::span<std::byte> data,
                            const GridRecord<D>* records, std::size_t count) {
        std::byte* p = data.data();
        write_u64(p, count);
        for (std::size_t k = 0; k < count; ++k) {
            std::byte* rec = p + kCountBytes + k * kRecordBytes;
            for (std::size_t i = 0; i < D; ++i) {
                write_u64(rec + i * 8,
                          std::bit_cast<std::uint64_t>(records[k].point[i]));
            }
            write_u64(rec + D * 8, records[k].id);
        }
    }

private:
    static std::uint64_t read_u64(const std::byte* p) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        }
        return v;
    }

    static void write_u64(std::byte* p, std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
        }
    }

    static std::unique_ptr<PageFile> make_file(const std::string& path,
                                               std::size_t page_size,
                                               FaultInjector* injector) {
        if (injector != nullptr) {
            return std::make_unique<FaultInjectingPageFile>(
                PageFile::create(path, page_size), injector);
        }
        return std::make_unique<PageFile>(PageFile::create(path, page_size));
    }

    static std::unique_ptr<WriteAheadLog> make_wal(const WalSetup<D>& setup) {
        if (setup.path.empty()) return nullptr;
        auto wal = WriteAheadLog::create(setup.path);
        if (setup.injector != nullptr) wal->set_fault_injector(setup.injector);
        return wal;
    }

    void log_genesis(std::size_t page_size, const WalSetup<D>& setup) {
        std::vector<std::byte> body;
        wal_put_u32(body, static_cast<std::uint32_t>(D));
        wal_put_u64(body, page_size);
        wal_put_u64(body, capacity_);
        body.push_back(static_cast<std::byte>(setup.split_policy));
        for (std::size_t i = 0; i < D; ++i) {
            wal_put_f64(body, setup.domain.lo[i]);
            wal_put_f64(body, setup.domain.hi[i]);
        }
        wal_->append(WalRecordKind::kGenesis, body);
    }

    /// Journals bucket `b`'s freshly encoded payload and returns the
    /// record's LSN (0 without a WAL) for the page's header stamp.
    std::uint64_t log_page(std::uint64_t page_id,
                           std::span<const std::byte> payload) const {
        wal_body_.clear();
        wal_put_u64(wal_body_, page_id);
        wal_body_.insert(wal_body_.end(), payload.begin(), payload.end());
        return wal_->append(WalRecordKind::kPage, wal_body_);
    }

    void load(std::uint32_t b, Records& out) const {
        auto page = pool_.fetch(metas_[b].page);
        const std::byte* data = page.data().data();
        const std::uint64_t count = read_u64(data);
        PGF_CHECK(count == metas_[b].count,
                  "page header disagrees with bucket metadata");
        decode_page(page.data(), out);
    }

    void store(std::uint32_t b, const GridRecord<D>* records,
               std::size_t count) {
        PGF_CHECK(count <= capacity_, "store: bucket exceeds its page");
        auto page = pool_.fetch(metas_[b].page);
        encode_page(page.data(), records, count);
        if (wal_ != nullptr) {
            page.set_lsn(log_page(metas_[b].page, page.data()));
        }
        page.mark_dirty();
        metas_[b].count = count;
    }

    /// Encodes the open batch session's buffer back to its page (no-op
    /// when nothing is pending). const because it only refreshes the page
    /// cache and the mirrored count — observable state doesn't change.
    /// With a WAL this is also a commit point: the batch reaches a
    /// consistent boundary exactly when a session syncs.
    void sync_session() const {
        if (!session_open_ || !session_dirty_) return;
        PGF_CHECK(edit_buf_.size() <= capacity_,
                  "store: bucket exceeds its page");
        auto page = pool_.fetch(metas_[active_].page);
        encode_page(page.data(), edit_buf_.data(), edit_buf_.size());
        if (wal_ != nullptr) {
            page.set_lsn(log_page(metas_[active_].page, page.data()));
        }
        page.mark_dirty();
        metas_[active_].count = edit_buf_.size();
        session_dirty_ = false;
        if (wal_ != nullptr) wal_->append(WalRecordKind::kCommit, {});
    }

    std::unique_ptr<PageFile> file_;
    mutable std::unique_ptr<WriteAheadLog> wal_;  // null = durability off
    mutable BufferPool pool_;
    std::size_t capacity_;
    mutable std::vector<Meta> metas_;
    std::uint32_t active_ = 0;
    Records edit_buf_;
    mutable Records read_buf_;
    mutable std::vector<std::byte> wal_body_;  ///< kPage encode scratch
    bool batch_ = false;            ///< inside begin_batch()/end_batch()
    bool session_open_ = false;     ///< edit_buf_ holds active_'s records
    mutable bool session_dirty_ = false;  ///< edit_buf_ differs from page
};

}  // namespace pgf
