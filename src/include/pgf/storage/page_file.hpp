// File-backed page store: the persistence substrate under the grid file.
//
// Layout: a superblock at offset 0 (magic, page size, page count) followed
// by fixed-size pages. Page ids are 0-based over the data pages; the
// superblock is not addressable. All I/O is synchronous and unbuffered at
// this layer — caching is the BufferPool's job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>

namespace pgf {

class PageFile {
public:
    static constexpr std::size_t kDefaultPageSize = 4096;
    static constexpr std::size_t kMinPageSize = 64;

    /// Creates (truncating) a page file with the given page size.
    static PageFile create(const std::string& path,
                           std::size_t page_size = kDefaultPageSize);

    /// Opens an existing page file; the page size comes from the superblock.
    static PageFile open(const std::string& path);

    PageFile(PageFile&&) = default;
    PageFile& operator=(PageFile&&) = default;
    PageFile(const PageFile&) = delete;
    PageFile& operator=(const PageFile&) = delete;
    ~PageFile();

    std::size_t page_size() const { return page_size_; }
    std::uint64_t page_count() const { return page_count_; }
    const std::string& path() const { return path_; }

    /// Appends a zeroed page; returns its id.
    std::uint64_t allocate();

    /// Reads page `id` into `out` (out.size() must equal page_size()).
    void read(std::uint64_t id, std::span<std::byte> out);

    /// Writes `data` (page_size() bytes) to page `id`.
    void write(std::uint64_t id, std::span<const std::byte> data);

    /// Flushes the stream and persists the superblock.
    void sync();

private:
    PageFile() = default;
    void write_superblock();

    std::string path_;
    std::size_t page_size_ = 0;
    std::uint64_t page_count_ = 0;
    mutable std::fstream stream_;
};

}  // namespace pgf
