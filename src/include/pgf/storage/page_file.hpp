// File-backed page store: the persistence substrate under the grid file.
//
// Layout: a superblock at offset 0 (magic, page size, page count) followed
// by fixed-size pages. Page ids are 0-based over the data pages; the
// superblock is not addressable. All I/O is synchronous and unbuffered at
// this layer — caching is the BufferPool's job.
//
// Every page carries the 16-byte durability header of pgf/storage/page.hpp:
// write() stamps the format version and CRC32C checksum (whatever the
// caller's buffer held in those fields is ignored), read() verifies the
// checksum and reports a torn or corrupt page as a typed CheckError. The
// LSN field is passed through verbatim — the layers above own it.
//
// The page-facing entry points (allocate/read/write/sync) are virtual so
// the crash-injection test double (pgf/storage/fault_injection.hpp) can
// interpose: it kills a write mid-page and then poison()s the file so the
// destructor's superblock flush cannot "heal" the simulated crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace pgf {

class PageFile {
public:
    static constexpr std::size_t kDefaultPageSize = 4096;
    static constexpr std::size_t kMinPageSize = 64;

    /// Creates (truncating) a page file with the given page size.
    static PageFile create(const std::string& path,
                           std::size_t page_size = kDefaultPageSize);

    /// Opens an existing page file; the page size comes from the superblock.
    static PageFile open(const std::string& path);

    PageFile(PageFile&&) = default;
    PageFile& operator=(PageFile&&) = default;
    PageFile(const PageFile&) = delete;
    PageFile& operator=(const PageFile&) = delete;
    virtual ~PageFile();

    std::size_t page_size() const { return page_size_; }
    std::uint64_t page_count() const { return page_count_; }
    const std::string& path() const { return path_; }

    /// Payload bytes per page (page_size() minus the durability header).
    std::size_t payload_size() const;

    /// Appends a zeroed page; returns its id.
    virtual std::uint64_t allocate();

    /// Reads page `id` into `out` (out.size() must equal page_size()) and
    /// verifies its checksum; a mismatch (torn or corrupt page) throws a
    /// CheckError.
    virtual void read(std::uint64_t id, std::span<std::byte> out);

    /// Writes `data` (page_size() bytes) to page `id`, stamping the format
    /// version and checksum into the header on the way out. `data` is not
    /// modified; its crc/version fields are ignored.
    virtual void write(std::uint64_t id, std::span<const std::byte> data);

    /// Flushes the stream and persists the superblock.
    virtual void sync();

    /// No-throw probe for audits and recovery: reads the raw page bytes
    /// into `out` and returns whether the checksum verifies. A short read
    /// (file truncated mid-page) zero-fills the tail and returns false
    /// unless the zero page happens to verify.
    bool try_read(std::uint64_t id, std::span<std::byte> out);

    /// Assembles header (LSN) + payload (payload_size() bytes) into a full
    /// page image and writes it — the recovery path's page applicator.
    void write_payload(std::uint64_t id, std::span<const std::byte> payload,
                       std::uint64_t lsn);

    /// Grows the file with zeroed pages until page_count() >= n (recovery
    /// after a crash that left the superblock's count stale).
    void ensure_page_count(std::uint64_t n);

protected:
    PageFile() = default;

    /// After poison() every write/sync (including the destructor's
    /// superblock flush) is silently dropped — the crash-injection double
    /// uses it to freeze the on-disk bytes at the instant of the simulated
    /// kill.
    void poison() { dead_ = true; }
    bool poisoned() const { return dead_; }

    /// Writes only the first `keep_bytes` of the stamped image of `data` —
    /// a torn page, exactly what a real crash mid-write leaves behind.
    void write_torn(std::uint64_t id, std::span<const std::byte> data,
                    std::size_t keep_bytes);

private:
    void write_superblock();
    /// Stamps version + checksum over `data` into scratch_; returns it.
    std::span<const std::byte> stamp_image(std::span<const std::byte> data);
    void write_image(std::uint64_t id, std::span<const std::byte> image);

    std::string path_;
    std::size_t page_size_ = 0;
    std::uint64_t page_count_ = 0;
    bool dead_ = false;
    mutable std::fstream stream_;
    std::vector<std::byte> scratch_;
};

}  // namespace pgf
