// Latched, thread-safe buffer pool over a PageFile with a pluggable
// replacement policy (LRU / LRU-K / CLOCK / 2Q, see
// pgf/storage/replacement.hpp) and declustering-aware prefetch.
//
// Pages are pinned through RAII PageRef handles; unpinned pages stay
// cached until the policy evicts them (only pin == 0 frames are
// evictable). Dirty pages are written back on eviction and on
// flush_all(). Statistics (hits/misses/evictions/writebacks plus
// prefetch_issued/prefetch_hits) feed the storage micro-benchmarks,
// the serving reports and tests.
//
// Durability: frames hold full pages including the 16-byte header of
// pgf/storage/page.hpp, but PageRef::data() exposes only the *payload* —
// the layers above never see (or clobber) the checksum/LSN fields.
// PageRef::set_lsn() stamps the frame's LSN after its image was logged,
// and the pool enforces WAL-before-data ordering: a dirty frame whose
// page LSN exceeds wal->durable_lsn() forces a log flush before its bytes
// may reach the data file (eviction and flush_all alike). With no WAL
// attached (the default) page LSNs stay 0 and the ordering hook is inert.
//
// Replacement: the pool owns frames, page table and pins; the Replacer
// owns recency metadata and the victim choice, with every policy call
// made under the pool latch (the Replacer interface requires the latch
// by parameter — see replacement.hpp). The default-constructed config is
// plain LRU with an access-stamp sequence identical to the pool's
// historical built-in LRU, so existing callers see the exact same
// eviction/writeback order (golden-tested). Victim selection is O(log
// frames) or better for LRU/LRU-K/LFU: the pool hands the policy a lazy
// EvictableView (pin-state probe) instead of materializing an O(frames)
// eligibility vector per eviction, and free frames come off a stack
// instead of a scan.
//
// Prefetch: prefetch(pages) reads not-yet-resident pages into unpinned
// frames ahead of demand — the declustering assignment tells the serving
// layer exactly which bucket pages a node is about to scan, so the
// dispatcher can stage them before the workers arrive. Prefetched pages
// are speculative until first pinned: they form a *first-eviction class*
// (evicted FIFO before the policy is even consulted), and a prefetch
// never evicts another prefetched-but-unused frame — one misjudged
// read-ahead batch cannot cascade into evicting the previous one.
// A fetch() that lands on a prefetched frame counts as a pool hit and a
// prefetch hit, and graduates the frame into the policy's normal order.
//
// Concurrency (lock discipline machine-checked via pgf/util/annotations.hpp):
//   - One pool latch guards the page table, the frame metadata (pin
//     counts, dirty bits, policy recency state) and all PageFile I/O — the
//     PageFile's seek+read/write stream is not independently thread-safe,
//     so misses, prefetches, evictions and flushes serialize on the latch.
//   - A PageRef captures its frame's payload span at pin time; readers of
//     a pinned page touch no shared pool state at all. A frame's bytes are
//     stable while pinned because eviction skips pin > 0 frames and the
//     backing vector is only reallocated when a frame is re-grabbed.
//   - Concurrent access to one page's *bytes* is the caller's problem
//     (page-level latching lives above this layer); concurrent fetch /
//     prefetch / mark_dirty / unpin / allocate on the pool itself are safe.
//   - Lock ordering: the pool latch may be held while the WAL's own latch
//     is taken (the write-back ordering flush); the WAL never calls back
//     into a pool, so the order is acyclic.
//   - Counters are relaxed atomics so stats() never blocks; single-threaded
//     callers observe exactly the pre-refactor values.
//
// When every frame is pinned, fetch/allocate throw CheckError ("pool
// exhausted") rather than wait — a deliberate choice: the single-threaded
// engine treats exhaustion as a configuration bug, and concurrent callers
// bound their in-flight pins (see tests/storage/test_buffer_pool_concurrent).
// prefetch() never throws on pressure; it simply stops staging.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "pgf/storage/page.hpp"
#include "pgf/storage/page_file.hpp"
#include "pgf/storage/replacement.hpp"
#include "pgf/storage/wal.hpp"
#include "pgf/util/annotations.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

class BufferPool {
public:
    /// `capacity` = maximum resident pages; must be >= 1. `config` picks
    /// the replacement policy; the default is the historical LRU. `wal`,
    /// when given, is the log whose durable horizon gates dirty-page
    /// write-back (WAL-before-data); the pool does not own it.
    BufferPool(PageFile& file, std::size_t capacity,
               BufferPoolConfig config = {}, WriteAheadLog* wal = nullptr);

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;
    ~BufferPool();

    /// RAII pin on a buffered page. The handle owns a snapshot of the
    /// frame's payload span and page id, taken under the pool latch at pin
    /// time — data()/page_id() are lock-free and safe to use concurrently
    /// with any pool operation (the pinned frame cannot be evicted).
    class PageRef {
    public:
        PageRef(PageRef&& o) noexcept
            : pool_(o.pool_),
              frame_(o.frame_),
              data_(o.data_),
              page_id_(o.page_id_) {
            o.pool_ = nullptr;
        }
        PageRef& operator=(PageRef&&) = delete;
        PageRef(const PageRef&) = delete;
        PageRef& operator=(const PageRef&) = delete;
        ~PageRef() {
            if (pool_ != nullptr) pool_->unpin(frame_);
        }

        /// The page *payload* (page size minus the durability header —
        /// the header fields are the storage layer's, not the caller's).
        std::span<std::byte> data() { return data_; }
        std::span<const std::byte> data() const { return data_; }
        std::uint64_t page_id() const { return page_id_; }
        /// Marks the page for write-back (takes the pool latch).
        void mark_dirty();
        /// Stamps the frame's page LSN — call after logging the page's
        /// image so write-back ordering can hold it behind the WAL
        /// (takes the pool latch).
        void set_lsn(std::uint64_t lsn);

    private:
        friend class BufferPool;
        PageRef(BufferPool* pool, std::size_t frame, std::span<std::byte> data,
                std::uint64_t page_id)
            : pool_(pool), frame_(frame), data_(data), page_id_(page_id) {}
        BufferPool* pool_;
        std::size_t frame_;
        std::span<std::byte> data_;
        std::uint64_t page_id_;
    };

    /// Fetches (and pins) page `id`, reading it from the file on a miss.
    /// Safe for concurrent callers; two threads fetching the same page
    /// share one frame (and each holds its own pin on it).
    PageRef fetch(std::uint64_t id) PGF_EXCLUDES(latch_);

    /// Allocates a fresh zeroed page in the file and pins it.
    PageRef allocate() PGF_EXCLUDES(latch_);

    /// Stages `pages` into the pool without pinning, in the given order
    /// (the declustering layer passes a node's bucket block in assignment
    /// order). Already-resident pages are skipped. Staging stops — without
    /// throwing — once the only reusable frames are pinned or hold an
    /// earlier prefetch that has not been consumed yet: read-ahead never
    /// cannibalizes itself or blocks demand traffic. Each page actually
    /// read counts in prefetch_issued; a later fetch() of a still-staged
    /// page counts in both hits and prefetch_hits.
    void prefetch(std::span<const std::uint64_t> pages) PGF_EXCLUDES(latch_);

    /// Writes back every dirty page and syncs the file, flushing the WAL
    /// past the dirtiest LSN first (write-back ordering). Pinned pages are
    /// no obstacle: they are flushed like any other dirty page and stay
    /// resident with their pins intact. With writers concurrently mutating
    /// a pinned page the flushed image is an unspecified interleaving —
    /// call flush_all at quiescent points when durability of the latest
    /// bytes matters.
    void flush_all() PGF_EXCLUDES(latch_);

    std::size_t capacity() const { return capacity_; }
    /// The construction-time policy selection (immutable).
    const BufferPoolConfig& config() const { return config_; }
    std::size_t resident() const PGF_EXCLUDES(latch_);
    /// Number of frames currently holding at least one pin. A quiescent
    /// pool (no live PageRef) reports 0 — the audit layer checks this.
    std::size_t pinned_frames() const PGF_EXCLUDES(latch_);
    /// Sorted ids of the pages currently resident — test/audit hook used
    /// by the golden eviction-sequence tests.
    std::vector<std::uint64_t> resident_pages() const PGF_EXCLUDES(latch_);

    std::uint64_t hits() const {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }
    std::uint64_t evictions() const {
        return evictions_.load(std::memory_order_relaxed);
    }
    std::uint64_t writebacks() const {
        return writebacks_.load(std::memory_order_relaxed);
    }
    std::uint64_t prefetch_issued() const {
        return prefetch_issued_.load(std::memory_order_relaxed);
    }
    std::uint64_t prefetch_hits() const {
        return prefetch_hits_.load(std::memory_order_relaxed);
    }

    /// Counter snapshot (see stats()/reset()).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t prefetch_issued = 0;
        std::uint64_t prefetch_hits = 0;

        /// Demand hit fraction in [0, 1]; 0 when the pool saw no fetches.
        double hit_rate() const {
            const std::uint64_t accesses = hits + misses;
            return accesses == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(accesses);
        }
    };

    Stats stats() const {
        return {hits(),       misses(),          evictions(),
                writebacks(), prefetch_issued(), prefetch_hits()};
    }

    /// Snapshot-and-zero: returns the counters accumulated since the last
    /// reset and clears them, so callers measuring per-phase deltas (e.g.
    /// the disk-backed server's per-batch I/O) need no external
    /// bookkeeping. Page contents and recency are untouched. Each counter
    /// is exchanged atomically; take the snapshot at a phase boundary (no
    /// in-flight operations) when the four values must be mutually
    /// consistent.
    Stats reset();

private:
    struct Frame {
        std::uint64_t page_id = 0;
        std::vector<std::byte> data;  // full page: header + payload
        std::uint32_t pin_count = 0;
        bool dirty = false;
        bool in_use = false;
        /// Staged by prefetch() and not pinned since — the first-eviction
        /// class. Cleared by the first fetch() of the page.
        bool prefetched = false;
        /// FIFO order within the first-eviction class.
        std::uint64_t prefetch_stamp = 0;
    };

    /// EvictableView probes: lazy pin-state checks handed to the policy,
    /// called only from inside victim() (which requires the latch), so
    /// the frames vector access is latch-protected by construction.
    static bool demand_evictable(const void* frames, std::size_t i);
    static bool prefetch_evictable(const void* frames, std::size_t i);

    /// Returns a frame ready for reuse for a *demand* fill: a never-used
    /// frame off the free stack if one exists, then the oldest
    /// prefetched-but-unused frame (first-eviction class, FIFO; skipped
    /// entirely when staged_count_ == 0), then the policy's victim among
    /// unpinned frames (written back first when dirty). Throws CheckError
    /// when every frame is pinned.
    std::size_t grab_frame() PGF_REQUIRES(latch_);
    /// grab_frame for prefetch staging: free frame, else policy victim —
    /// but never another prefetched-unused frame, and never throws;
    /// returns frames_.size() when staging must stop.
    std::size_t grab_frame_for_prefetch() PGF_REQUIRES(latch_);
    /// Evicts the page held by `frame` (WAL flush per write-back ordering,
    /// writeback if dirty, table erase, policy notification, counters).
    void evict_frame(std::size_t frame) PGF_REQUIRES(latch_);
    /// Returns a grabbed-but-unfilled frame to the free stack — the
    /// exception path when the file read of a miss fill fails (e.g. a
    /// checksum mismatch): the frame must not leak out of circulation.
    void release_frame(std::size_t frame) PGF_REQUIRES(latch_);
    void unpin(std::size_t frame) PGF_EXCLUDES(latch_);
    void mark_dirty_frame(std::size_t frame) PGF_EXCLUDES(latch_);
    void set_frame_lsn(std::size_t frame, std::uint64_t lsn)
        PGF_EXCLUDES(latch_);
    std::span<std::byte> payload_of(Frame& f) PGF_REQUIRES(latch_) {
        return std::span<std::byte>(f.data).subspan(kPageHeaderBytes);
    }

    PageFile& file_ PGF_PT_GUARDED_BY(latch_);
    const std::size_t capacity_;
    const BufferPoolConfig config_;
    /// Write-back ordering gate; nullptr = durability off. The pointer is
    /// immutable after construction; the WAL has its own latch.
    WriteAheadLog* const wal_;
    mutable Mutex latch_;
    std::vector<Frame> frames_ PGF_GUARDED_BY(latch_);
    std::unordered_map<std::uint64_t, std::size_t> table_
        PGF_GUARDED_BY(latch_);  // page -> frame
    std::unique_ptr<Replacer> policy_ PGF_GUARDED_BY(latch_);
    std::vector<std::size_t> free_ PGF_GUARDED_BY(latch_);  // never-used frames
    std::size_t staged_count_ PGF_GUARDED_BY(latch_) = 0;  // prefetched-unused
    std::uint64_t prefetch_clock_ PGF_GUARDED_BY(latch_) = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> writebacks_{0};
    std::atomic<std::uint64_t> prefetch_issued_{0};
    std::atomic<std::uint64_t> prefetch_hits_{0};
};

}  // namespace pgf
