// Latched, thread-safe LRU buffer pool over a PageFile.
//
// Pages are pinned through RAII PageRef handles; unpinned pages stay
// cached until LRU eviction (only pin == 0 frames are evictable). Dirty
// pages are written back on eviction and on flush_all(). Statistics
// (hits/misses/evictions/writebacks) feed the storage micro-benchmarks and
// tests.
//
// Concurrency (lock discipline machine-checked via pgf/util/annotations.hpp):
//   - One pool latch guards the page table, the frame metadata (pin
//     counts, dirty bits, LRU stamps) and all PageFile I/O — the PageFile's
//     seek+read/write stream is not independently thread-safe, so misses,
//     evictions and flushes serialize on the latch.
//   - A PageRef captures its frame's data span at pin time; readers of a
//     pinned page touch no shared pool state at all. A frame's bytes are
//     stable while pinned because eviction skips pin > 0 frames and the
//     backing vector is only reallocated when a frame is re-grabbed.
//   - Concurrent access to one page's *bytes* is the caller's problem
//     (page-level latching lives above this layer); concurrent fetch /
//     mark_dirty / unpin / allocate on the pool itself are safe.
//   - Counters are relaxed atomics so stats() never blocks; single-threaded
//     callers observe exactly the pre-refactor values.
//
// When every frame is pinned, fetch/allocate throw CheckError ("pool
// exhausted") rather than wait — a deliberate choice: the single-threaded
// engine treats exhaustion as a configuration bug, and concurrent callers
// bound their in-flight pins (see tests/storage/test_buffer_pool_concurrent).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pgf/storage/page_file.hpp"
#include "pgf/util/annotations.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

class BufferPool {
public:
    /// `capacity` = maximum resident pages; must be >= 1.
    BufferPool(PageFile& file, std::size_t capacity);

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;
    ~BufferPool();

    /// RAII pin on a buffered page. The handle owns a snapshot of the
    /// frame's data span and page id, taken under the pool latch at pin
    /// time — data()/page_id() are lock-free and safe to use concurrently
    /// with any pool operation (the pinned frame cannot be evicted).
    class PageRef {
    public:
        PageRef(PageRef&& o) noexcept
            : pool_(o.pool_),
              frame_(o.frame_),
              data_(o.data_),
              page_id_(o.page_id_) {
            o.pool_ = nullptr;
        }
        PageRef& operator=(PageRef&&) = delete;
        PageRef(const PageRef&) = delete;
        PageRef& operator=(const PageRef&) = delete;
        ~PageRef() {
            if (pool_ != nullptr) pool_->unpin(frame_);
        }

        std::span<std::byte> data() { return data_; }
        std::span<const std::byte> data() const { return data_; }
        std::uint64_t page_id() const { return page_id_; }
        /// Marks the page for write-back (takes the pool latch).
        void mark_dirty();

    private:
        friend class BufferPool;
        PageRef(BufferPool* pool, std::size_t frame, std::span<std::byte> data,
                std::uint64_t page_id)
            : pool_(pool), frame_(frame), data_(data), page_id_(page_id) {}
        BufferPool* pool_;
        std::size_t frame_;
        std::span<std::byte> data_;
        std::uint64_t page_id_;
    };

    /// Fetches (and pins) page `id`, reading it from the file on a miss.
    /// Safe for concurrent callers; two threads fetching the same page
    /// share one frame (and each holds its own pin on it).
    PageRef fetch(std::uint64_t id) PGF_EXCLUDES(latch_);

    /// Allocates a fresh zeroed page in the file and pins it.
    PageRef allocate() PGF_EXCLUDES(latch_);

    /// Writes back every dirty page and syncs the file. Pinned pages are
    /// no obstacle: they are flushed like any other dirty page and stay
    /// resident with their pins intact. With writers concurrently mutating
    /// a pinned page the flushed image is an unspecified interleaving —
    /// call flush_all at quiescent points when durability of the latest
    /// bytes matters.
    void flush_all() PGF_EXCLUDES(latch_);

    std::size_t capacity() const { return capacity_; }
    std::size_t resident() const PGF_EXCLUDES(latch_);
    /// Number of frames currently holding at least one pin. A quiescent
    /// pool (no live PageRef) reports 0 — the audit layer checks this.
    std::size_t pinned_frames() const PGF_EXCLUDES(latch_);

    std::uint64_t hits() const {
        return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const {
        return misses_.load(std::memory_order_relaxed);
    }
    std::uint64_t evictions() const {
        return evictions_.load(std::memory_order_relaxed);
    }
    std::uint64_t writebacks() const {
        return writebacks_.load(std::memory_order_relaxed);
    }

    /// Counter snapshot (see stats()/reset()).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t writebacks = 0;
    };

    Stats stats() const { return {hits(), misses(), evictions(), writebacks()}; }

    /// Snapshot-and-zero: returns the counters accumulated since the last
    /// reset and clears them, so callers measuring per-phase deltas (e.g.
    /// the disk-backed server's per-batch I/O) need no external
    /// bookkeeping. Page contents and recency are untouched. Each counter
    /// is exchanged atomically; take the snapshot at a phase boundary (no
    /// in-flight operations) when the four values must be mutually
    /// consistent.
    Stats reset();

private:
    struct Frame {
        std::uint64_t page_id = 0;
        std::vector<std::byte> data;
        std::uint32_t pin_count = 0;
        bool dirty = false;
        std::uint64_t last_use = 0;
        bool in_use = false;
    };

    /// Returns a frame ready for reuse: a never-used frame if one exists,
    /// otherwise the least-recently-used unpinned frame (written back first
    /// when dirty). Throws CheckError when every frame is pinned.
    std::size_t grab_frame() PGF_REQUIRES(latch_);
    void unpin(std::size_t frame) PGF_EXCLUDES(latch_);
    void mark_dirty_frame(std::size_t frame) PGF_EXCLUDES(latch_);

    PageFile& file_ PGF_PT_GUARDED_BY(latch_);
    const std::size_t capacity_;
    mutable Mutex latch_;
    std::vector<Frame> frames_ PGF_GUARDED_BY(latch_);
    std::unordered_map<std::uint64_t, std::size_t> table_
        PGF_GUARDED_BY(latch_);  // page -> frame
    std::uint64_t clock_ PGF_GUARDED_BY(latch_) = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> writebacks_{0};
};

}  // namespace pgf
