// LRU buffer pool over a PageFile.
//
// Pages are pinned through RAII PageRef handles; unpinned pages stay
// cached until LRU eviction. Dirty pages are written back on eviction and
// on flush_all(). Statistics (hits/misses/evictions/writebacks) feed the
// storage micro-benchmarks and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pgf/storage/page_file.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

class BufferPool {
public:
    /// `capacity` = maximum resident pages; must be >= 1.
    BufferPool(PageFile& file, std::size_t capacity);

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;
    ~BufferPool();

    /// RAII pin on a buffered page.
    class PageRef {
    public:
        PageRef(PageRef&& o) noexcept : pool_(o.pool_), frame_(o.frame_) {
            o.pool_ = nullptr;
        }
        PageRef& operator=(PageRef&&) = delete;
        PageRef(const PageRef&) = delete;
        PageRef& operator=(const PageRef&) = delete;
        ~PageRef() {
            if (pool_ != nullptr) pool_->unpin(frame_);
        }

        std::span<std::byte> data();
        std::span<const std::byte> data() const;
        std::uint64_t page_id() const;
        /// Marks the page for write-back.
        void mark_dirty();

    private:
        friend class BufferPool;
        PageRef(BufferPool* pool, std::size_t frame)
            : pool_(pool), frame_(frame) {}
        BufferPool* pool_;
        std::size_t frame_;
    };

    /// Fetches (and pins) page `id`, reading it from the file on a miss.
    PageRef fetch(std::uint64_t id);

    /// Allocates a fresh zeroed page in the file and pins it.
    PageRef allocate();

    /// Writes back every dirty page and syncs the file. Requires no pinned
    /// pages with outstanding writes is NOT required — pinned pages are
    /// flushed too (they stay resident).
    void flush_all();

    std::size_t capacity() const { return capacity_; }
    std::size_t resident() const { return table_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /// Counter snapshot (see stats()/reset()).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t writebacks = 0;
    };

    Stats stats() const { return {hits_, misses_, evictions_, writebacks_}; }

    /// Snapshot-and-zero: returns the counters accumulated since the last
    /// reset and clears them, so callers measuring per-phase deltas (e.g.
    /// the disk-backed server's per-batch I/O) need no external
    /// bookkeeping. Page contents and recency are untouched.
    Stats reset();

private:
    struct Frame {
        std::uint64_t page_id = 0;
        std::vector<std::byte> data;
        std::uint32_t pin_count = 0;
        bool dirty = false;
        std::uint64_t last_use = 0;
        bool in_use = false;
    };

    std::size_t frame_for(std::uint64_t id);
    std::size_t grab_frame();
    void unpin(std::size_t frame);

    PageFile& file_;
    std::size_t capacity_;
    std::vector<Frame> frames_;
    std::unordered_map<std::uint64_t, std::size_t> table_;  // page -> frame
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
};

}  // namespace pgf
