// Write-ahead log for the paged grid file.
//
// An append-only file of physical redo records. File layout:
//
//   16-byte header: magic "PGFWAL1\0" + u64 reserved (0)
//   records: u32 crc32c | u32 body_len | u64 lsn | u8 kind | body
//
// The record checksum covers [body_len, lsn, kind, body]. LSNs are
// allocated densely starting at 1 and strictly increase through the file,
// so a scan can detect the torn tail a crash leaves behind: the valid
// prefix ends at the last record whose length fits, whose checksum
// verifies, and whose LSN continues the sequence. open() truncates the
// tail; recovery replays records up to the last commit marker.
//
// Record kinds (bodies are little-endian; dimension-typed bodies are
// encoded/decoded by the templated store/recovery layer on top):
//
//   kGenesis  grid parameters: dims, page size, bucket capacity, split
//             policy, domain — enough to re-open the file without the
//             snapshot.
//   kPage     u64 page id + full page payload image (physical redo).
//   kCreate   new bucket: u32 bucket, u64 page, box (u32 lo/hi per dim).
//   kSplit    u32 from, u32 to, u32 axis — bucket `from` shrank along
//             `axis` so that its upper half became bucket `to` (replay
//             sets from.hi[axis] = to.lo[axis]).
//   kRefine   u32 axis, u32 interval, f64 coord — a directory refinement;
//             replay re-inserts the scale split and shifts cell boxes
//             exactly as GridFileCore::shift_cell_boxes did.
//   kCommit   empty body — everything before this LSN is a consistent
//             grid file state.
//
// Appends buffer in memory under the log's latch and reach disk on
// flush() — group commit. durable_lsn() is the last LSN actually on
// disk; the BufferPool's write-back ordering invariant (WAL before data)
// calls flush_up_to() before letting a dirty page with a newer LSN out.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pgf/util/annotations.hpp"

namespace pgf {

class FaultInjector;

enum class WalRecordKind : std::uint8_t {
    kGenesis = 1,
    kPage = 2,
    kCreate = 3,
    kSplit = 4,
    kRefine = 5,
    kCommit = 6,
};

class WriteAheadLog {
public:
    /// Creates (truncating) a fresh log.
    static std::unique_ptr<WriteAheadLog> create(const std::string& path);

    /// Opens an existing log for appending: scans for the valid prefix,
    /// truncates the torn tail, and resumes the LSN sequence.
    static std::unique_ptr<WriteAheadLog> open(const std::string& path);

    ~WriteAheadLog();
    WriteAheadLog(const WriteAheadLog&) = delete;
    WriteAheadLog& operator=(const WriteAheadLog&) = delete;

    const std::string& path() const { return path_; }

    /// Appends a record (buffered); returns its LSN.
    std::uint64_t append(WalRecordKind kind, std::span<const std::byte> body)
        PGF_EXCLUDES(latch_);

    /// Last LSN handed out (not necessarily durable yet).
    std::uint64_t last_lsn() const PGF_EXCLUDES(latch_);

    /// Last LSN flushed to disk. Lock-free: the write-back ordering check
    /// in BufferPool::evict_frame reads it while holding the pool latch.
    std::uint64_t durable_lsn() const {
        return durable_lsn_.load(std::memory_order_acquire);
    }

    /// Flushes every buffered record to disk (group commit).
    void flush() PGF_EXCLUDES(latch_);

    /// Ensures all records up to `lsn` are durable; no-op when they
    /// already are. The WAL-before-data ordering hook.
    void flush_up_to(std::uint64_t lsn) PGF_EXCLUDES(latch_);

    /// Crash-injection hook: when set, flushes consult the injector and a
    /// triggered fault writes a torn buffer prefix, poisons the log, and
    /// throws CrashError (see pgf/storage/fault_injection.hpp).
    void set_fault_injector(FaultInjector* injector) PGF_EXCLUDES(latch_);

    struct Stats {
        std::uint64_t records = 0;  ///< appended this session
        std::uint64_t bytes = 0;    ///< encoded bytes appended this session
        std::uint64_t flushes = 0;  ///< disk flushes (group commits)
    };
    Stats stats() const PGF_EXCLUDES(latch_);

    /// Buffered bytes that trigger an automatic flush on append.
    static constexpr std::size_t kAutoFlushBytes = 1u << 20;

private:
    WriteAheadLog() = default;
    void flush_locked() PGF_REQUIRES(latch_);

    std::string path_;
    mutable Mutex latch_;
    mutable std::fstream stream_ PGF_GUARDED_BY(latch_);
    std::vector<std::byte> buf_ PGF_GUARDED_BY(latch_);  // encoded, unflushed
    std::uint64_t last_lsn_ PGF_GUARDED_BY(latch_) = 0;
    std::atomic<std::uint64_t> durable_lsn_{0};
    bool dead_ PGF_GUARDED_BY(latch_) = false;  // post-crash: drop everything
    FaultInjector* injector_ PGF_GUARDED_BY(latch_) = nullptr;
    Stats stats_ PGF_GUARDED_BY(latch_);
};

/// Streaming reader over a WAL file. scan() finds the valid prefix (pass
/// one); rewind()/next() then iterate the records inside it (pass two) —
/// recovery's two-pass replay.
class WalReader {
public:
    explicit WalReader(const std::string& path);

    struct Record {
        std::uint64_t lsn = 0;
        WalRecordKind kind = WalRecordKind::kCommit;
        std::vector<std::byte> body;
    };

    struct ScanResult {
        std::uint64_t valid_bytes = 0;  ///< prefix length incl. file header
        std::uint64_t records = 0;
        std::uint64_t last_lsn = 0;
        std::uint64_t last_commit_lsn = 0;  ///< 0 = no commit marker found
        /// Prefix length through the last commit record (file header only
        /// when none) — recovery truncates here, discarding the records of
        /// the interrupted operation so later appends cannot resurrect it.
        std::uint64_t commit_bytes = 0;
        bool has_genesis = false;
    };

    /// Validates the header and walks the records, stopping at the first
    /// torn/corrupt one. Also primes the iteration bound for next().
    ScanResult scan();

    /// Reads the next record inside the valid prefix; false at the end.
    /// scan() must have run first.
    bool next(Record& out);

    /// Restarts iteration at the first record.
    void rewind();

private:
    bool read_record(Record& out, std::uint64_t& consumed);

    std::string path_;
    std::ifstream stream_;
    std::uint64_t pos_ = 0;
    std::uint64_t valid_bytes_ = 0;
    std::uint64_t prev_lsn_ = 0;
    bool scanned_ = false;
};

// -- little-endian body builders/parsers (shared by store and recovery) ------

inline void wal_put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline void wal_put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline void wal_put_f64(std::vector<std::byte>& out, double v) {
    wal_put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline std::uint32_t wal_get_u32(std::span<const std::byte> in,
                                 std::size_t& off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(
                 in[off + static_cast<std::size_t>(i)]))
             << (8 * i);
    off += 4;
    return v;
}

inline std::uint64_t wal_get_u64(std::span<const std::byte> in,
                                 std::size_t& off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
                 in[off + static_cast<std::size_t>(i)]))
             << (8 * i);
    off += 8;
    return v;
}

inline double wal_get_f64(std::span<const std::byte> in, std::size_t& off) {
    return std::bit_cast<double>(wal_get_u64(in, off));
}

}  // namespace pgf
