// Disk-resident grid file: bucket contents live in pages of a PageFile,
// read and written through the LRU BufferPool; only the access structure
// (scales, directory, bucket metadata) stays in memory — the classic
// deployment the paper assumes ("the scale and directory of the grid file
// are stored only on the local disk of the coordinator", Sec. 3.5, with
// data buckets as disk blocks).
//
// One bucket == one page; the bucket capacity follows from the page size
// and the fixed record encoding (D coordinates + id, 8 bytes each). Splits
// re-partition a page's records into two pages using the same refinement
// rules as the in-memory GridFile (relative-longest-axis, midpoint or
// median split point).
//
// The in-memory structure is rebuilt on open only via the snapshot path
// (save_grid_file/load_grid_file); this engine is the *working* store whose
// buffer-pool statistics expose real I/O counts (see bench/ext_io_validation
// for the experiment that validates the paper's response-time metric
// against actual page misses).
#pragma once

#include <algorithm>
#include <bit>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/gridfile/scales.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/page_file.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class PagedGridFile {
public:
    using BucketId = std::uint32_t;

    struct Config {
        std::size_t page_size = 4096;
        std::size_t pool_pages = 128;
        SplitPolicy split_policy = SplitPolicy::kMidpoint;
    };

    /// Creates (truncating) the backing file at `path`.
    PagedGridFile(const std::string& path, const Rect<D>& domain,
                  Config config = {})
        : domain_(domain),
          config_(config),
          file_(PageFile::create(path, config.page_size)),
          pool_(file_, config.pool_pages),
          dir_(BucketId{0}) {
        capacity_ = (config_.page_size - kCountBytes) / kRecordBytes;
        PGF_CHECK(capacity_ >= 2,
                  "page size too small for at least two records");
        scales_.reserve(D);
        for (std::size_t i = 0; i < D; ++i) {
            scales_.emplace_back(domain.lo[i], domain.hi[i]);
        }
        BucketMeta root;
        root.cells.lo.fill(0);
        for (std::size_t i = 0; i < D; ++i) root.cells.hi[i] = 1;
        root.page = pool_.allocate().page_id();
        buckets_.push_back(root);
    }

    /// Records per bucket page.
    std::size_t bucket_capacity() const { return capacity_; }
    std::size_t bucket_count() const { return buckets_.size(); }
    std::size_t record_count() const { return record_count_; }
    const Rect<D>& domain() const { return domain_; }
    const BufferPool& pool() const { return pool_; }

    /// Inserts one record. Unlike the in-memory GridFile, a paged bucket
    /// cannot exceed its page, so records that cannot be separated by
    /// refinement (more identical points than one page holds) are rejected
    /// with CheckError instead of silently growing an oversized bucket.
    void insert(const Point<D>& p, std::uint64_t id) {
        BucketId b = dir_.at(locate_cell(p));
        auto records = load_records(b);
        records.push_back(GridRecord<D>{p, id});
        ++record_count_;
        // Overflowing record sets stay in memory until a split produces
        // page-sized halves (usually one round).
        while (records.size() > capacity_) {
            if (max_cell_extent(b) == 1) {
                PGF_CHECK(refine_grid(b, records),
                          "PagedGridFile: records cannot be separated "
                          "(too many duplicates for one page)");
            }
            b = split_bucket(b, records);
        }
        store_records(b, records);
    }

    std::vector<BucketId> query_buckets(const Rect<D>& q) const {
        std::vector<BucketId> out;
        CellBox<D> box;
        if (!query_cell_box(q, &box)) return out;
        std::vector<char> seen(buckets_.size(), 0);
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (!seen[b]) {
                seen[b] = 1;
                out.push_back(b);
            }
        });
        return out;
    }

    /// Exact range query; every touched bucket costs one buffer-pool fetch
    /// (hit or page read).
    std::vector<GridRecord<D>> query_records(const Rect<D>& q) {
        std::vector<GridRecord<D>> out;
        for (BucketId b : query_buckets(q)) {
            for (const auto& r : load_records(b)) {
                if (q.contains(r.point)) out.push_back(r);
            }
        }
        return out;
    }

    /// Erases the record with the given point and id; returns true when a
    /// record was removed. Buckets are not re-merged on underflow
    /// (matching GridFile's policy).
    bool erase(const Point<D>& p, std::uint64_t id) {
        BucketId b = dir_.at(locate_cell(p));
        auto records = load_records(b);
        auto it = std::find_if(records.begin(), records.end(),
                               [&](const GridRecord<D>& r) {
                                   return r.id == id && r.point == p;
                               });
        if (it == records.end()) return false;
        records.erase(it);
        store_records(b, records);
        --record_count_;
        return true;
    }

    /// Buckets a partial match query must read (same contract as
    /// GridFile<D>::query_buckets(PartialMatch)).
    std::vector<BucketId> query_buckets(const PartialMatch<D>& q) const {
        PGF_CHECK(q.valid(),
                  "partial match must leave at least one attribute free");
        CellBox<D> box;
        for (std::size_t i = 0; i < D; ++i) {
            if (q.key[i].has_value()) {
                std::uint32_t cell = scales_[i].locate(*q.key[i]);
                box.lo[i] = cell;
                box.hi[i] = cell + 1;
            } else {
                box.lo[i] = 0;
                box.hi[i] = dir_.shape()[i];
            }
        }
        std::vector<BucketId> out;
        std::vector<char> seen(buckets_.size(), 0);
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (!seen[b]) {
                seen[b] = 1;
                out.push_back(b);
            }
        });
        return out;
    }

    /// Records whose specified attributes match exactly.
    std::vector<GridRecord<D>> query_records(const PartialMatch<D>& q) {
        std::vector<GridRecord<D>> out;
        for (BucketId b : query_buckets(q)) {
            for (const auto& r : load_records(b)) {
                bool match = true;
                for (std::size_t i = 0; i < D && match; ++i) {
                    if (q.key[i].has_value() && r.point[i] != *q.key[i]) {
                        match = false;
                    }
                }
                if (match) out.push_back(r);
            }
        }
        return out;
    }

    /// Page id backing bucket `b` (for partitioned-storage experiments).
    std::uint64_t bucket_page(BucketId b) const { return buckets_[b].page; }

    GridStructure structure() const {
        GridStructure gs;
        gs.shape.assign(dir_.shape().begin(), dir_.shape().end());
        gs.domain_lo.assign(domain_.lo.x.begin(), domain_.lo.x.end());
        gs.domain_hi.assign(domain_.hi.x.begin(), domain_.hi.x.end());
        gs.buckets.reserve(buckets_.size());
        for (const BucketMeta& meta : buckets_) {
            BucketInfo info;
            info.cell_lo.assign(meta.cells.lo.begin(), meta.cells.lo.end());
            info.cell_hi.assign(meta.cells.hi.begin(), meta.cells.hi.end());
            info.region_lo.resize(D);
            info.region_hi.resize(D);
            for (std::size_t i = 0; i < D; ++i) {
                info.region_lo[i] = scales_[i].interval_lo(meta.cells.lo[i]);
                info.region_hi[i] =
                    scales_[i].interval_hi(meta.cells.hi[i] - 1);
            }
            info.record_count = meta.count;
            gs.buckets.push_back(std::move(info));
        }
        return gs;
    }

    void flush() { pool_.flush_all(); }

private:
    static constexpr std::size_t kRecordBytes = (D + 1) * 8;
    static constexpr std::size_t kCountBytes = 8;

    struct BucketMeta {
        CellBox<D> cells;
        std::uint64_t page = 0;
        std::size_t count = 0;  ///< mirrored from the page header
    };

    static std::uint64_t read_u64(const std::byte* p) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        }
        return v;
    }

    static void write_u64(std::byte* p, std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
        }
    }

    std::vector<GridRecord<D>> load_records(BucketId b) {
        auto page = pool_.fetch(buckets_[b].page);
        const std::byte* data = page.data().data();
        std::uint64_t count = read_u64(data);
        PGF_CHECK(count == buckets_[b].count,
                  "page header disagrees with bucket metadata");
        std::vector<GridRecord<D>> records(count);
        for (std::uint64_t k = 0; k < count; ++k) {
            const std::byte* rec = data + kCountBytes + k * kRecordBytes;
            for (std::size_t i = 0; i < D; ++i) {
                records[k].point[i] =
                    std::bit_cast<double>(read_u64(rec + i * 8));
            }
            records[k].id = read_u64(rec + D * 8);
        }
        return records;
    }

    void store_records(BucketId b, const std::vector<GridRecord<D>>& records) {
        PGF_CHECK(records.size() <= capacity_,
                  "store_records: bucket exceeds its page");
        auto page = pool_.fetch(buckets_[b].page);
        std::byte* data = page.data().data();
        write_u64(data, records.size());
        for (std::size_t k = 0; k < records.size(); ++k) {
            std::byte* rec = data + kCountBytes + k * kRecordBytes;
            for (std::size_t i = 0; i < D; ++i) {
                write_u64(rec + i * 8,
                          std::bit_cast<std::uint64_t>(records[k].point[i]));
            }
            write_u64(rec + D * 8, records[k].id);
        }
        page.mark_dirty();
        buckets_[b].count = records.size();
    }

    std::array<std::uint32_t, D> locate_cell(const Point<D>& p) const {
        std::array<std::uint32_t, D> cell;
        for (std::size_t i = 0; i < D; ++i) cell[i] = scales_[i].locate(p[i]);
        return cell;
    }

    std::uint32_t max_cell_extent(BucketId b) const {
        std::uint32_t m = 0;
        for (std::size_t i = 0; i < D; ++i) {
            m = std::max(m, buckets_[b].cells.extent(i));
        }
        return m;
    }

    Rect<D> bucket_region(BucketId b) const {
        Rect<D> r;
        for (std::size_t i = 0; i < D; ++i) {
            r.lo[i] = scales_[i].interval_lo(buckets_[b].cells.lo[i]);
            r.hi[i] = scales_[i].interval_hi(buckets_[b].cells.hi[i] - 1);
        }
        return r;
    }

    /// Refines the grid through bucket b's single cell; `records` are the
    /// bucket's (in-memory, overflowing) records for the median policy.
    bool refine_grid(BucketId b, const std::vector<GridRecord<D>>& records) {
        Rect<D> region = bucket_region(b);
        std::array<std::size_t, D> axes;
        for (std::size_t i = 0; i < D; ++i) axes[i] = i;
        std::sort(axes.begin(), axes.end(), [&](std::size_t a, std::size_t c) {
            return region.extent(a) / domain_.extent(a) >
                   region.extent(c) / domain_.extent(c);
        });
        for (std::size_t axis : axes) {
            double lo = region.lo[axis];
            double hi = region.hi[axis];
            if (hi - lo <= domain_.extent(axis) * 1e-12) continue;
            double x = 0.5 * (lo + hi);
            if (config_.split_policy == SplitPolicy::kMedian) {
                std::vector<double> xs;
                xs.reserve(records.size());
                for (const auto& r : records) xs.push_back(r.point[axis]);
                auto mid = xs.begin() +
                           static_cast<std::ptrdiff_t>(xs.size() / 2);
                std::nth_element(xs.begin(), mid, xs.end());
                if (*mid > lo && *mid < hi) x = *mid;
            }
            if (!(x > lo && x < hi)) continue;
            std::uint32_t interval = 0;
            if (!scales_[axis].insert_split(x, &interval)) continue;
            dir_.expand(axis, interval);
            for (BucketMeta& meta : buckets_) {
                if (meta.cells.lo[axis] > interval) {
                    ++meta.cells.lo[axis];
                    ++meta.cells.hi[axis];
                } else if (meta.cells.hi[axis] > interval) {
                    ++meta.cells.hi[axis];
                }
            }
            return true;
        }
        return false;
    }

    /// Splits bucket b whose (overflowing) records are passed in memory.
    /// On return `records` holds whichever half is still too large (or the
    /// final half to be stored by the caller); the other half has been
    /// written to its page. Returns the bucket that owns `records`.
    BucketId split_bucket(BucketId b, std::vector<GridRecord<D>>& records) {
        std::size_t axis = 0;
        std::uint32_t widest = 0;
        for (std::size_t i = 0; i < D; ++i) {
            if (buckets_[b].cells.extent(i) > widest) {
                widest = buckets_[b].cells.extent(i);
                axis = i;
            }
        }
        PGF_CHECK(widest >= 2, "split requires a multi-cell bucket");
        const std::uint32_t mid =
            buckets_[b].cells.lo[axis] + buckets_[b].cells.extent(axis) / 2;

        auto new_id = static_cast<BucketId>(buckets_.size());
        BucketMeta upper;
        upper.cells = buckets_[b].cells;
        upper.cells.lo[axis] = mid;
        upper.page = pool_.allocate().page_id();
        buckets_[b].cells.hi[axis] = mid;
        buckets_.push_back(upper);
        for_each_cell(buckets_[new_id].cells,
                      [&](const std::array<std::uint32_t, D>& cell) {
                          dir_.set(cell, new_id);
                      });

        std::vector<GridRecord<D>> lower_records, upper_records;
        for (const auto& r : records) {
            if (scales_[axis].locate(r.point[axis]) < mid) {
                lower_records.push_back(r);
            } else {
                upper_records.push_back(r);
            }
        }
        // Keep the larger half in memory; persist the other one.
        if (upper_records.size() > lower_records.size()) {
            store_records(b, lower_records);
            records = std::move(upper_records);
            return new_id;
        }
        store_records(new_id, upper_records);
        records = std::move(lower_records);
        return b;
    }

    bool query_cell_box(const Rect<D>& q, CellBox<D>* box) const {
        for (std::size_t i = 0; i < D; ++i) {
            if (q.hi[i] <= q.lo[i]) return false;
            if (q.hi[i] <= domain_.lo[i] || q.lo[i] >= domain_.hi[i]) {
                return false;
            }
            std::uint32_t first =
                scales_[i].locate(std::max(q.lo[i], domain_.lo[i]));
            std::uint32_t last =
                scales_[i].locate(std::min(q.hi[i], domain_.hi[i]));
            if (scales_[i].interval_lo(last) >= q.hi[i] && last > 0) --last;
            box->lo[i] = first;
            box->hi[i] = last + 1;
        }
        return true;
    }

    Rect<D> domain_;
    Config config_;
    std::size_t capacity_ = 0;
    PageFile file_;
    mutable BufferPool pool_;
    std::vector<LinearScale> scales_;
    GridDirectory<D> dir_;
    std::vector<BucketMeta> buckets_;
    std::size_t record_count_ = 0;
};

}  // namespace pgf
