// Disk-resident grid file: GridFileCore over a PagedBucketStore — bucket
// contents live in pages of a PageFile, read and written through the LRU
// BufferPool; only the access structure (scales, directory, bucket
// metadata) stays in memory. This is the classic deployment the paper
// assumes ("the scale and directory of the grid file are stored only on
// the local disk of the coordinator", Sec. 3.5, with data buckets as disk
// blocks).
//
// One bucket == one page; the bucket capacity follows from the page size
// and the fixed record encoding (D coordinates + id, 8 bytes each). All
// split/refinement logic is the shared engine's (grid_file_core.hpp) —
// given the same insertion sequence, this file and an in-memory GridFile
// with the same capacity produce byte-identical scales, directory, and
// bucket numbering (asserted by tests/storage/test_backend_equivalence).
//
// The in-memory structure is rebuilt on open only via the snapshot path
// (save_grid_file/load_grid_file); this engine is the *working* store whose
// buffer-pool statistics expose real I/O counts (see bench/ext_io_validation
// for the experiment that validates the paper's response-time metric
// against actual page misses).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/grid_file_core.hpp"
#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/paged_bucket_store.hpp"
#include "pgf/storage/recovery.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class PagedGridFile : public GridFileCore<D, PagedBucketStore<D>> {
    using Core = GridFileCore<D, PagedBucketStore<D>>;

public:
    using BucketId = std::uint32_t;
    using Store = PagedBucketStore<D>;

    struct Config {
        std::size_t page_size = 4096;
        std::size_t pool_pages = 128;
        SplitPolicy split_policy = SplitPolicy::kMidpoint;
        /// Builder-pool replacement policy (default: historical LRU).
        BufferPoolConfig pool_config{};
        /// Write-ahead log path; empty (the default) disables durability —
        /// the historical behavior, with on-disk output byte-identical to
        /// the same build without this field.
        std::string wal_path;
        /// Crash-injection hook for the durability tests (see
        /// pgf/storage/fault_injection.hpp); ignored without a wal_path.
        FaultInjector* fault_injector = nullptr;
    };

    /// Creates (truncating) the backing file at `path`.
    PagedGridFile(const std::string& path, const Rect<D>& domain,
                  Config config = {})
        : Core(domain, checked_capacity(config.page_size),
               config.split_policy, path, config.page_size,
               config.pool_pages, config.pool_config,
               wal_setup(domain, config)),
          config_(std::move(config)) {
        if (this->store_.wal() != nullptr) {
            // Baseline commit: the empty grid (genesis + root bucket) is a
            // consistent recovery point, and flushing it now means a crash
            // at *any* later write finds a committed prefix in the log.
            this->store_.note_op_end();
            this->store_.wal()->flush();
        }
    }

    /// Rebuilds a grid file from the crash state at `path` + the log at
    /// `config.wal_path` (required): replays the committed log prefix over
    /// the data file (see pgf/storage/recovery.hpp), then reconstructs the
    /// access structure. The log stays open — the recovered file accepts
    /// new operations, journaled onto the same log.
    struct RecoverTag {};
    PagedGridFile(RecoverTag, const std::string& path, Config config)
        : PagedGridFile(RecoverTag{},
                        replay_wal<D>(path, config.wal_path),
                        config) {}  // copy, not move: argument evaluation
                                    // order is unspecified, and the replay
                                    // expression reads config.wal_path

    const Config& config() const { return config_; }

    /// What recovery replayed (all zeros for normally constructed files).
    const ReplayStats& recovery_stats() const { return recovery_stats_; }

    /// Records per bucket page — the capacity an in-memory GridFile must
    /// be configured with for cell-for-cell comparison with this file.
    std::size_t capacity() const { return this->bucket_capacity_; }

    /// Page id backing bucket `b` (for partitioned-storage experiments and
    /// the disk-backed parallel server).
    std::uint64_t bucket_page(BucketId b) const {
        return this->store_.page(b);
    }

    const BufferPool& pool() const { return this->store_.pool(); }
    BufferPool& pool() { return this->store_.pool(); }

    /// Path of the backing page file.
    const std::string& path() const { return this->store_.path(); }

    /// Writes back every dirty page and syncs the file. Call before other
    /// readers (e.g. the disk-backed server's per-node pools) open the
    /// backing file.
    void flush() { this->store_.flush(); }

    /// Copies the raw payload bytes of bucket `b`'s page into `out`
    /// (audit hook).
    void read_bucket_page(BucketId b, std::vector<std::byte>& out) const {
        this->store_.read_bucket_page(b, out);
    }

    /// Durability-header probe of bucket `b`'s page straight from disk,
    /// bypassing the pool (audit hook for `paged.page.checksum` /
    /// `paged.page.lsn`).
    typename Store::PageProbe probe_bucket_page(BucketId b) const {
        return this->store_.probe_page(this->store_.page(b));
    }

    /// The write-ahead log (null when durability is off).
    WriteAheadLog* wal() const { return this->store_.wal(); }

private:
    /// Validates the page size before the store (and its backing file) is
    /// constructed; returns the resulting bucket capacity.
    static std::size_t checked_capacity(std::size_t page_size) {
        const std::size_t capacity = Store::capacity_for(page_size);
        PGF_CHECK(capacity >= 2,
                  "page size too small for at least two records");
        return capacity;
    }

    static WalSetup<D> wal_setup(const Rect<D>& domain,
                                 const Config& config) {
        WalSetup<D> setup;
        setup.path = config.wal_path;
        setup.injector = config.fault_injector;
        setup.domain = domain;
        setup.split_policy =
            static_cast<std::uint8_t>(config.split_policy);
        return setup;
    }

    /// Recovery delegate: the replay already happened (in the delegating
    /// constructor's argument expression); adopt its results.
    PagedGridFile(RecoverTag, RecoveredGrid<D>&& rec, Config config)
        : Core(typename Core::RestoreTag{}, rec.domain, rec.bucket_capacity,
               rec.split_policy, rec.refines, typename Store::OpenTag{},
               std::move(rec.file), std::move(rec.metas), std::move(rec.wal),
               config.pool_pages, config.pool_config),
          config_(std::move(config)),
          recovery_stats_(rec.stats) {
        config_.page_size = rec.page_size;
        config_.split_policy = rec.split_policy;
    }

    Config config_;
    ReplayStats recovery_stats_{};
};

}  // namespace pgf
