// Disk-resident grid file: GridFileCore over a PagedBucketStore — bucket
// contents live in pages of a PageFile, read and written through the LRU
// BufferPool; only the access structure (scales, directory, bucket
// metadata) stays in memory. This is the classic deployment the paper
// assumes ("the scale and directory of the grid file are stored only on
// the local disk of the coordinator", Sec. 3.5, with data buckets as disk
// blocks).
//
// One bucket == one page; the bucket capacity follows from the page size
// and the fixed record encoding (D coordinates + id, 8 bytes each). All
// split/refinement logic is the shared engine's (grid_file_core.hpp) —
// given the same insertion sequence, this file and an in-memory GridFile
// with the same capacity produce byte-identical scales, directory, and
// bucket numbering (asserted by tests/storage/test_backend_equivalence).
//
// The in-memory structure is rebuilt on open only via the snapshot path
// (save_grid_file/load_grid_file); this engine is the *working* store whose
// buffer-pool statistics expose real I/O counts (see bench/ext_io_validation
// for the experiment that validates the paper's response-time metric
// against actual page misses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/grid_file_core.hpp"
#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/paged_bucket_store.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class PagedGridFile : public GridFileCore<D, PagedBucketStore<D>> {
    using Core = GridFileCore<D, PagedBucketStore<D>>;

public:
    using BucketId = std::uint32_t;
    using Store = PagedBucketStore<D>;

    struct Config {
        std::size_t page_size = 4096;
        std::size_t pool_pages = 128;
        SplitPolicy split_policy = SplitPolicy::kMidpoint;
        /// Builder-pool replacement policy (default: historical LRU).
        BufferPoolConfig pool_config{};
    };

    /// Creates (truncating) the backing file at `path`.
    PagedGridFile(const std::string& path, const Rect<D>& domain,
                  Config config = {})
        : Core(domain, checked_capacity(config.page_size),
               config.split_policy, path, config.page_size,
               config.pool_pages, config.pool_config),
          config_(config) {}

    const Config& config() const { return config_; }

    /// Records per bucket page — the capacity an in-memory GridFile must
    /// be configured with for cell-for-cell comparison with this file.
    std::size_t capacity() const { return this->bucket_capacity_; }

    /// Page id backing bucket `b` (for partitioned-storage experiments and
    /// the disk-backed parallel server).
    std::uint64_t bucket_page(BucketId b) const {
        return this->store_.page(b);
    }

    const BufferPool& pool() const { return this->store_.pool(); }
    BufferPool& pool() { return this->store_.pool(); }

    /// Path of the backing page file.
    const std::string& path() const { return this->store_.path(); }

    /// Writes back every dirty page and syncs the file. Call before other
    /// readers (e.g. the disk-backed server's per-node pools) open the
    /// backing file.
    void flush() { this->store_.flush(); }

    /// Copies the raw bytes of bucket `b`'s page into `out` (audit hook).
    void read_bucket_page(BucketId b, std::vector<std::byte>& out) const {
        this->store_.read_bucket_page(b, out);
    }

private:
    /// Validates the page size before the store (and its backing file) is
    /// constructed; returns the resulting bucket capacity.
    static std::size_t checked_capacity(std::size_t page_size) {
        const std::size_t capacity = Store::capacity_for(page_size);
        PGF_CHECK(capacity >= 2,
                  "page size too small for at least two records");
        return capacity;
    }

    Config config_;
};

}  // namespace pgf
