// Pluggable replacement policies for the BufferPool.
//
// The pool owns the frames, the page table, the pin counts and the latch;
// a Replacer owns only the *recency metadata* and the victim choice. Five
// policies (the classic caching-literature set) ship behind one interface:
//
//   - LRU    — least-recently-used, kept as an intrusive doubly-linked
//              list in access order. Victim = first evictable frame from
//              the cold end: O(1) bookkeeping per access, O(#pinned
//              prefix + 1) per eviction instead of the historical
//              O(frames) stamp scan. The list order coincides exactly
//              with increasing access stamps, so the eviction sequence
//              is identical to the pool's historical built-in LRU
//              (golden-tested).
//   - LRU-K  — evict the page whose K-th-most-recent access is oldest
//              (O'Neil et al.). Pages with fewer than K recorded accesses
//              have infinite backward-K distance and are evicted first,
//              LRU among themselves — one touch is not evidence of reuse,
//              which is what makes LRU-K scan-resistant. Victims come off
//              an ordered index (std::set keyed by backward-K distance):
//              O(log frames) per access/eviction.
//   - CLOCK  — second-chance ring: a reference bit per frame, a sweeping
//              hand that clears set bits and evicts the first clear one.
//   - 2Q     — Johnson & Shasha's two queues: first-touch pages enter a
//              small FIFO (A1in); only pages re-fetched after leaving it
//              (remembered in the A1out ghost list of page ids) are
//              promoted to the protected LRU main queue (Am). A sequential
//              scan drains through A1in without ever displacing Am.
//   - LFU    — least-frequently-used: a per-frame reference count (reset
//              on eviction — "in-cache LFU"), LRU among ties so stale
//              once-hot pages still age out of a small pool. Victims come
//              off an ordered index keyed (count, stamp): O(log frames).
//
// Locking contract: a Replacer has no latch of its own — its state is an
// extension of the pool's frame metadata and is guarded by the pool latch.
// Every method takes the owning pool's latch as a parameter and requires
// it held (machine-checked by Clang's capability analysis; the pool's
// `policy_` member is additionally PGF_GUARDED_BY(latch_), so even the
// pointer cannot be touched latch-free). scripts/check_locks.sh asserts
// these annotations stay present.
//
// Victim protocol: the pool passes an EvictableView — a lazy eligibility
// probe over the frames (true = in use, pin count zero, eligible) instead
// of a materialized bool vector, so building the candidate set costs
// nothing and ordered policies only probe the frames they actually
// inspect. victim() returns an index with view[i] == true, or view.size()
// when it declines every candidate (the pool treats that as exhaustion).
// Prefetched-but-never-pinned pages are *not* the policy's concern: the
// pool evicts those first, FIFO, before consulting the policy (see
// buffer_pool.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pgf/util/annotations.hpp"

namespace pgf {

enum class ReplacementPolicy : std::uint8_t {
    kLru,
    kLruK,
    kClock,
    kTwoQ,
    kLfu,
};

/// Short stable tag ("lru", "lru-k", "clock", "2q", "lfu") — used by
/// bench CLI flags, JSON artifacts and test names.
std::string to_string(ReplacementPolicy policy);

/// Inverse of to_string (also accepts "lruk"/"lru2" and "twoq" aliases);
/// nullopt on unknown text.
std::optional<ReplacementPolicy> parse_policy(std::string_view text);

/// Construction-time knobs of a BufferPool beyond its frame count.
/// Default-constructed == the historical pool: plain LRU, no read-ahead
/// tracking surprises — eviction sequence byte-identical to the pre-policy
/// implementation.
struct BufferPoolConfig {
    ReplacementPolicy policy = ReplacementPolicy::kLru;
    /// History depth for kLruK (ignored otherwise). Must be >= 1; K = 1
    /// degenerates to LRU.
    std::size_t lru_k = 2;
};

/// Lazy victim-eligibility view the pool hands to victim(): size() frames,
/// view[i] true when frame i may be evicted right now. A context + plain
/// function pointer so the pool's pin-state probe needs no allocation and
/// no virtual hop; the vector adapter exists for the policy unit tests.
class EvictableView {
public:
    using Probe = bool (*)(const void* ctx, std::size_t frame);

    EvictableView(const void* ctx, Probe probe, std::size_t size)
        : ctx_(ctx), probe_(probe), size_(size) {}

    /// Adapter over an explicit flag vector (test scripts).
    explicit EvictableView(const std::vector<bool>& flags)
        : ctx_(&flags), probe_(&vector_probe), size_(flags.size()) {}

    bool operator[](std::size_t i) const { return probe_(ctx_, i); }
    std::size_t size() const { return size_; }

private:
    static bool vector_probe(const void* ctx, std::size_t i) {
        return (*static_cast<const std::vector<bool>*>(ctx))[i];
    }

    const void* ctx_;
    Probe probe_;
    std::size_t size_;
};

/// Replacement-policy interface (see file comment for the contract).
/// Frames are dense indices [0, capacity); pages are PageFile ids.
class Replacer {
public:
    virtual ~Replacer() = default;

    /// Page `page` was installed in `frame` (miss fill, allocation, or
    /// prefetch read-ahead). Counts as the page's first access.
    virtual void on_insert(std::size_t frame, std::uint64_t page,
                           Mutex& latch) PGF_REQUIRES(latch) = 0;

    /// fetch() hit `frame` (a demand access to a resident page).
    virtual void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) = 0;

    /// Picks the victim among frames with view[i] == true; returns
    /// view.size() when no frame is eligible.
    virtual std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) = 0;

    /// `frame`'s page left the pool (evicted); `page` is the id it held.
    virtual void on_evict(std::size_t frame, std::uint64_t page,
                          Mutex& latch) PGF_REQUIRES(latch) = 0;
};

/// LRU as an intrusive doubly-linked list in access order (head = least
/// recent). Every access unlinks and re-appends at the tail — O(1) — and
/// victim() walks from the head past pinned frames only. Because each
/// access gets a unique logical stamp, list order == increasing stamp
/// order, and the victim choice is exactly the historical "first minimal
/// stamp" linear scan's (golden-tested).
class LruReplacer final : public Replacer {
public:
    explicit LruReplacer(std::size_t capacity);

    void on_insert(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) override;
    std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_evict(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;

private:
    void unlink(std::size_t frame);
    void push_back(std::size_t frame);

    static constexpr std::size_t kNil = static_cast<std::size_t>(-1);
    std::vector<std::size_t> prev_;
    std::vector<std::size_t> next_;
    std::vector<bool> linked_;
    std::size_t head_ = kNil;  // least recently used
    std::size_t tail_ = kNil;  // most recently used
};

/// LRU-K (default K = 2): per frame, the last K access stamps, and an
/// ordered index keyed by backward-K distance. Victim = the index's first
/// eligible entry: frames with fewer than K accesses sort before every
/// full-history frame (infinite distance), LRU among themselves by most
/// recent access; full-history frames compete on their K-th-most-recent
/// stamp. Keys are unique (stamps are), so the index order equals the
/// historical linear argmin scan's choice exactly.
class LruKReplacer final : public Replacer {
public:
    LruKReplacer(std::size_t capacity, std::size_t k);

    void on_insert(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) override;
    std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_evict(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;

private:
    /// Ring of the last K stamps of one frame. count < K means the frame
    /// has not yet shown K-fold reuse.
    struct History {
        std::vector<std::uint64_t> stamps;  // size K, ring
        std::size_t next = 0;               // ring write position
        std::size_t count = 0;              // accesses recorded (capped at K)
    };

    /// (0 = infinite backward-K distance first, then the distance stamp).
    using Key = std::pair<std::uint64_t, std::uint64_t>;

    Key key_of(std::size_t frame) const;
    void record(std::size_t frame);
    void reindex(std::size_t frame);

    const std::size_t k_;
    std::vector<History> history_;
    std::vector<bool> resident_;
    std::set<std::pair<Key, std::size_t>> order_;  // (key, frame), ascending
    std::uint64_t clock_ = 0;
};

/// CLOCK (second chance): one reference bit per frame and a sweeping
/// hand. The hand skips ineligible frames, clears set bits, and evicts
/// the first eligible frame with a clear bit — at most two sweeps.
class ClockReplacer final : public Replacer {
public:
    explicit ClockReplacer(std::size_t capacity)
        : referenced_(capacity, false) {}

    void on_insert(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) override;
    std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_evict(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;

private:
    std::vector<bool> referenced_;
    std::size_t hand_ = 0;
};

/// 2Q (full version): resident frames live in A1in (FIFO, first touch) or
/// Am (LRU, proven reuse); the A1out ghost list remembers page ids
/// recently evicted from A1in. A fetch of a ghost page re-enters at Am —
/// reuse across a window wider than A1in is the promotion signal. Victim:
/// A1in front while A1in exceeds its target share of the pool (capacity/4,
/// the paper's tuning), else Am's LRU frame. (Victim selection stays a
/// linear scan here — 2Q is not on the large-pool build path; see the
/// LRU/LRU-K/LFU indices for the O(log) treatment.)
class TwoQReplacer final : public Replacer {
public:
    explicit TwoQReplacer(std::size_t capacity);

    void on_insert(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) override;
    std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_evict(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;

private:
    enum class Queue : std::uint8_t { kNone, kA1, kAm };

    const std::size_t a1_target_;    ///< max A1in frames before FIFO evict
    const std::size_t ghost_limit_;  ///< max remembered evicted page ids
    std::vector<Queue> queue_;       ///< per-frame membership
    std::vector<std::uint64_t> stamp_;  ///< A1: insert stamp; Am: access
    std::size_t resident_a1_ = 0;       ///< live A1in frame count
    std::uint64_t clock_ = 0;
    std::deque<std::uint64_t> ghost_fifo_;       ///< A1out, oldest first
    std::unordered_set<std::uint64_t> ghost_;    ///< A1out membership
};

/// LFU with LRU tie-break: per frame, a reference count bumped on insert
/// and every access, an LRU stamp, and an ordered index keyed (count,
/// stamp). Victim = the index's first eligible entry — smallest (count,
/// stamp) lexicographically, O(log frames) bookkeeping. Counts are
/// per-residency (reset when the page leaves the pool), so a page must
/// re-earn its frequency after eviction — the classic guard against
/// ancient popularity pinning dead pages forever.
class LfuReplacer final : public Replacer {
public:
    explicit LfuReplacer(std::size_t capacity);

    void on_insert(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_access(std::size_t frame, Mutex& latch)
        PGF_REQUIRES(latch) override;
    std::size_t victim(const EvictableView& view, Mutex& latch)
        PGF_REQUIRES(latch) override;
    void on_evict(std::size_t frame, std::uint64_t page, Mutex& latch)
        PGF_REQUIRES(latch) override;

private:
    using Key = std::pair<std::uint64_t, std::uint64_t>;  // (count, stamp)

    void reindex(std::size_t frame, Key key);

    std::vector<std::uint64_t> count_;
    std::vector<std::uint64_t> stamp_;
    std::vector<bool> resident_;
    std::set<std::pair<Key, std::size_t>> order_;  // (key, frame), ascending
    std::uint64_t clock_ = 0;
};

/// Builds the Replacer selected by `config` for a pool of `capacity`
/// frames. Throws CheckError on invalid tuning (lru_k == 0).
std::unique_ptr<Replacer> make_replacer(const BufferPoolConfig& config,
                                        std::size_t capacity);

}  // namespace pgf
