// Shared-nothing cluster configuration (paper Sec. 3.5).
//
// Each node owns one local disk (the paper's simplification) and
// communicates by message passing. Node 0 doubles as the coordinator,
// holding the grid-file scales and directory; requests it sends to itself
// cost no network time.
#pragma once

#include <cstdint>

#include "pgf/parallel/disk_model.hpp"
#include "pgf/parallel/network.hpp"

namespace pgf {

struct ClusterConfig {
    std::uint32_t nodes = 4;
    /// Local disks per node. The paper's machine had seven disks per SP-2
    /// processor; the declustering then targets nodes * disks_per_node
    /// disks, and a node's disks serve their block lists in parallel.
    std::uint32_t disks_per_node = 1;
    DiskParams disk{};
    NetworkParams network{};
    /// Size of one qualified record shipped back to the coordinator.
    std::size_t record_bytes = 52;
    /// Size of one block request in a coordinator -> worker message.
    std::size_t request_bytes = 16;
    /// Coordinator CPU cost to translate a query against the directory,
    /// plus per-bucket request-building cost.
    double query_translate_s = 200e-6;
    double per_request_s = 2e-6;
};

}  // namespace pgf
