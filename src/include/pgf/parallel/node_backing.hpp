// A worker node's private view of the shared page image: its own file
// handle plus its own latched buffer pool. Shared-nothing nodes cache
// independently, so every consumer of a paged grid file's disk image —
// the DES server's disk-backed mode (pgf_server.hpp) and the real
// concurrent QueryEngine (query_engine.hpp) — opens one NodeBacking per
// cluster node over the same backing path.
//
// The backing file must be flushed (PagedGridFile::flush) before any
// NodeBacking opens it, so the node pools read current page images.
#pragma once

#include <string>

#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/page_file.hpp"

namespace pgf {

struct NodeBacking {
    PageFile file;
    BufferPool pool;
    NodeBacking(const std::string& path, std::size_t pool_pages,
                BufferPoolConfig pool_config = {})
        : file(PageFile::open(path)),
          pool(file, pool_pages, pool_config) {}
};

}  // namespace pgf
