// Real concurrent query serving over a shared PagedGridFile.
//
// Where ParallelGridFileServer (pgf_server.hpp) *simulates* the paper's
// SP-2 cluster through a discrete-event clock, QueryEngine serves queries
// with actual threads against the actual paged file:
//
//   front end --submit()--> [bounded MPMC admission queue]
//                               |
//                          dispatcher (the paper's coordinator, node 0):
//                          directory lookup + per-node block lists
//                               |
//              [per-node task queues] x N
//                 |                |
//            node-0 team  ...  node-(N-1) team: workers_per_node threads,
//            each reading ONLY buckets assigned to its node's disks,
//            through that node's own latched BufferPool (NodeBacking)
//                 |                |
//              completion: the last node team to finish a query stamps
//              its latency and wakes the front end.
//
// Determinism contract: a query's gathered result is its per-node partial
// results concatenated in node order, each partial filtered in block-list
// order — a function of (structure, assignment, query) only, never of
// thread interleaving. The per-query record multisets equal the serial
// PagedGridFile query path, and the per-node block lists equal the DES
// server's (both asserted by tests/parallel/test_query_engine.cpp).
//
// Concurrency invariants:
//   - the grid file is read-only while the engine lives: the dispatcher
//     walks scales/directory (immutable after build) and workers read
//     pages through their node's own pool, never the file's builder pool;
//   - construction requires gf.flush() first so node pools see current
//     page images (checked shape as DiskBackedConfig);
//   - each worker pins at most one page at a time, so a node pool with
//     pool_pages >= workers_per_node can never throw "pool exhausted"
//     (checked in the constructor);
//   - QueryState hand-off is synchronized by the queues' mutexes and the
//     per-query outstanding counter (acq_rel), so slot writes happen-
//     before the completing team reads them, which happens-before the
//     front end observes completion under stats_mutex_.
//
// Lock discipline is machine-checked (pgf/util/annotations.hpp): every
// guarded member is annotated, and scripts/check_locks.sh asserts the
// queue and stat annotations stay present.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/parallel/node_backing.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/util/annotations.hpp"
#include "pgf/util/bounded_queue.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

/// Sizing of the serving cluster. The assignment targets
/// nodes * disks_per_node disks; disk d lives on node d / disks_per_node
/// (the DES server's convention).
struct ServingConfig {
    std::uint32_t nodes = 4;
    std::uint32_t disks_per_node = 1;
    /// Threads per node team. Parallelism comes from concurrent queries:
    /// one team thread serves one query's blocks on that node.
    unsigned workers_per_node = 1;
    /// Buffer-pool frames per node (must be >= workers_per_node; each
    /// worker pins at most one page at a time).
    std::size_t pool_pages = 1024;
    /// Closed-loop admission window: submit() blocks while this many
    /// queries are in flight — the bench's concurrency knob.
    std::size_t concurrency = 16;
    /// Replacement policy of every node pool (default: historical LRU).
    BufferPoolConfig pool_config{};
    /// Declustering-aware read-ahead: the dispatcher stages each node's
    /// bucket pages (in assignment order) into that node's pool before
    /// pushing the node task, so the team scans warm frames.
    bool prefetch = false;
};

/// Aggregate outcome of a served batch (see QueryEngine::run).
struct ServingReport {
    std::size_t queries = 0;
    std::uint64_t total_blocks = 0;      ///< buckets fetched across queries
    std::uint64_t records_returned = 0;
    double wall_s = 0.0;
    double qps = 0.0;                    ///< queries / wall_s
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    /// Per-node pool counters accumulated over the batch (hits/misses
    /// expose the caching behavior the declustering induces per node).
    std::vector<BufferPool::Stats> node_pools;
};

/// Fills the latency aggregates of a ServingReport from per-query
/// latencies (exact order-statistic quantiles); leaves node_pools alone.
void summarize_serving(std::vector<double> latencies_ms, double wall_s,
                       ServingReport& report);

/// Splits a query's bucket list into per-node block lists, exactly as the
/// DES server partitions block requests: buckets are binned per *disk* in
/// list order, and a node's blocks are its disks' bins concatenated in
/// disk order. QueryEngine executes these lists; the DES cross-check test
/// asserts the equality.
std::vector<std::vector<std::uint32_t>> partition_node_blocks(
    const std::vector<std::uint32_t>& buckets, const Assignment& assignment,
    std::uint32_t nodes, std::uint32_t disks_per_node);

template <std::size_t D>
class QueryEngine {
public:
    /// Range or partial-match — the two query classes of the paper.
    using Query = std::variant<Rect<D>, PartialMatch<D>>;
    using Records = std::vector<GridRecord<D>>;
    using Store = typename PagedGridFile<D>::Store;

    /// Everything a batch run hands back: per-query gathered records (in
    /// the deterministic node-major order), per-query latencies, and the
    /// aggregate report.
    struct BatchOutput {
        std::vector<Records> results;
        std::vector<double> latencies_ms;
        ServingReport report;
    };

    /// `assignment` maps every bucket of `gf` to a disk in
    /// [0, nodes * disks_per_node). `gf` must be flushed and stay
    /// unmodified for the engine's lifetime. Threads start immediately.
    QueryEngine(const PagedGridFile<D>& gf, Assignment assignment,
                ServingConfig config)
        : gf_(gf),
          assignment_(std::move(assignment)),
          config_(config),
          admission_(std::max<std::size_t>(config.concurrency, 1)) {
        PGF_CHECK(config_.nodes >= 1, "serving needs at least one node");
        PGF_CHECK(config_.disks_per_node >= 1,
                  "each node needs at least one disk");
        PGF_CHECK(config_.workers_per_node >= 1,
                  "each node team needs at least one worker");
        PGF_CHECK(config_.concurrency >= 1,
                  "admission window needs at least one slot");
        PGF_CHECK(config_.pool_pages >= config_.workers_per_node,
                  "node pool must hold one frame per team worker");
        const std::uint32_t total_disks =
            config_.nodes * config_.disks_per_node;
        PGF_CHECK(assignment_.num_disks == total_disks,
                  "assignment must target exactly the cluster's disks");
        PGF_CHECK(assignment_.disk_of.size() == gf_.bucket_count(),
                  "assignment must cover every bucket");

        backing_.reserve(config_.nodes);
        node_queues_.reserve(config_.nodes);
        for (std::uint32_t n = 0; n < config_.nodes; ++n) {
            backing_.push_back(std::make_unique<NodeBacking>(
                gf_.path(), config_.pool_pages, config_.pool_config));
            // A query occupies at most one slot per node queue, so the
            // admission window bounds every queue's depth: the dispatcher
            // can never deadlock pushing node tasks.
            node_queues_.push_back(
                std::make_unique<BoundedMpmcQueue<QueryState*>>(
                    std::max<std::size_t>(config_.concurrency, 1)));
        }
        dispatcher_ = std::thread([this] { dispatch_loop(); });
        workers_.reserve(static_cast<std::size_t>(config_.nodes) *
                         config_.workers_per_node);
        for (std::uint32_t n = 0; n < config_.nodes; ++n) {
            for (unsigned w = 0; w < config_.workers_per_node; ++w) {
                workers_.emplace_back([this, n] { worker_loop(n); });
            }
        }
    }

    QueryEngine(const QueryEngine&) = delete;
    QueryEngine& operator=(const QueryEngine&) = delete;

    /// Close-then-drain shutdown: in-flight queries complete, then the
    /// teams exit. Results not yet collected are discarded with the engine.
    ~QueryEngine() {
        admission_.close();
        if (dispatcher_.joinable()) dispatcher_.join();
        for (auto& q : node_queues_) q->close();
        for (auto& w : workers_) w.join();
    }

    const ServingConfig& config() const { return config_; }

    /// Admits one query; blocks while the closed-loop window is full.
    /// Returns the query's ticket (index into the current batch).
    std::size_t submit(Query q) PGF_EXCLUDES(stats_mutex_) {
        auto state = std::make_unique<QueryState>();
        QueryState* qs = state.get();
        qs->query = std::move(q);
        std::size_t ticket = 0;
        {
            MutexLock lock(stats_mutex_);
            while (submitted_ - completed_ >= config_.concurrency) {
                lock.wait(completion_cv_);
            }
            ticket = submitted_++;
            qs->ticket = ticket;
            states_.push_back(std::move(state));
            latencies_ms_.push_back(0.0);
        }
        qs->admit = Clock::now();
        PGF_CHECK(admission_.push(qs), "submit on a shut-down engine");
        return ticket;
    }

    std::size_t submit(const Rect<D>& q) PGF_EXCLUDES(stats_mutex_) {
        return submit(Query(q));
    }
    std::size_t submit(const PartialMatch<D>& q) PGF_EXCLUDES(stats_mutex_) {
        return submit(Query(q));
    }

    /// Blocks until every submitted query has completed.
    void drain() PGF_EXCLUDES(stats_mutex_) {
        MutexLock lock(stats_mutex_);
        while (completed_ < submitted_) {
            lock.wait(completion_cv_);
        }
    }

    /// Gathered records of completed query `ticket`, node-major (node 0's
    /// matches first, each node's in block-list order) — deterministic for
    /// a fixed (structure, assignment, query) regardless of thread count.
    /// Call only after drain().
    Records result(std::size_t ticket) const PGF_EXCLUDES(stats_mutex_) {
        const QueryState* qs = nullptr;
        {
            MutexLock lock(stats_mutex_);
            PGF_CHECK(ticket < states_.size(), "unknown ticket");
            PGF_CHECK(completed_ == submitted_,
                      "result() requires a drained engine");
            qs = states_[ticket].get();
        }
        Records out;
        std::size_t total = 0;
        for (const Records& part : qs->node_results) total += part.size();
        out.reserve(total);
        for (const Records& part : qs->node_results) {
            out.insert(out.end(), part.begin(), part.end());
        }
        return out;
    }

    /// Serves a whole batch closed-loop (window = config.concurrency) and
    /// gathers results, latencies and the aggregate report. Resets the
    /// batch state first; node pools stay warm across run() calls.
    BatchOutput run(const std::vector<Query>& queries)
        PGF_EXCLUDES(stats_mutex_) {
        reset_batch();
        BatchOutput out;
        const auto start = Clock::now();
        for (const Query& q : queries) submit(q);
        drain();
        const double wall_s =
            std::chrono::duration<double>(Clock::now() - start).count();

        out.results.reserve(queries.size());
        for (std::size_t t = 0; t < queries.size(); ++t) {
            out.results.push_back(result(t));
        }
        {
            MutexLock lock(stats_mutex_);
            out.latencies_ms = latencies_ms_;
            out.report.queries = completed_;
            out.report.total_blocks = total_blocks_;
            out.report.records_returned = records_returned_;
        }
        summarize_serving(out.latencies_ms, wall_s, out.report);
        out.report.node_pools.reserve(backing_.size());
        for (auto& nb : backing_) {
            out.report.node_pools.push_back(nb->pool.reset());
        }
        return out;
    }

    /// Reopens every node's pool empty (cold-start measurements).
    /// Call only while no queries are in flight.
    void drop_caches() PGF_EXCLUDES(stats_mutex_) {
        {
            MutexLock lock(stats_mutex_);
            PGF_CHECK(completed_ == submitted_,
                      "drop_caches with queries in flight");
        }
        for (auto& nb : backing_) {
            nb = std::make_unique<NodeBacking>(
                gf_.path(), config_.pool_pages, config_.pool_config);
        }
    }

private:
    using Clock = std::chrono::steady_clock;

    /// Per-query in-flight state. Written by the dispatcher (block lists),
    /// then by node teams (each exclusively its own slot); the outstanding
    /// counter's acq_rel ordering publishes the slots to the completing
    /// team and, through stats_mutex_, to the front end.
    struct QueryState {
        std::size_t ticket = 0;
        Query query;
        Clock::time_point admit{};
        std::size_t blocks = 0;
        std::vector<std::vector<std::uint32_t>> node_blocks;
        std::vector<Records> node_results;
        std::atomic<std::uint32_t> outstanding{0};
    };

    /// Coordinator role (the paper's node 0): pops admitted queries,
    /// translates them against the in-memory scales/directory, partitions
    /// the block list per node and fans tasks out to the team queues.
    void dispatch_loop() {
        QueryScratch scratch;
        std::vector<std::uint32_t> buckets;
        std::vector<std::uint64_t> pages;  // prefetch staging list
        QueryState* qs = nullptr;
        while (admission_.pop(qs)) {
            std::visit(
                [&](const auto& q) {
                    gf_.query_buckets(q, scratch, buckets);
                },
                qs->query);
            qs->blocks = buckets.size();
            qs->node_blocks = partition_node_blocks(
                buckets, assignment_, config_.nodes, config_.disks_per_node);
            qs->node_results.resize(config_.nodes);
            std::uint32_t fanout = 0;
            for (const auto& blocks : qs->node_blocks) {
                fanout += blocks.empty() ? 0u : 1u;
            }
            if (fanout == 0) {
                complete(qs);  // query missed the domain entirely
                continue;
            }
            // The counter must cover the full fanout before the first
            // push — a team could finish its slot instantly.
            qs->outstanding.store(fanout, std::memory_order_relaxed);
            for (std::uint32_t n = 0; n < config_.nodes; ++n) {
                if (qs->node_blocks[n].empty()) continue;
                if (config_.prefetch) {
                    // The declustering already tells us exactly which
                    // bucket pages node n is about to scan — stage them
                    // in assignment order before the team gets the task.
                    // (Safe vs drop_caches: backing_ is only swapped
                    // while no query is in flight.)
                    pages.clear();
                    for (std::uint32_t b : qs->node_blocks[n]) {
                        pages.push_back(gf_.bucket_page(b));
                    }
                    backing_[n]->pool.prefetch(pages);
                }
                PGF_CHECK(node_queues_[n]->push(qs),
                          "node queue closed while dispatching");
            }
        }
    }

    /// Node team member: serves one query's block list on `node`, reading
    /// every bucket page through the node's own pool and filtering records
    /// into the query's slot for this node.
    void worker_loop(std::uint32_t node) {
        Records page_buf;
        QueryState* qs = nullptr;
        while (node_queues_[node]->pop(qs)) {
            // Re-fetched per task: drop_caches() swaps the backing while
            // the team is quiescent (blocked in pop above).
            BufferPool& pool = backing_[node]->pool;
            const std::vector<std::uint32_t>& blocks = qs->node_blocks[node];
            Records& out = qs->node_results[node];
            for (std::uint32_t b : blocks) {
                auto ref = pool.fetch(gf_.bucket_page(b));
                Store::decode_page(ref.data(), page_buf);
                filter(qs->query, page_buf, out);
            }
            if (qs->outstanding.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                complete(qs);
            }
        }
    }

    /// Completion path: stamps the query's latency and publishes it to the
    /// front end (submit's window wait and drain share the condvar).
    void complete(QueryState* qs) PGF_EXCLUDES(stats_mutex_) {
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      qs->admit)
                .count();
        std::uint64_t matched = 0;
        for (const Records& part : qs->node_results) matched += part.size();
        {
            MutexLock lock(stats_mutex_);
            latencies_ms_[qs->ticket] = ms;
            total_blocks_ += qs->blocks;
            records_returned_ += matched;
            ++completed_;
        }
        completion_cv_.notify_all();
    }

    static void filter(const Query& query, const Records& page, Records& out) {
        if (const Rect<D>* rect = std::get_if<Rect<D>>(&query)) {
            for (const GridRecord<D>& r : page) {
                if (rect->contains(r.point)) out.push_back(r);
            }
            return;
        }
        const PartialMatch<D>& pm = std::get<PartialMatch<D>>(query);
        for (const GridRecord<D>& r : page) {
            bool match = true;
            for (std::size_t i = 0; i < D && match; ++i) {
                if (pm.key[i].has_value() && r.point[i] != *pm.key[i]) {
                    match = false;
                }
            }
            if (match) out.push_back(r);
        }
    }

    /// Clears the previous batch's state. Requires a drained engine.
    void reset_batch() PGF_EXCLUDES(stats_mutex_) {
        MutexLock lock(stats_mutex_);
        PGF_CHECK(completed_ == submitted_,
                  "reset with queries in flight");
        states_.clear();
        latencies_ms_.clear();
        submitted_ = 0;
        completed_ = 0;
        total_blocks_ = 0;
        records_returned_ = 0;
    }

    const PagedGridFile<D>& gf_;
    const Assignment assignment_;
    const ServingConfig config_;

    BoundedMpmcQueue<QueryState*> admission_;
    std::vector<std::unique_ptr<BoundedMpmcQueue<QueryState*>>> node_queues_;
    std::vector<std::unique_ptr<NodeBacking>> backing_;
    std::thread dispatcher_;
    std::vector<std::thread> workers_;

    mutable Mutex stats_mutex_;
    std::condition_variable completion_cv_;
    std::vector<std::unique_ptr<QueryState>> states_
        PGF_GUARDED_BY(stats_mutex_);
    std::vector<double> latencies_ms_ PGF_GUARDED_BY(stats_mutex_);
    std::size_t submitted_ PGF_GUARDED_BY(stats_mutex_) = 0;
    std::size_t completed_ PGF_GUARDED_BY(stats_mutex_) = 0;
    std::uint64_t total_blocks_ PGF_GUARDED_BY(stats_mutex_) = 0;
    std::uint64_t records_returned_ PGF_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace pgf
