// Point-to-point message cost model (latency + bandwidth), the standard
// first-order model of the SP-2's high-performance switch.
#pragma once

#include <cstddef>

#include "pgf/sim/des.hpp"

namespace pgf {

struct NetworkParams {
    double latency_s = 40e-6;            ///< per-message latency
    double bandwidth_bytes_per_s = 35e6; ///< sustained point-to-point rate
};

class Network {
public:
    explicit Network(NetworkParams params = {});

    /// Time for one message of `bytes` payload between two nodes.
    /// Local (self-addressed) messages cost nothing.
    sim::SimTime transfer_time(std::size_t bytes, bool remote = true) const;

    const NetworkParams& params() const { return params_; }

private:
    NetworkParams params_;
};

}  // namespace pgf
