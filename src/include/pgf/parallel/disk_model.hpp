// Service-time model of a mid-90s SCSI disk with an LRU block cache.
//
// The paper's SP-2 nodes read 8 KB grid-file buckets from local disks; it
// explicitly notes that "caching effects come into play" in the animation
// experiment because consecutive snapshot queries re-fetch the same blocks.
// The model therefore charges a full seek + rotation + transfer for a cold
// random block, transfer only for a sequentially-next block, and a small
// constant for a cache hit.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "pgf/sim/des.hpp"

namespace pgf {

struct DiskParams {
    double avg_seek_s = 0.010;        ///< average seek
    double avg_rotation_s = 0.0042;   ///< half a revolution at 7200 rpm
    double transfer_bytes_per_s = 4.0e6;
    double cache_hit_s = 0.0001;      ///< buffer-copy cost of a cached block
    std::size_t block_bytes = 8192;
    std::size_t cache_blocks = 1024;  ///< per-node LRU capacity (0 = no cache)
};

class SimulatedDisk {
public:
    explicit SimulatedDisk(DiskParams params = {});

    /// Service time for reading `block`, updating the cache and the
    /// sequential-access state.
    sim::SimTime read(std::uint64_t block);

    /// Service time for reading `block` when the caller already knows
    /// whether it was resident (`cached`): the model's internal LRU is
    /// bypassed entirely — the disk-backed server substitutes a real
    /// buffer pool's hits and misses for the simulated block cache — but
    /// the counters and sequential-access state update exactly as in
    /// read().
    sim::SimTime read_with(std::uint64_t block, bool cached);

    std::uint64_t physical_reads() const { return physical_reads_; }
    std::uint64_t cache_hits() const { return cache_hits_; }

    void reset_counters();
    void drop_cache();

    const DiskParams& params() const { return params_; }

private:
    void cache_insert(std::uint64_t block);
    sim::SimTime miss_service(std::uint64_t block);

    DiskParams params_;
    std::uint64_t physical_reads_ = 0;
    std::uint64_t cache_hits_ = 0;
    std::uint64_t last_block_ = ~std::uint64_t{0};
    bool has_last_ = false;
    // LRU: most recent at the front.
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
};

}  // namespace pgf
