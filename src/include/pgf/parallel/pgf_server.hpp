// SPMD parallel grid-file server on the simulated shared-nothing cluster.
//
// Execution model, following the paper: the coordinator (node 0, also a
// worker) translates each arriving query into block requests, ships each
// worker the list of its blocks in one message, the workers read the blocks
// from their local disks (LRU-cached), filter the qualifying records, and
// ship them back; the query completes when the last response arrives, and
// queries are processed one at a time (the workloads in Tables 4-5 are
// sequential query streams).
//
// The server is generic over the grid-file backend (GF). Two modes:
//   - simulated-cache mode (any backend, the default): block residency is
//     decided by each SimulatedDisk's internal LRU model;
//   - disk-backed mode (paged backend, DiskBackedConfig): every worker
//     block read goes through a real per-node BufferPool over the paged
//     file's backing pages, and the pool's hit/miss counters replace the
//     simulated block cache — physical_reads/cache_hits then report actual
//     page I/O, validating the Sec. 2.2 response metric against real
//     misses. Response blocks depend only on structure + assignment, so
//     they are identical across modes by construction.
//
// Reported quantities match the paper's three columns:
//   - response blocks: sum over queries of max_i N_i(q) (Sec. 2.2 metric),
//   - communication seconds: total time spent in message transfer,
//   - elapsed seconds: simulated completion time of the whole batch.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/parallel/cluster.hpp"
#include "pgf/parallel/node_backing.hpp"
#include "pgf/sim/des.hpp"
#include "pgf/storage/buffer_pool.hpp"
#include "pgf/storage/page_file.hpp"

namespace pgf {

struct BatchResult {
    std::size_t queries = 0;
    std::uint64_t response_blocks = 0;  ///< sum of per-query max_i N_i(q)
    std::uint64_t total_blocks = 0;     ///< sum of per-query buckets touched
    std::uint64_t records_returned = 0;
    std::uint64_t physical_reads = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t prefetch_issued = 0;  ///< disk-backed: read-ahead pages
    std::uint64_t prefetch_hits = 0;    ///< staged pages a worker then used
    double comm_time_s = 0.0;
    double elapsed_s = 0.0;
};

/// Enables the disk-backed mode: each node opens its own BufferPool of
/// `pool_pages` frames over the paged file's backing PageFile. The file
/// must be flushed (PagedGridFile::flush) before the server is built, so
/// the node pools read current page images.
struct DiskBackedConfig {
    std::size_t pool_pages = 1024;
    /// Replacement policy of every node pool (default: historical LRU).
    BufferPoolConfig pool_config{};
    /// Declustering-aware read-ahead: the coordinator stages each node's
    /// bucket pages into that node's pool (in assignment order) before the
    /// workers service the block list. Staged pages then count as cache
    /// hits in the timing model — read-ahead overlaps the request
    /// transfer — while the pages actually read appear in
    /// BatchResult::prefetch_issued so physical I/O stays accounted.
    bool prefetch = false;
};

/// Grid-file backends that expose a disk image the server can open
/// directly: a backing file path plus a page id per bucket.
template <typename GF>
concept PagedBackend = requires(const GF& gf) {
    { gf.path() } -> std::convertible_to<std::string>;
    { gf.bucket_page(std::uint32_t{0}) } -> std::convertible_to<std::uint64_t>;
};

template <std::size_t D, typename GF = GridFile<D>>
class ParallelGridFileServer {
public:
    /// `assignment` maps every bucket of `gf` to a *disk* in
    /// [0, nodes * disks_per_node); disk d lives on node d / disks_per_node.
    ParallelGridFileServer(const GF& gf, Assignment assignment,
                           ClusterConfig config)
        : gf_(gf), assignment_(std::move(assignment)), config_(config) {
        PGF_CHECK(config_.disks_per_node >= 1,
                  "each node needs at least one disk");
        const std::uint32_t total_disks =
            config_.nodes * config_.disks_per_node;
        PGF_CHECK(assignment_.num_disks == total_disks,
                  "assignment must target exactly the cluster's disks");
        PGF_CHECK(assignment_.disk_of.size() == gf_.bucket_count(),
                  "assignment must cover every bucket");
        disks_.reserve(total_disks);
        for (std::uint32_t i = 0; i < total_disks; ++i) {
            disks_.emplace_back(config_.disk);
        }
    }

    /// Disk-backed mode: worker reads go through real per-node buffer
    /// pools over `gf`'s backing file. Call gf.flush() first so the pages
    /// on disk are current.
    ParallelGridFileServer(const GF& gf, Assignment assignment,
                           ClusterConfig config, DiskBackedConfig disk_backed)
        requires PagedBackend<GF>
        : ParallelGridFileServer(gf, std::move(assignment), config) {
        backing_path_ = gf.path();
        backing_pool_pages_ = disk_backed.pool_pages;
        backing_pool_config_ = disk_backed.pool_config;
        backing_prefetch_ = disk_backed.prefetch;
        PGF_CHECK(backing_pool_pages_ >= 1,
                  "disk-backed mode needs at least one pool frame per node");
        open_backing();
    }

    /// Runs the query batch on a fresh simulated clock (the block caches —
    /// simulated LRU or real per-node pools — persist across queries
    /// within the batch, and across batches unless drop_caches() is
    /// called).
    ///
    /// `concurrency` is the number of outstanding queries the coordinator
    /// keeps in flight (closed loop). The paper's workloads are sequential
    /// (concurrency = 1, the default); higher values overlap independent
    /// queries, serializing contended disks through per-disk busy times.
    BatchResult execute(const std::vector<Rect<D>>& queries,
                        std::uint32_t concurrency = 1) {
        PGF_CHECK(concurrency >= 1, "need at least one query in flight");
        sim::Simulator des;
        Network net(config_.network);
        BatchResult result;
        result.queries = queries.size();
        std::vector<sim::SimTime> disk_busy_until(disks_.size(), 0.0);

        std::size_t next_query = 0;
        // Closed loop: each completed query launches the next.
        std::function<void()> start_query = [&]() {
            if (next_query == queries.size()) return;
            const Rect<D>& q = queries[next_query++];
            const std::vector<std::uint32_t> buckets = gf_.query_buckets(q);

            // Coordinator work: directory lookup + request building.
            double translate =
                config_.query_translate_s +
                config_.per_request_s * static_cast<double>(buckets.size());

            // Partition block requests by owning disk; the response-time
            // metric (max_i N_i) is per disk, exactly as in Sec. 2.2.
            const std::uint32_t total_disks =
                config_.nodes * config_.disks_per_node;
            std::vector<std::vector<std::uint32_t>> per_disk(total_disks);
            for (std::uint32_t b : buckets) {
                per_disk[assignment_.disk_of[b]].push_back(b);
            }
            std::uint64_t worst = 0;
            for (const auto& blocks : per_disk) {
                worst = std::max<std::uint64_t>(worst, blocks.size());
            }
            result.response_blocks += worst;
            result.total_blocks += buckets.size();

            auto outstanding = std::make_shared<std::uint32_t>(0);
            for (std::uint32_t node = 0; node < config_.nodes; ++node) {
                std::size_t node_blocks = 0;
                for (std::uint32_t k = 0; k < config_.disks_per_node; ++k) {
                    node_blocks +=
                        per_disk[node * config_.disks_per_node + k].size();
                }
                if (node_blocks == 0) continue;
                if constexpr (PagedBackend<GF>) {
                    // Declustering-aware read-ahead: the coordinator knows
                    // node's exact block list, so stage those pages (in
                    // the same disk-order the workers will scan) before
                    // the request even "arrives" — the pool then serves
                    // them as hits and the timing model overlaps the
                    // read-ahead with the request transfer.
                    if (!backing_.empty() && backing_prefetch_) {
                        prefetch_scratch_.clear();
                        for (std::uint32_t k = 0; k < config_.disks_per_node;
                             ++k) {
                            for (std::uint32_t b :
                                 per_disk[node * config_.disks_per_node +
                                          k]) {
                                prefetch_scratch_.push_back(
                                    gf_.bucket_page(b));
                            }
                        }
                        backing_[node]->pool.prefetch(prefetch_scratch_);
                    }
                }
                ++*outstanding;
                const bool remote = node != 0;
                double request_time = net.transfer_time(
                    config_.request_bytes * node_blocks, remote);
                result.comm_time_s += request_time;
                // Worker service: the node's disks run in parallel, each
                // serializing its own block reads behind whatever earlier
                // in-flight queries left on its queue; the record filter
                // runs as the blocks arrive.
                const sim::SimTime arrival =
                    des.now() + translate + request_time;
                sim::SimTime node_done = arrival;
                std::uint64_t matched = 0;
                for (std::uint32_t k = 0; k < config_.disks_per_node; ++k) {
                    std::uint32_t disk = node * config_.disks_per_node + k;
                    if (per_disk[disk].empty()) continue;
                    sim::SimTime disk_done =
                        std::max(arrival, disk_busy_until[disk]);
                    for (std::uint32_t b : per_disk[disk]) {
                        disk_done += service_block(q, node, disk, b, matched);
                    }
                    disk_busy_until[disk] = disk_done;
                    node_done = std::max(node_done, disk_done);
                }
                result.records_returned += matched;
                double response_time = net.transfer_time(
                    static_cast<std::size_t>(matched) * config_.record_bytes,
                    remote);
                result.comm_time_s += response_time;
                des.schedule_at(node_done + response_time,
                                [&, outstanding]() {
                                    if (--*outstanding == 0) start_query();
                                });
            }
            if (*outstanding == 0) {
                // Query touched nothing: move on immediately.
                des.schedule_in(translate, [&]() { start_query(); });
            }
        };

        for (std::uint32_t k = 0; k < concurrency; ++k) start_query();
        des.run();
        result.elapsed_s = des.now();
        if (!backing_.empty()) {
            // Disk-backed: I/O counters come from the real pools
            // (snapshot-and-zero; page contents stay resident).
            for (auto& nb : backing_) {
                BufferPool::Stats stats = nb->pool.reset();
                // Read-ahead pages are real page I/O too: physical_reads
                // stays an honest count of file reads either way.
                result.physical_reads += stats.misses + stats.prefetch_issued;
                result.cache_hits += stats.hits;
                result.prefetch_issued += stats.prefetch_issued;
                result.prefetch_hits += stats.prefetch_hits;
            }
            for (auto& d : disks_) d.reset_counters();
        } else {
            for (const auto& d : disks_) {
                result.physical_reads += d.physical_reads();
                result.cache_hits += d.cache_hits();
            }
            for (auto& d : disks_) d.reset_counters();
        }
        return result;
    }

    /// Clears every node's block cache (for cold-start measurements). In
    /// disk-backed mode the per-node pools are reopened empty.
    void drop_caches() {
        for (auto& d : disks_) d.drop_cache();
        if (!backing_.empty()) open_backing();
    }

    /// True when worker reads go through real per-node buffer pools.
    bool disk_backed() const { return !backing_.empty(); }

    const ClusterConfig& config() const { return config_; }

private:
    void open_backing() {
        backing_.clear();
        backing_.reserve(config_.nodes);
        for (std::uint32_t n = 0; n < config_.nodes; ++n) {
            backing_.push_back(std::make_unique<NodeBacking>(
                backing_path_, backing_pool_pages_, backing_pool_config_));
        }
    }

    /// Reads bucket `b`'s block on `disk` and filters its records against
    /// `q` (adding to `matched`); returns the block's service time. In
    /// disk-backed mode the node's pool fetches the real page, its
    /// hit/miss verdict feeds the timing model, and the records are
    /// decoded from the fetched page image — the worker touches only
    /// bytes that came through its own pool. Otherwise the simulated LRU
    /// decides residency and the backend's records are scanned directly.
    sim::SimTime service_block(const Rect<D>& q, std::uint32_t node,
                               std::uint32_t disk, std::uint32_t b,
                               std::uint64_t& matched) {
        if constexpr (PagedBackend<GF>) {
            if (!backing_.empty()) {
                NodeBacking& nb = *backing_[node];
                const std::uint64_t page = gf_.bucket_page(b);
                const std::uint64_t misses_before = nb.pool.misses();
                auto ref = nb.pool.fetch(page);
                const bool hit = nb.pool.misses() == misses_before;
                GF::StoreType::decode_page(ref.data(), page_scratch_);
                for (const auto& rec : page_scratch_) {
                    if (q.contains(rec.point)) ++matched;
                }
                return disks_[disk].read_with(page, hit);
            }
        }
        for (const auto& rec : gf_.bucket_records(b)) {
            if (q.contains(rec.point)) ++matched;
        }
        return disks_[disk].read(b);
    }

    const GF& gf_;
    Assignment assignment_;
    ClusterConfig config_;
    std::vector<SimulatedDisk> disks_;
    std::string backing_path_;
    std::size_t backing_pool_pages_ = 0;
    BufferPoolConfig backing_pool_config_{};
    bool backing_prefetch_ = false;
    std::vector<std::unique_ptr<NodeBacking>> backing_;
    std::vector<GridRecord<D>> page_scratch_;
    std::vector<std::uint64_t> prefetch_scratch_;
};

}  // namespace pgf
