// Prim's minimal spanning tree on an implicit dense graph.
//
// The similarity-based declustering algorithms operate on the complete
// graph over all buckets; edges are never materialized — `cost(i, j)` is
// evaluated on demand, giving O(n^2) time and O(n) memory, the same bounds
// the paper quotes for these algorithms.
//
// When the cost functor exposes the batched row kernel (BucketWeights /
// NegatedBucketWeights), each frontier relaxation consumes one vectorized
// row instead of n indirect calls. An optional ThreadPool chunks the relax
// and argmin scans; the parallel argmin compares (value, index) with the
// lowest index winning ties, so the chosen vertex — and therefore the whole
// tree — is byte-identical to the serial scan at every thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "pgf/graph/weight_traits.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

/// Computes the MST of the complete graph on n vertices under `cost`,
/// rooted at `root`. Returns the parent array (parent[root] == root).
/// Cost must be symmetric; self-edges are never evaluated. An optional
/// pool parallelizes the per-step scans with results bit-identical to the
/// serial code.
template <typename Cost>
std::vector<std::size_t> prim_mst(std::size_t n, std::size_t root, Cost cost,
                                  ThreadPool* pool = nullptr) {
    PGF_CHECK(n >= 1, "prim_mst requires at least one vertex");
    PGF_CHECK(root < n, "prim_mst root out of range");
    std::vector<std::size_t> parent(n, root);
    std::vector<double> best(n, std::numeric_limits<double>::infinity());
    std::vector<char> in_tree(n, 0);
    parent[root] = root;
    in_tree[root] = 1;

    // Row buffer for the batched kernel; untouched for plain functors.
    std::vector<double> row;
    if constexpr (graph_detail::HasRowFill<Cost>::value) row.resize(n);

    const bool pooled =
        pool != nullptr && n >= graph_detail::kParallelScanThreshold;

    // Folds src's edges into best/parent for every vertex outside the tree.
    // Per-vertex updates are independent, so chunking cannot change them.
    auto relax_from = [&](std::size_t src) {
        auto relax_range = [&](std::size_t begin, std::size_t end) {
            if constexpr (graph_detail::HasRowFill<Cost>::value) {
                cost.fill_row_range(src, begin, end, row.data() + begin);
                for (std::size_t i = begin; i < end; ++i) {
                    if (!in_tree[i] && row[i] < best[i]) {
                        best[i] = row[i];
                        parent[i] = src;
                    }
                }
            } else {
                for (std::size_t i = begin; i < end; ++i) {
                    if (!in_tree[i]) {
                        double c = cost(src, i);
                        if (c < best[i]) {
                            best[i] = c;
                            parent[i] = src;
                        }
                    }
                }
            }
        };
        if (pooled) {
            pool->parallel_for(n, relax_range);
        } else {
            relax_range(0, n);
        }
    };

    relax_from(root);
    for (std::size_t added = 1; added < n; ++added) {
        // argmin over the frontier. The serial scan keeps the first (lowest
        // index) occurrence of the minimum; the chunked reduction preserves
        // that: first-strict-min within each chunk, chunks combined in
        // index order with a strict comparison.
        std::size_t next = n;
        if (pooled) {
            struct Cand {
                double val;
                std::size_t idx;
            };
            Cand won = pool->map_reduce(
                n, Cand{std::numeric_limits<double>::infinity(), n},
                [&](std::size_t begin, std::size_t end) {
                    Cand local{std::numeric_limits<double>::infinity(), n};
                    for (std::size_t i = begin; i < end; ++i) {
                        if (!in_tree[i] && best[i] < local.val) {
                            local = Cand{best[i], i};
                        }
                    }
                    return local;
                },
                [](const Cand& acc, const Cand& v) {
                    return v.val < acc.val ? v : acc;
                });
            next = won.idx;
        } else {
            double next_cost = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < n; ++i) {
                if (!in_tree[i] && best[i] < next_cost) {
                    next_cost = best[i];
                    next = i;
                }
            }
        }
        PGF_CHECK(next < n, "prim_mst: graph must be complete");
        in_tree[next] = 1;
        relax_from(next);
    }
    return parent;
}

/// Sum of edge costs of the tree described by a parent array.
template <typename Cost>
double tree_cost(const std::vector<std::size_t>& parent, const Cost& cost) {
    double total = 0.0;
    for (std::size_t i = 0; i < parent.size(); ++i) {
        if (parent[i] != i) total += cost(parent[i], i);
    }
    return total;
}

/// std::function wrapper kept for ABI/test compatibility; new code should
/// pass the functor directly to the template above.
double tree_cost(const std::vector<std::size_t>& parent,
                 const std::function<double(std::size_t, std::size_t)>& cost);

/// Vertices of the tree in depth-first preorder from the root. Children are
/// visited in increasing vertex order.
std::vector<std::size_t> preorder(const std::vector<std::size_t>& parent);

}  // namespace pgf
