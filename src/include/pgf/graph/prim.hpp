// Prim's minimal spanning tree on an implicit dense graph.
//
// The similarity-based declustering algorithms operate on the complete
// graph over all buckets; edges are never materialized — `cost(i, j)` is
// evaluated on demand, giving O(n^2) time and O(n) memory, the same bounds
// the paper quotes for these algorithms.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// Computes the MST of the complete graph on n vertices under `cost`,
/// rooted at `root`. Returns the parent array (parent[root] == root).
/// Cost must be symmetric; self-edges are never evaluated.
template <typename Cost>
std::vector<std::size_t> prim_mst(std::size_t n, std::size_t root, Cost cost) {
    PGF_CHECK(n >= 1, "prim_mst requires at least one vertex");
    PGF_CHECK(root < n, "prim_mst root out of range");
    std::vector<std::size_t> parent(n, root);
    std::vector<double> best(n, std::numeric_limits<double>::infinity());
    std::vector<char> in_tree(n, 0);
    parent[root] = root;
    in_tree[root] = 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (!in_tree[i]) best[i] = cost(root, i);
    }
    for (std::size_t added = 1; added < n; ++added) {
        std::size_t next = n;
        double next_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_tree[i] && best[i] < next_cost) {
                next_cost = best[i];
                next = i;
            }
        }
        PGF_CHECK(next < n, "prim_mst: graph must be complete");
        in_tree[next] = 1;
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_tree[i]) {
                double c = cost(next, i);
                if (c < best[i]) {
                    best[i] = c;
                    parent[i] = next;
                }
            }
        }
    }
    return parent;
}

/// Sum of edge costs of the tree described by a parent array.
double tree_cost(const std::vector<std::size_t>& parent,
                 const std::function<double(std::size_t, std::size_t)>& cost);

/// Vertices of the tree in depth-first preorder from the root. Children are
/// visited in increasing vertex order.
std::vector<std::size_t> preorder(const std::vector<std::size_t>& parent);

}  // namespace pgf
