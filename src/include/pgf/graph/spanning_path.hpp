// Short spanning path heuristic (substrate of the SSP declustering
// algorithm of Fang, Lee & Chang).
//
// A short spanning path orders all vertices so that consecutive vertices
// are highly similar; assigning positions round-robin then spreads every
// tight neighborhood across all disks. The exact shortest spanning path is
// NP-hard (it is a TSP path), so the classic greedy nearest-neighbor
// heuristic is used: repeatedly extend the path end with the most similar
// unvisited vertex.
//
// When the similarity functor exposes the batched row kernel
// (BucketWeights), each step consumes one vectorized row of the tail
// vertex. An optional ThreadPool chunks the argmax scan; ties break to the
// lowest vertex index in both the serial and the chunked reduction, so the
// path is byte-identical at every thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "pgf/graph/weight_traits.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

/// Builds a spanning path starting at `start`, greedily extending with the
/// unvisited vertex maximizing `similarity(tail, v)`. Returns the vertex
/// order along the path (a permutation of 0..n-1). Similarities must be
/// positive (they are weights in (0, 1]).
template <typename Sim>
std::vector<std::size_t> greedy_spanning_path(std::size_t n, std::size_t start,
                                              Sim similarity,
                                              ThreadPool* pool = nullptr) {
    PGF_CHECK(n >= 1, "spanning path requires at least one vertex");
    PGF_CHECK(start < n, "spanning path start out of range");
    std::vector<std::size_t> path;
    path.reserve(n);
    std::vector<char> visited(n, 0);

    std::vector<double> row;
    if constexpr (graph_detail::HasRowFill<Sim>::value) row.resize(n);
    const bool pooled =
        pool != nullptr && n >= graph_detail::kParallelScanThreshold;

    std::size_t tail = start;
    visited[tail] = 1;
    path.push_back(tail);
    for (std::size_t step = 1; step < n; ++step) {
        // argmax over unvisited vertices; the serial scan keeps the first
        // (lowest index) maximum, the chunked reduction combines chunks in
        // index order with a strict comparison — same winner.
        std::size_t best = n;
        if constexpr (graph_detail::HasRowFill<Sim>::value) {
            auto fill_range = [&](std::size_t begin, std::size_t end) {
                similarity.fill_row_range(tail, begin, end,
                                          row.data() + begin);
            };
            if (pooled) {
                pool->parallel_for(n, fill_range);
            } else {
                fill_range(0, n);
            }
        }
        auto scan = [&](std::size_t begin, std::size_t end) {
            std::size_t local_best = n;
            double local_sim = -1.0;
            for (std::size_t v = begin; v < end; ++v) {
                if (visited[v]) continue;
                double s;
                if constexpr (graph_detail::HasRowFill<Sim>::value) {
                    s = row[v];
                } else {
                    s = similarity(tail, v);
                }
                if (s > local_sim) {
                    local_sim = s;
                    local_best = v;
                }
            }
            return std::pair<double, std::size_t>{local_sim, local_best};
        };
        if (pooled) {
            auto won = pool->map_reduce(
                n, std::pair<double, std::size_t>{-1.0, n}, scan,
                [](const std::pair<double, std::size_t>& acc,
                   const std::pair<double, std::size_t>& v) {
                    return v.first > acc.first ? v : acc;
                });
            best = won.second;
        } else {
            best = scan(0, n).second;
        }
        visited[best] = 1;
        path.push_back(best);
        tail = best;
    }
    return path;
}

/// Total similarity along consecutive path edges (higher = "shorter" path
/// in distance terms — used to sanity-check the heuristic in tests).
template <typename Sim>
double path_similarity(const std::vector<std::size_t>& path,
                       const Sim& similarity) {
    double total = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
        total += similarity(path[i - 1], path[i]);
    }
    return total;
}

/// std::function wrapper kept for ABI/test compatibility; new code should
/// pass the functor directly to the template above.
double path_similarity(
    const std::vector<std::size_t>& path,
    const std::function<double(std::size_t, std::size_t)>& similarity);

}  // namespace pgf
