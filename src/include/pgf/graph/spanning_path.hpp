// Short spanning path heuristic (substrate of the SSP declustering
// algorithm of Fang, Lee & Chang).
//
// A short spanning path orders all vertices so that consecutive vertices
// are highly similar; assigning positions round-robin then spreads every
// tight neighborhood across all disks. The exact shortest spanning path is
// NP-hard (it is a TSP path), so the classic greedy nearest-neighbor
// heuristic is used: repeatedly extend the path end with the most similar
// unvisited vertex.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// Builds a spanning path starting at `start`, greedily extending with the
/// unvisited vertex maximizing `similarity(tail, v)`. Returns the vertex
/// order along the path (a permutation of 0..n-1).
template <typename Sim>
std::vector<std::size_t> greedy_spanning_path(std::size_t n, std::size_t start,
                                              Sim similarity) {
    PGF_CHECK(n >= 1, "spanning path requires at least one vertex");
    PGF_CHECK(start < n, "spanning path start out of range");
    std::vector<std::size_t> path;
    path.reserve(n);
    std::vector<char> visited(n, 0);
    std::size_t tail = start;
    visited[tail] = 1;
    path.push_back(tail);
    for (std::size_t step = 1; step < n; ++step) {
        std::size_t best = n;
        double best_sim = -1.0;
        for (std::size_t v = 0; v < n; ++v) {
            if (visited[v]) continue;
            double s = similarity(tail, v);
            if (s > best_sim) {
                best_sim = s;
                best = v;
            }
        }
        visited[best] = 1;
        path.push_back(best);
        tail = best;
    }
    return path;
}

/// Total similarity along consecutive path edges (higher = "shorter" path
/// in distance terms — used to sanity-check the heuristic in tests).
double path_similarity(
    const std::vector<std::size_t>& path,
    const std::function<double(std::size_t, std::size_t)>& similarity);

}  // namespace pgf
