// Shared plumbing for the templated graph scans.
//
// The graph algorithms (Prim, spanning path, Kernighan–Lin) are templated
// on the weight functor so the O(N^2) inner loops compile to direct calls —
// no std::function per-edge indirection. Functors that additionally expose
// the batched row kernel of BucketWeights (fill_row_range) get the
// vectorized row path; plain functors (lambdas, std::function wrappers)
// fall back to per-edge evaluation. Both paths produce bit-identical
// values, so the choice never changes an algorithm's result.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace pgf {
namespace graph_detail {

template <typename F, typename = void>
struct HasRowFill : std::false_type {};
template <typename F>
struct HasRowFill<F,
                  std::void_t<decltype(std::declval<const F&>().fill_row_range(
                      std::size_t{}, std::size_t{}, std::size_t{},
                      std::declval<double*>()))>> : std::true_type {};

/// Writes f(i, j) for j in [col_begin, col_end) to out[j - col_begin],
/// through the batched row kernel when the functor provides one.
template <typename F>
inline void fill_weight_row(const F& f, std::size_t i, std::size_t col_begin,
                            std::size_t col_end, double* out) {
    if constexpr (HasRowFill<F>::value) {
        f.fill_row_range(i, col_begin, col_end, out);
    } else {
        for (std::size_t j = col_begin; j < col_end; ++j) {
            out[j - col_begin] = f(i, j);
        }
    }
}

/// Scans below this size cost less than a pool dispatch (same threshold as
/// the minimax sweeps).
constexpr std::size_t kParallelScanThreshold = 2048;

}  // namespace graph_detail
}  // namespace pgf
