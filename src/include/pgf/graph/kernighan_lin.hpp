// Kernighan–Lin-style swap refinement for M-way declustering.
//
// The declustering problem is a Max-Cut variant: total *inter*-disk edge
// weight should be maximized, equivalently the total weight of edges whose
// endpoints share a disk ("internal weight") minimized. This pass performs
// balance-preserving vertex swaps with positive gain, the multi-way
// analogue of one Kernighan–Lin pass. The paper excludes KL as a primary
// algorithm because its pass count is unbounded; here it is used as an
// ablation: how much can local search still improve each algorithm's
// output?
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pgf {

struct KlResult {
    std::size_t passes = 0;      ///< passes actually executed
    std::size_t swaps = 0;       ///< total improving swaps applied
    double internal_before = 0;  ///< same-disk edge weight before refinement
    double internal_after = 0;   ///< same-disk edge weight after refinement
};

/// Refines `disk_of` in place. `weight(i, j)` must be symmetric and is
/// interpreted as co-access likelihood (higher = the pair should be
/// separated). Stops after `max_passes` or when a full pass finds no
/// improving swap. O(n^2) per pass plus O(n) per applied swap.
KlResult kl_refine(std::vector<std::uint32_t>& disk_of, std::uint32_t num_disks,
                   const std::function<double(std::size_t, std::size_t)>& weight,
                   std::size_t max_passes = 8);

/// Total weight of edges whose endpoints share a disk (the objective the
/// refinement minimizes). O(n^2).
double internal_weight(
    const std::vector<std::uint32_t>& disk_of,
    const std::function<double(std::size_t, std::size_t)>& weight);

}  // namespace pgf
