// Kernighan–Lin-style swap refinement for M-way declustering.
//
// The declustering problem is a Max-Cut variant: total *inter*-disk edge
// weight should be maximized, equivalently the total weight of edges whose
// endpoints share a disk ("internal weight") minimized. This pass performs
// balance-preserving vertex swaps with positive gain, the multi-way
// analogue of one Kernighan–Lin pass. The paper excludes KL as a primary
// algorithm because its pass count is unbounded; here it is used as an
// ablation: how much can local search still improve each algorithm's
// output?
//
// The scans are templated on the weight functor (direct calls, batched row
// kernels for BucketWeights) and optionally chunk across a ThreadPool. The
// serial pair loop applies the first improving swap in (i, j) order and
// rescans from there; the parallel path finds that same first improving
// partner with a chunk-ordered first-index reduction, so the sequence of
// swaps — and the refined assignment — is byte-identical to the serial
// code at every thread count. Weights must be symmetric: the batched scans
// read weight(i, v) where the classic pair loop read weight(v, i).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "pgf/graph/weight_traits.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

struct KlResult {
    std::size_t passes = 0;      ///< passes actually executed
    std::size_t swaps = 0;       ///< total improving swaps applied
    double internal_before = 0;  ///< same-disk edge weight before refinement
    double internal_after = 0;   ///< same-disk edge weight after refinement
};

/// Total weight of edges whose endpoints share a disk (the objective the
/// refinement minimizes). O(n^2). One running accumulator in (i, j) pair
/// order, exactly like the classic scalar loop.
template <typename Weight>
double internal_weight(const std::vector<std::uint32_t>& disk_of,
                       const Weight& weight) {
    const std::size_t n = disk_of.size();
    double total = 0.0;
    std::vector<double> row(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        graph_detail::fill_weight_row(weight, i, i + 1, n, row.data());
        for (std::size_t j = i + 1; j < n; ++j) {
            if (disk_of[i] == disk_of[j]) total += row[j - i - 1];
        }
    }
    return total;
}

/// std::function wrapper kept for ABI/test compatibility.
double internal_weight(
    const std::vector<std::uint32_t>& disk_of,
    const std::function<double(std::size_t, std::size_t)>& weight);

/// Refines `disk_of` in place. `weight(i, j)` must be symmetric and is
/// interpreted as co-access likelihood (higher = the pair should be
/// separated). Stops after `max_passes` or when a full pass finds no
/// improving swap. O(n^2) per pass plus O(n) per applied swap. An optional
/// pool chunks the gain scans and connectivity updates; the result is
/// bit-identical to the serial refinement.
template <typename Weight>
KlResult kl_refine(std::vector<std::uint32_t>& disk_of, std::uint32_t num_disks,
                   const Weight& weight, std::size_t max_passes = 8,
                   ThreadPool* pool = nullptr) {
    const std::size_t n = disk_of.size();
    PGF_CHECK(num_disks >= 1, "kl_refine requires at least one disk");
    for (std::uint32_t d : disk_of) {
        PGF_CHECK(d < num_disks, "kl_refine: disk index out of range");
    }

    KlResult result;
    result.internal_before = internal_weight(disk_of, weight);
    result.internal_after = result.internal_before;
    if (n < 2 || num_disks < 2) return result;

    const std::size_t m = num_disks;
    const bool pooled =
        pool != nullptr && n >= graph_detail::kParallelScanThreshold;

    // conn[v * m + d]: total weight between vertex v and all vertices on
    // disk d. Each vertex accumulates its neighbors in increasing index
    // order — the same per-slot addition sequence as the classic pair
    // loop, so the sums are bit-identical. Rows are independent, so the
    // init chunks across the pool.
    std::vector<double> conn(n * m, 0.0);
    auto init_rows = [&](std::size_t begin, std::size_t end) {
        std::vector<double> buf(n);
        for (std::size_t v = begin; v < end; ++v) {
            graph_detail::fill_weight_row(weight, v, 0, n, buf.data());
            double* cv = &conn[v * m];
            for (std::size_t j = 0; j < n; ++j) {
                if (j != v) cv[disk_of[j]] += buf[j];
            }
        }
    };
    if (pooled) {
        pool->parallel_for(n, init_rows);
    } else {
        init_rows(0, n);
    }

    std::vector<double> wrow(n);  // weight(i, ·) for the current i
    std::vector<double> jrow(n);  // weight(j, ·) for the swap partner
    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        ++result.passes;
        bool improved = false;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            graph_detail::fill_weight_row(weight, i, 0, n, wrow.data());
            std::size_t j = i + 1;
            while (j < n) {
                const std::uint32_t di = disk_of[i];
                // First improving swap partner at or after j, in index
                // order — the vertex the serial pair loop would take next.
                auto scan = [&](std::size_t begin, std::size_t end) {
                    for (std::size_t v = begin; v < end; ++v) {
                        const std::uint32_t dv = disk_of[v];
                        if (dv == di) continue;
                        // Swapping i and v changes the internal weight by
                        // -gain. Each vertex leaves its own disk (dropping
                        // its internal contribution) and joins the other's;
                        // the edge (i, v) itself stays external and must
                        // not be double-counted.
                        const double gain =
                            (conn[i * m + di] - conn[i * m + dv]) +
                            (conn[v * m + dv] - conn[v * m + di]) +
                            2.0 * wrow[v];
                        if (gain > 1e-12) return v;
                    }
                    return n;
                };
                std::size_t found;
                if (pooled &&
                    n - j >= graph_detail::kParallelScanThreshold) {
                    found = pool->map_reduce(
                        n - j, n,
                        [&](std::size_t begin, std::size_t end) {
                            return scan(j + begin, j + end);
                        },
                        [n](std::size_t acc, std::size_t v) {
                            return acc != n ? acc : v;
                        });
                } else {
                    found = scan(j, n);
                }
                if (found == n) break;

                // Apply the swap and update connectivity incrementally.
                const std::uint32_t dj = disk_of[found];
                const double wij = wrow[found];
                const double gain = (conn[i * m + di] - conn[i * m + dj]) +
                                    (conn[found * m + dj] -
                                     conn[found * m + di]) +
                                    2.0 * wij;
                graph_detail::fill_weight_row(weight, found, 0, n,
                                              jrow.data());
                auto update = [&](std::size_t begin, std::size_t end) {
                    for (std::size_t v = begin; v < end; ++v) {
                        if (v == i || v == found) continue;
                        const double wi = wrow[v];
                        const double wj = jrow[v];
                        conn[v * m + di] += wj - wi;
                        conn[v * m + dj] += wi - wj;
                    }
                };
                if (pooled) {
                    pool->parallel_for(n, update);
                } else {
                    update(0, n);
                }
                // i and found also see each other's move: found left dj for
                // di (from i's perspective) and vice versa.
                conn[i * m + dj] -= wij;
                conn[i * m + di] += wij;
                conn[found * m + di] -= wij;
                conn[found * m + dj] += wij;
                disk_of[i] = dj;
                disk_of[found] = di;
                result.internal_after -= gain;
                ++result.swaps;
                improved = true;
                j = found + 1;
            }
        }
        if (!improved) break;
    }
    return result;
}

/// std::function wrapper kept for ABI/test compatibility; new code should
/// pass the functor directly to the template above.
KlResult kl_refine(std::vector<std::uint32_t>& disk_of, std::uint32_t num_disks,
                   const std::function<double(std::size_t, std::size_t)>& weight,
                   std::size_t max_passes = 8);

}  // namespace pgf
