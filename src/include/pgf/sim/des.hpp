// Deterministic discrete-event simulation engine.
//
// Substrate for the shared-nothing cluster model (paper Sec. 3.5): node,
// disk and network activity are events on a simulated clock, so the
// "elapsed time" and "communication time" columns of Tables 4-5 are exact,
// reproducible quantities instead of wall-clock noise from the host.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf::sim {

/// Simulated seconds.
using SimTime = double;

class Simulator {
public:
    using Handler = std::function<void()>;

    /// Audit instrumentation points. An observer (e.g.
    /// pgf::analysis::DesAudit) sees every schedule and dispatch, so it can
    /// verify engine invariants — non-decreasing dispatch timestamps, no
    /// activity after teardown — without the engine paying for bookkeeping
    /// when nothing is attached.
    struct Observer {
        std::function<void(SimTime when, SimTime now)> on_schedule;
        std::function<void(SimTime when, std::size_t pending)> on_dispatch;
    };

    /// Installs `obs` (replacing any previous observer). The observer must
    /// outlive the simulator or be cleared first.
    void set_observer(Observer obs) { observer_ = std::move(obs); }
    void clear_observer() { observer_ = Observer{}; }

    /// Schedules `fn` at absolute time `t` (must be >= now()). Events at
    /// equal times fire in scheduling order (stable FIFO tie-break).
    void schedule_at(SimTime t, Handler fn) {
        if (observer_.on_schedule) observer_.on_schedule(t, now_);
        PGF_CHECK(t >= now_, "cannot schedule into the past");
        queue_.push(Event{t, seq_++, std::move(fn)});
    }

    /// Schedules `fn` after a delay of `dt` seconds.
    void schedule_in(SimTime dt, Handler fn) {
        PGF_CHECK(dt >= 0.0, "negative delay");
        schedule_at(now_ + dt, std::move(fn));
    }

    SimTime now() const { return now_; }
    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }

    /// Runs until the event queue drains (or `max_events` fire, a guard
    /// against accidental event loops). Returns the number of events
    /// processed.
    std::size_t run(std::size_t max_events = ~std::size_t{0}) {
        std::size_t processed = 0;
        while (!queue_.empty() && processed < max_events) {
            Event ev = queue_.top();
            queue_.pop();
            if (observer_.on_dispatch) {
                observer_.on_dispatch(ev.time, queue_.size());
            }
            now_ = ev.time;
            ++processed;
            ev.fn();
        }
        return processed;
    }

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;
        Handler fn;

        bool operator>(const Event& o) const {
            if (time != o.time) return time > o.time;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    SimTime now_ = 0.0;
    std::uint64_t seq_ = 0;
    Observer observer_;
};

}  // namespace pgf::sim
