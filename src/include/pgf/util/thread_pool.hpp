// Persistent worker pool with a deterministic parallel_for.
//
// The O(N^2) declustering algorithms (minimax, nearest-neighbor scans)
// spend their time in embarrassingly parallel sweeps over the not-yet-
// assigned vertex set; this pool parallelizes those sweeps while keeping
// results bit-identical to the serial code: chunks are fixed-size and
// indexed, and reductions combine per-chunk results in chunk order.
//
// The calling thread participates in the work, so a pool of size 1 degrades
// to plain serial execution with no synchronization beyond one mutex.
//
// Lock discipline (machine-checked via pgf/util/annotations.hpp):
// submit_mutex_ serializes whole parallel_for invocations and is always
// acquired before mutex_, which guards the in-flight Task state and the
// shutdown flag shared with the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "pgf/util/annotations.hpp"

namespace pgf {

class ThreadPool {
public:
    /// Creates `threads` workers in addition to the calling thread; 0 means
    /// hardware_concurrency - 1 (so total parallelism = core count).
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total parallelism (workers + the calling thread).
    unsigned parallelism() const { return static_cast<unsigned>(workers_.size()) + 1; }

    /// Invokes fn(begin, end) over disjoint chunks covering [0, n).
    /// Blocks until every chunk completed. fn must not throw.
    ///
    /// Safe to call from several external threads at once: invocations
    /// serialize on an internal submit mutex, so one shared pool can back
    /// concurrent sweep tasks. It remains non-reentrant — fn (or anything
    /// it calls) must never submit to the same pool, or the submit mutex
    /// deadlocks. Checked builds (PGF_DCHECK_ACTIVE) fail fast instead: a
    /// reentrant submission throws CheckError on the submitting thread
    /// (which std::terminates with the message when that thread is a pool
    /// worker, since fn must not throw). Submitting to a *different* pool
    /// from inside fn is fine — nested pools track per-thread which pool
    /// is running them.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// Same, with a caller-chosen chunk size. chunk = 1 gives dynamic
    /// per-index scheduling — the right granularity when the n work items
    /// have very different durations (e.g. whole sweep configurations,
    /// where a minimax run dwarfs a disk-modulo run).
    void parallel_for_chunk(std::size_t n, std::size_t chunk,
                            const std::function<void(std::size_t,
                                                     std::size_t)>& fn);

    /// Deterministic parallel argmin: reduce(chunk_index, begin, end) maps
    /// each chunk to a value; combine(acc, value) folds them IN CHUNK ORDER
    /// on the calling thread. (Provided as a convenience built on
    /// parallel_for.)
    template <typename Value, typename Reduce, typename Combine>
    Value map_reduce(std::size_t n, Value init, Reduce reduce,
                     Combine combine) {
        const std::size_t chunk = chunk_size(n);
        if (chunk == 0) return init;
        const std::size_t chunks = (n + chunk - 1) / chunk;
        std::vector<Value> partial(chunks, init);
        parallel_for(n, [&](std::size_t begin, std::size_t end) {
            partial[begin / chunk] = reduce(begin, end);
        });
        Value acc = init;
        for (const Value& v : partial) acc = combine(acc, v);
        return acc;
    }

    /// Chunk size used for n items (exposed so map_reduce's chunk->index
    /// arithmetic is testable).
    std::size_t chunk_size(std::size_t n) const;

private:
    void worker_loop();

    struct Task {
        const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
        std::size_t n = 0;
        std::size_t chunk = 0;
        std::size_t next = 0;       ///< next chunk start to claim
        std::size_t outstanding = 0;  ///< chunks not yet finished
        std::uint64_t generation = 0;
    };

    /// Serializes whole parallel_for invocations (held for the full call).
    Mutex submit_mutex_ PGF_ACQUIRED_BEFORE(mutex_);
    Mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Task task_ PGF_GUARDED_BY(mutex_);
    bool shutdown_ PGF_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_;
};

}  // namespace pgf
