// Deterministic, portable random number generation.
//
// Every randomized component of pgf (dataset generators, query workloads,
// random seeding in the minimax algorithm, the random conflict-resolution
// heuristic) takes an explicit 64-bit seed and uses these generators, so a
// given seed reproduces the exact same experiment on every platform and
// standard library. std::normal_distribution et al. are deliberately avoided:
// their output is implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

namespace pgf {

/// SplitMix64: tiny, high-quality 64-bit generator; also used to expand a
/// user seed into stream seeds for Pcg32.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Full snapshot of an Rng's generator state: the PCG32 state/stream pair
/// plus the Box–Muller spare (normal() produces deviates in pairs, so the
/// cached second deviate is part of the observable stream position).
/// Restorable via Rng::set_state(); the build cache uses this to replay
/// exactly the draws a memoized dataset generation would have consumed.
struct RngState {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    bool has_spare_normal = false;
    double spare_normal = 0.0;

    friend bool operator==(const RngState&, const RngState&) = default;
};

/// PCG32 (O'Neill): the workhorse generator. 64-bit state, 32-bit output,
/// excellent statistical quality, trivially reproducible.
class Rng {
public:
    /// Seeds state and stream from `seed` via SplitMix64 expansion.
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

    /// Snapshot of the current generator state (see RngState).
    RngState state() const {
        return RngState{state_, inc_, has_spare_normal_, spare_normal_};
    }

    /// Restores a snapshot taken with state(): subsequent draws continue
    /// exactly as they would have from the snapshotted position.
    void set_state(const RngState& s) {
        state_ = s.state;
        inc_ = s.inc;
        has_spare_normal_ = s.has_spare_normal;
        spare_normal_ = s.spare_normal;
    }

    /// Uniform 32-bit value.
    std::uint32_t next_u32();

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Unbiased uniform integer in [0, bound) using Lemire rejection.
    /// bound must be > 0.
    std::uint32_t below(std::uint32_t bound);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Normal deviate via Box–Muller (portable, unlike std::normal_distribution).
    double normal(double mean = 0.0, double stddev = 1.0);

    /// Exponential deviate with the given rate (lambda > 0).
    double exponential(double rate);

    /// Fisher–Yates shuffle of a vector.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(static_cast<std::uint32_t>(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Draws k distinct indices from [0, n) (a uniform random k-subset, in
    /// random order). Requires k <= n.
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool has_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

}  // namespace pgf
