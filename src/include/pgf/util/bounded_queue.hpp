// Bounded multi-producer / multi-consumer queue — the admission and
// dispatch fabric of the concurrent serving path (pgf/parallel/
// query_engine.hpp).
//
// Semantics:
//   - push() blocks while the queue is full; the bound is what turns the
//     serving front end into a closed loop (backpressure instead of an
//     unbounded backlog).
//   - pop() blocks while the queue is empty and returns false only when
//     the queue has been close()d AND drained, so shutdown never drops
//     in-flight items.
//   - close() wakes every waiter; pushes after close() are rejected
//     (return false) rather than silently accepted.
//
// Lock discipline (machine-checked via pgf/util/annotations.hpp): one
// mutex guards the ring and the closed flag; waits go through
// MutexLock::wait in explicit while-loops so the capability analysis sees
// every guarded read under the lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <utility>

#include "pgf/util/annotations.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <typename T>
class BoundedMpmcQueue {
public:
    /// `capacity` = maximum queued items; must be >= 1.
    explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
        PGF_CHECK(capacity_ >= 1, "bounded queue needs capacity >= 1");
    }

    BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
    BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

    /// Blocks until space is available (or the queue closes); returns
    /// false iff the queue was closed before the item could be enqueued.
    bool push(T item) PGF_EXCLUDES(mutex_) {
        {
            MutexLock lock(mutex_);
            while (!closed_ && items_.size() >= capacity_) {
                lock.wait(not_full_);
            }
            if (closed_) return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocks until an item is available; returns false when the queue is
    /// closed and fully drained (the consumer-side shutdown signal).
    bool pop(T& out) PGF_EXCLUDES(mutex_) {
        {
            MutexLock lock(mutex_);
            while (items_.empty() && !closed_) {
                lock.wait(not_empty_);
            }
            if (items_.empty()) return false;  // closed and drained
            out = std::move(items_.front());
            items_.pop_front();
        }
        not_full_.notify_one();
        return true;
    }

    /// Rejects future pushes and wakes every blocked producer/consumer.
    /// Items already queued remain poppable (close-then-drain shutdown).
    void close() PGF_EXCLUDES(mutex_) {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const PGF_EXCLUDES(mutex_) {
        MutexLock lock(mutex_);
        return closed_;
    }

    std::size_t size() const PGF_EXCLUDES(mutex_) {
        MutexLock lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

private:
    const std::size_t capacity_;
    mutable Mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_ PGF_GUARDED_BY(mutex_);
    bool closed_ PGF_GUARDED_BY(mutex_) = false;
};

}  // namespace pgf
