// Compiler-enforced lock discipline: Clang Thread Safety annotations and
// the annotated mutex wrappers every pgf shared-state class must use.
//
// Clang's `-Wthread-safety` capability analysis proves at compile time
// that every access to a `PGF_GUARDED_BY(mu)` member happens with `mu`
// held, that functions marked `PGF_REQUIRES(mu)` are only called under the
// lock, and that scoped locks are never leaked or double-released. Unlike
// TSan — which only catches the races the tests happen to execute — the
// analysis covers every path in the translation unit. The macros expand to
// nothing on non-Clang compilers, so GCC builds see plain std::mutex
// behavior with zero overhead.
//
// House rules (enforced by scripts/check_locks.sh and the
// clang-threadsafety CI job):
//   - raw std::mutex / std::lock_guard / std::unique_lock never appear
//     outside this header; library code uses pgf::Mutex + pgf::MutexLock;
//   - every Mutex member guards something: at least one PGF_GUARDED_BY
//     names it;
//   - condition-variable waits go through MutexLock::wait so the analysis
//     sees the capability as continuously held across the wait (matching
//     the caller's view: the predicate re-check happens under the lock).
#pragma once

#include <condition_variable>
#include <mutex>

// Clang has shipped the capability attributes since 3.5; other compilers
// (and SWIG-style header scanners) get empty expansions.
#if defined(__clang__) && !defined(SWIG)
#define PGF_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PGF_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics, conventionally "mutex".
#define PGF_CAPABILITY(x) PGF_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PGF_SCOPED_CAPABILITY PGF_THREAD_ANNOTATION__(scoped_lockable)

/// Member data that may only be touched while holding the given capability.
#define PGF_GUARDED_BY(x) PGF_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer/reference member whose *pointee* is protected by the capability.
#define PGF_PT_GUARDED_BY(x) PGF_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection between capabilities).
#define PGF_ACQUIRED_BEFORE(...) \
    PGF_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define PGF_ACQUIRED_AFTER(...) \
    PGF_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function may only be called while already holding the capability
/// (exclusively / shared).
#define PGF_REQUIRES(...) \
    PGF_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define PGF_REQUIRES_SHARED(...) \
    PGF_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability itself.
#define PGF_ACQUIRE(...) \
    PGF_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define PGF_ACQUIRE_SHARED(...) \
    PGF_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define PGF_RELEASE(...) \
    PGF_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define PGF_RELEASE_SHARED(...) \
    PGF_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value that signals success.
#define PGF_TRY_ACQUIRE(...) \
    PGF_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrant entry points).
#define PGF_EXCLUDES(...) PGF_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held here.
#define PGF_ASSERT_CAPABILITY(x) PGF_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given capability.
#define PGF_RETURN_CAPABILITY(x) PGF_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the discipline cannot be expressed.
#define PGF_NO_THREAD_SAFETY_ANALYSIS \
    PGF_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace pgf {

/// std::mutex wrapped as a Clang capability. All pgf shared-state classes
/// latch through this type so `-Wthread-safety` can prove their lock
/// discipline; see the header comment for the house rules.
class PGF_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() PGF_ACQUIRE() { m_.lock(); }
    void unlock() PGF_RELEASE() { m_.unlock(); }
    bool try_lock() PGF_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /// The wrapped std::mutex, exposed only for std::condition_variable
    /// interop inside MutexLock. Direct use bypasses the capability
    /// analysis — prefer MutexLock::wait.
    std::mutex& native() { return m_; }

private:
    std::mutex m_;
};

/// Scoped lock over a pgf::Mutex (the annotated std::unique_lock): the
/// constructor acquires, the destructor releases, and the analysis treats
/// the capability as held for the lexical scope of the object.
class PGF_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& m) PGF_ACQUIRE(m) : lock_(m.native()) {}
    ~MutexLock() PGF_RELEASE() {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// Blocks on `cv` until notified. The mutex is atomically released for
    /// the duration of the wait and re-held on return; the analysis sees
    /// the capability as continuously held, which matches the caller's
    /// view — guarded state is only ever read under the lock. Use in an
    /// explicit `while (!predicate) lock.wait(cv);` loop so the predicate's
    /// guarded reads stay inside the annotated scope (predicate lambdas
    /// would be analyzed as lock-free functions and rejected).
    void wait(std::condition_variable& cv) { cv.wait(lock_); }

private:
    std::unique_lock<std::mutex> lock_;
};

}  // namespace pgf
