// CSV import/export of multidimensional points — the ingestion path of the
// pgfcli tool (tools/pgfcli.cpp).
//
// Format: one point per line, numeric columns separated by `delimiter`.
// Blank lines and lines starting with '#' are skipped; a single leading
// non-numeric row is treated as a header and skipped. All data rows must
// have the same column count.
#pragma once

#include <string>
#include <vector>

namespace pgf {

/// Reads every point row of `path`. Throws CheckError on unreadable files,
/// non-numeric cells, or ragged rows.
std::vector<std::vector<double>> read_csv_points(const std::string& path,
                                                 char delimiter = ',');

/// Writes rows to `path` (no header). Throws CheckError on I/O failure.
void write_csv_points(const std::string& path,
                      const std::vector<std::vector<double>>& rows,
                      char delimiter = ',');

}  // namespace pgf
