// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pgf {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
public:
    void add(double x);

    /// Merges another accumulator into this one (parallel-combine form of
    /// Welford's update).
    void merge(const OnlineStats& other);

    std::size_t count() const { return n_; }
    double mean() const;
    /// Sample variance (divides by n-1); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. Copies and sorts internally.
double quantile(std::vector<double> values, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bin. Used for dataset
/// distribution reports (paper Fig. 5).
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t bin_count(std::size_t i) const;
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double bin_lo(std::size_t i) const;
    double bin_hi(std::size_t i) const;

    /// Renders a compact ASCII bar chart (one line per bin).
    std::string ascii(std::size_t max_width = 50) const;

private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

}  // namespace pgf
