// Checked assertions for the pgf library.
//
// PGF_CHECK is active in all build types: library invariants and argument
// validation must not silently disappear in release builds, because the
// experiment harness relies on them to catch mis-configured runs.
#pragma once

#include <stdexcept>
#include <string>

namespace pgf {

/// Error thrown when a PGF_CHECK fails. Derives from std::logic_error since
/// a failed check always indicates a programming or configuration error.
class CheckError : public std::logic_error {
public:
    explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Builds the failure message and throws CheckError. Out-of-line so the
/// macro expansion stays small at every call site.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace pgf

/// Validate a condition; throws pgf::CheckError with location info on
/// failure. `msg` is any expression convertible to std::string.
#define PGF_CHECK(cond, msg)                                             \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::pgf::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
        }                                                                \
    } while (0)

/// Shorthand for argument validation with a default message.
#define PGF_REQUIRE(cond) PGF_CHECK(cond, "requirement violated")
