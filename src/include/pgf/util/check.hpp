// Checked assertions for the pgf library.
//
// PGF_CHECK is active in all build types: library invariants and argument
// validation must not silently disappear in release builds, because the
// experiment harness relies on them to catch mis-configured runs.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

namespace pgf {

/// Error thrown when a PGF_CHECK fails. Derives from std::logic_error since
/// a failed check always indicates a programming or configuration error.
///
/// When the failing check fired inside a pgf::analysis audit (or any other
/// scope that installed a CheckReportScope), the auditor's report text is
/// appended to what() and also available separately via report().
class CheckError : public std::logic_error {
public:
    explicit CheckError(const std::string& what) : std::logic_error(what) {}
    CheckError(const std::string& what, std::string report)
        : std::logic_error(report.empty() ? what : what + "\n" + report),
          report_(std::move(report)) {}

    /// Validator report attached by the enclosing CheckReportScope (empty
    /// when the check fired outside any audit).
    const std::string& report() const { return report_; }

private:
    std::string report_;
};

namespace detail {
/// Builds the failure message and throws CheckError. Out-of-line so the
/// macro expansion stays small at every call site.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// RAII scope that attaches diagnostic context to CheckError: while an
/// instance is alive on this thread, any failing PGF_CHECK calls `render`
/// and appends its text to the thrown error. Scopes nest; the innermost
/// scope renders first. pgf::analysis audits install one so that a check
/// tripping mid-audit surfaces the subsystem's partial validator report.
class CheckReportScope {
public:
    explicit CheckReportScope(std::function<std::string()> render);
    ~CheckReportScope();

    CheckReportScope(const CheckReportScope&) = delete;
    CheckReportScope& operator=(const CheckReportScope&) = delete;

    std::string render() const { return render_(); }
    const CheckReportScope* parent() const { return parent_; }

private:
    std::function<std::string()> render_;
    CheckReportScope* parent_;
};
}  // namespace detail

}  // namespace pgf

/// Validate a condition; throws pgf::CheckError with location info on
/// failure. `msg` is any expression convertible to std::string.
#define PGF_CHECK(cond, msg)                                             \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::pgf::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
        }                                                                \
    } while (0)

/// Shorthand for argument validation with a default message.
#define PGF_REQUIRE(cond) PGF_CHECK(cond, "requirement violated")

/// Debug-only check for per-element validation on hot paths (per-cell
/// directory lookups, per-record scans): a full PGF_CHECK in debug builds
/// (and in any build defining PGF_DEBUG_CHECKS — the sanitizer presets turn
/// it on), compiled out entirely otherwise. Use only where the enclosing
/// operation's inputs are already validated once up front and the
/// per-element condition merely restates that invariant. Tests that assert
/// the throwing behavior should guard on PGF_DCHECK_ACTIVE.
#if !defined(NDEBUG) || defined(PGF_DEBUG_CHECKS)
#define PGF_DCHECK_ACTIVE 1
#define PGF_DCHECK(cond, msg) PGF_CHECK(cond, msg)
#else
#define PGF_DCHECK_ACTIVE 0
#define PGF_DCHECK(cond, msg) \
    do {                      \
    } while (0)
#endif
