// Temporary-file plumbing shared by the external-sort spill path, the
// bench harness, and the test suite.
//
// Hoisted from tests/storage/temp_path.hpp (which now delegates here):
// every consumer wants the same two things — names that stay legal file
// names after embedding arbitrary tags (gtest value-parameterized test
// names carry '/', bench dataset tags carry '.'-separated params), and a
// scoped directory that cleans up after itself no matter how the scope
// exits. Paths are deterministic given the same stem/tag, which keeps
// failures debuggable; uniqueness across concurrent processes comes from
// the caller's tag (tests: the test name; extsort: pid + a counter).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace pgf::util {

/// Replaces path separators (and other characters that commonly leak in
/// from generated tags) so `name` stays a single path component.
inline std::string sanitize_path_component(std::string name) {
    for (char& c : name) {
        if (c == '/' || c == '\\' || c == ':') c = '_';
    }
    return name;
}

/// `<system temp>/<stem>[.<tag>]<ext>` with the combined name sanitized.
/// Deterministic for a given stem/tag — callers that need cross-process
/// uniqueness must fold something unique into the tag.
inline std::filesystem::path unique_temp_path(const std::string& stem,
                                              const std::string& tag,
                                              const std::string& ext = ".db") {
    std::string name = stem;
    if (!tag.empty()) {
        name += '.';
        name += tag;
    }
    return std::filesystem::temp_directory_path() /
           (sanitize_path_component(name) + ext);
}

/// RAII temporary directory: created on construction under the system
/// temp root (name = sanitized prefix + pid + a process-wide counter, so
/// concurrent ctest processes and repeated constructions never collide),
/// removed recursively on destruction. Movable, not copyable.
class TempDir {
public:
    explicit TempDir(const std::string& prefix = "pgf") {
        static std::atomic<std::uint64_t> counter{0};
        const std::uint64_t n = counter.fetch_add(1);
        path_ = std::filesystem::temp_directory_path() /
                (sanitize_path_component(prefix) + "." +
                 std::to_string(static_cast<std::uint64_t>(::getpid())) +
                 "." + std::to_string(n));
        std::filesystem::create_directories(path_);
    }

    ~TempDir() { remove_now(); }

    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
    TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
        other.path_.clear();
    }
    TempDir& operator=(TempDir&& other) noexcept {
        if (this != &other) {
            remove_now();
            path_ = std::move(other.path_);
            other.path_.clear();
        }
        return *this;
    }

    const std::filesystem::path& path() const { return path_; }

    /// `<dir>/<name>` with `name` sanitized into one path component.
    std::filesystem::path file(const std::string& name) const {
        return path_ / sanitize_path_component(name);
    }

private:
    void remove_now() {
        if (!path_.empty()) {
            std::error_code ec;  // best-effort cleanup, never throws
            std::filesystem::remove_all(path_, ec);
        }
    }

    std::filesystem::path path_;
};

}  // namespace pgf::util
