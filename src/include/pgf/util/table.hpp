// ASCII table and CSV emission for the experiment harness.
//
// Every bench binary reproduces a table or figure from the paper; TextTable
// renders the same rows the paper reports, and CsvWriter persists the series
// for plotting.
#pragma once

#include <cstddef>
#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace pgf {

/// Formats a double with the given precision, trimming trailing zeros only
/// when `trim` is set.
std::string format_double(double value, int precision = 2, bool trim = false);

/// Column-aligned ASCII table with a header row and separator line.
class TextTable {
public:
    TextTable() = default;
    explicit TextTable(std::vector<std::string> header);

    void set_header(std::vector<std::string> header);
    void add_row(std::vector<std::string> row);

    /// Convenience: builds a row from heterogeneous cell values.
    template <typename... Cells>
    void add(const Cells&... cells) {
        std::vector<std::string> row;
        row.reserve(sizeof...(Cells));
        (row.push_back(to_cell(cells)), ...);
        add_row(std::move(row));
    }

    std::size_t rows() const { return rows_.size(); }

    /// Renders with two-space column gaps and a dashed rule under the header.
    void print(std::ostream& os) const;
    std::string str() const;

    /// Writes the table as CSV (header + rows) to `path`. Returns false if
    /// the file could not be opened.
    bool write_csv(const std::string& path) const;

private:
    template <typename T>
    static std::string to_cell(const T& v) {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(v);
        } else if constexpr (std::is_floating_point_v<T>) {
            return format_double(static_cast<double>(v));
        } else {
            std::ostringstream os;
            os << v;
            return os.str();
        }
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Streams rows of doubles/strings to a CSV file as the experiment runs.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header. Throws CheckError on
    /// failure to open.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    void write_row(const std::vector<std::string>& cells);
    void write_row(std::initializer_list<double> values);

private:
    std::ofstream out_;
};

}  // namespace pgf
