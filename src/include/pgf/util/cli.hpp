// Minimal command-line flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pgf {

class Cli {
public:
    Cli(int argc, const char* const* argv);

    /// True if the flag was present (with or without a value).
    bool has(const std::string& name) const;

    std::string get_string(const std::string& name,
                           const std::string& fallback) const;
    std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
    double get_double(const std::string& name, double fallback) const;
    /// `--name`, `--name=true/1/yes/on` → true; `--name=false/0/no/off` → false.
    bool get_bool(const std::string& name, bool fallback) const;

    const std::vector<std::string>& positional() const { return positional_; }
    const std::string& program() const { return program_; }

private:
    std::optional<std::string> raw(const std::string& name) const;

    std::string program_;
    std::map<std::string, std::string> flags_;  // empty string = bare flag
    std::vector<std::string> positional_;
};

}  // namespace pgf
