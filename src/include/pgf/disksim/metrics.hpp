// Quality metrics for disk assignments (paper Sec. 2.2 definitions).
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/decluster/weights.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

/// Response time of one query: max over disks of the number of buckets
/// fetched from that disk, max_{i=1..M} N_i(q). Assumes unit bucket read
/// time on every disk (the paper's simulator assumption).
std::uint32_t response_time(const std::vector<std::uint32_t>& query_buckets,
                            const Assignment& a);

/// Batched response-time evaluation: epoch-stamped per-disk counters, so a
/// workload of thousands of queries builds no fresh histogram vector per
/// query — the counters are lazily reset by stamp comparison instead of
/// cleared. One accumulator per thread; not safe to share concurrently.
class ResponseAccumulator {
public:
    /// Identical result to the free response_time(), reusing this
    /// accumulator's counters across calls.
    std::uint32_t response_time(
        const std::vector<std::uint32_t>& query_buckets, const Assignment& a);

private:
    std::vector<std::uint64_t> stamp_;
    std::vector<std::uint32_t> count_;
    std::uint64_t epoch_ = 0;
};

/// The paper's "optimal response time" reference: average number of
/// buckets accessed divided by the number of disks.
double optimal_response(double avg_buckets_per_query, std::uint32_t num_disks);

/// Degree of data balance: B_max * M / B_sum over bucket counts; 1.0 is a
/// perfect distribution, larger is worse.
double degree_of_data_balance(const Assignment& a);

/// Same measure over accumulated bucket-region volume instead of counts.
double degree_of_area_balance(const GridStructure& gs, const Assignment& a);

class ThreadPool;

/// For each bucket, the index of its most-proximate other bucket under the
/// given weights. O(N^2), consuming batched weight rows; rows chunk across
/// the optional pool (each row is independent, so pooled output is
/// identical to serial).
///
/// Tie-break contract (pinned — Tables 2/3 depend on it): on equal weight
/// the LOWEST bucket index wins. Regular structures produce exact ties
/// (e.g. the left and right neighbors of a cell in a uniform Cartesian
/// grid), so this is observable behavior, not a don't-care; the serial
/// scan keeps the first strict maximum and the chunked reduction combines
/// chunks in index order with a strict comparison, which preserves it.
std::vector<std::size_t> nearest_neighbors(const BucketWeights& weights,
                                           ThreadPool* pool = nullptr);

/// Number of distinct closest pairs {b, nn(b)} whose two buckets live on
/// the same disk (Tables 2-3 of the paper). Mutual pairs count once.
std::size_t closest_pairs_same_disk(const GridStructure& gs,
                                    const Assignment& a,
                                    WeightKind weight =
                                        WeightKind::kProximityIndex,
                                    ThreadPool* pool = nullptr);

}  // namespace pgf
