// The declustering simulator of Sec. 2.2: processes a batch of range
// queries against a declustered grid file and reports the average response
// time (in bucket-read units), the optimal reference, and balance metrics.
//
// Assumptions, matching the paper: raw disk I/O (no cache), no temporal
// locality between queries, identical bucket read time on every disk.
//
// The expensive part — mapping each query to the set of buckets it touches
// — depends only on the grid file, not on the assignment, so it is exposed
// separately (collect_query_buckets) and reused across every (method, M)
// configuration in a sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/stats.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

/// Aggregate results of a query workload under one assignment.
struct WorkloadStats {
    std::size_t queries = 0;
    double avg_response = 0.0;    ///< mean of max_i N_i(q)
    double max_response = 0.0;
    double avg_buckets = 0.0;     ///< mean buckets touched per query
    double optimal = 0.0;         ///< avg_buckets / M (the paper's reference)
    double data_balance = 0.0;    ///< B_max * M / B_sum
};

/// Buckets touched by each query (the grid-file lookups, done once).
/// Passing a pool fans the lookups across its threads; result[i] always
/// holds query i's buckets in the same order as the serial path, so the
/// output is bit-identical at any thread count. Each chunk reuses one
/// QueryScratch, so the per-query dedup allocation is amortized away.
template <std::size_t D>
std::vector<std::vector<std::uint32_t>> collect_query_buckets(
    const GridFile<D>& gf, const std::vector<Rect<D>>& queries,
    ThreadPool* pool = nullptr) {
    std::vector<std::vector<std::uint32_t>> result(queries.size());
    auto collect_range = [&](std::size_t begin, std::size_t end) {
        QueryScratch scratch;
        for (std::size_t i = begin; i < end; ++i) {
            gf.query_buckets(queries[i], scratch, result[i]);
        }
    };
    if (pool != nullptr && pool->parallelism() > 1 && queries.size() > 1) {
        pool->parallel_for(queries.size(), collect_range);
    } else {
        collect_range(0, queries.size());
    }
    return result;
}

/// Evaluates an assignment against precollected per-query bucket sets.
WorkloadStats evaluate_workload(
    const std::vector<std::vector<std::uint32_t>>& query_buckets,
    const Assignment& a);

}  // namespace pgf
