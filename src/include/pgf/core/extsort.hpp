// External Hilbert sort — the out-of-core half of the build pipeline
// (ROADMAP item 3, DESIGN.md §4i).
//
// Problem: bulk-loading a paged grid file in arrival order touches
// buckets all over the directory, so every insert is a potential page
// miss and the build degenerates to random I/O once the dataset outgrows
// the BufferPool. Sorting the input along the Hilbert curve first makes
// consecutive records land in the same (or an adjacent) bucket, which the
// paged store's batch sessions turn into one page encode per bucket —
// but a 10⁷–10⁸-record input doesn't fit in memory, so the sort itself
// must be external.
//
// Classic three-phase pipeline, streamed end to end:
//
//   1. Run formation — read fixed-size chunks of `chunk_records` points,
//      tag each with its Hilbert key (pgf/sfc/hilbert.hpp over a
//      2^bits-per-axis quantization of the domain), sort chunks in
//      parallel on the ThreadPool, and spill each as one sorted run file.
//      Chunk boundaries depend only on chunk_records — never on thread
//      count or scheduling — so the run set is bit-deterministic.
//   2. Merge reduction — while more than max_fan_in runs exist, k-way
//      merge batches of max_fan_in runs into longer runs (loser tree,
//      bounded per-run read buffers), deleting inputs as they are
//      consumed so disk stays ~2x the data size.
//   3. Streamed final merge — ExtSorter is itself a PointSource: next()
//      pulls from the final loser-tree merge, so the grid-file loader
//      consumes the sorted sequence without it ever being materialized.
//
// Duplicate keys stay in input order: every record carries its global
// sequence number and the sort/merge order is (key, seq), a total order.
// Peak memory = lanes * chunk_records records (run formation) or
// fan_in * merge_buffer_records records (merge), whichever phase is
// running — both independent of N.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pgf/core/point_source.hpp"
#include "pgf/geom/point.hpp"
#include "pgf/sfc/hilbert.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/temp_dir.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf::extsort {

struct ExtSortConfig {
    /// Records per formation chunk == per initial run. Fixed boundaries
    /// make the run set independent of thread count.
    std::size_t chunk_records = 1 << 20;
    /// Hilbert quantization bits per axis; 0 picks min(16, 64/D).
    unsigned hilbert_bits = 0;
    /// Records buffered per run during merges (bounds merge memory at
    /// fan_in * merge_buffer_records * record size).
    std::size_t merge_buffer_records = 1 << 14;
    /// Maximum runs merged at once; more runs force reduction passes.
    std::size_t max_fan_in = 64;
    /// Pool for parallel chunk sorting (null = serial). The sorter never
    /// submits nested work, so a shared pool is fine.
    ThreadPool* pool = nullptr;
    /// Where run files spill; empty = a private RAII temp directory.
    std::filesystem::path temp_dir;
};

struct ExtSortStats {
    std::uint64_t records = 0;      ///< total records sorted
    std::size_t initial_runs = 0;   ///< runs written by formation
    std::uint64_t spill_bytes = 0;  ///< bytes written across all phases
    std::size_t merge_passes = 0;   ///< reduction passes before the final merge
    std::size_t final_fan_in = 0;   ///< runs feeding the streamed merge
};

namespace detail {

// Run-file records are raw little-endian bytes: u64 key, u64 seq, then
// payload (the D point doubles). Key and seq sit at fixed offsets, so the
// merge machinery below is dimension-erased — only `record_bytes` varies.

inline std::uint64_t read_u64le(const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
}

inline void write_u64le(std::byte* p, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
    }
}

/// Buffered sequential writer for one run file.
class RunWriter {
public:
    RunWriter(const std::filesystem::path& path, std::size_t record_bytes,
              std::size_t buffer_records);
    /// Appends `count` consecutive records.
    void append(const std::byte* records, std::size_t count);
    /// Flushes and closes; returns total bytes written.
    std::uint64_t finish();

private:
    std::ofstream out_;
    std::string path_;
    std::size_t record_bytes_;
    std::vector<std::byte> buf_;
    std::size_t buffered_ = 0;  ///< records currently in buf_
    std::uint64_t bytes_ = 0;
};

/// Buffered sequential reader over one run file.
class RunReader {
public:
    RunReader(const std::filesystem::path& path, std::size_t record_bytes,
              std::size_t buffer_records);
    /// Advances to the next record; returns its bytes, or nullptr at EOF.
    const std::byte* advance();

private:
    std::ifstream in_;
    std::string path_;
    std::size_t record_bytes_;
    std::vector<std::byte> buf_;
    std::size_t pos_ = 0;    ///< next record index within buf_
    std::size_t filled_ = 0; ///< records currently in buf_
};

/// Loser-tree k-way merge over sorted run files, ordered by (key, seq).
/// Deletes each input file once it is exhausted.
class KWayMerge {
public:
    KWayMerge(std::vector<std::filesystem::path> runs,
              std::size_t record_bytes, std::size_t buffer_records);
    ~KWayMerge();

    /// Copies up to `max_records` merged records into `out`; returns the
    /// count (0 = merge complete).
    std::size_t next(std::byte* out, std::size_t max_records);

private:
    void replay(std::size_t source);
    bool worse(std::size_t a, std::size_t b) const;
    void retire(std::size_t source);

    std::vector<std::filesystem::path> paths_;
    std::vector<std::unique_ptr<RunReader>> readers_;
    std::size_t record_bytes_;
    // Cached sort key of each source's current record.
    std::vector<std::uint64_t> key_;
    std::vector<std::uint64_t> seq_;
    std::vector<const std::byte*> rec_;
    std::vector<std::size_t> loser_;  ///< internal nodes of the loser tree
    std::size_t winner_ = 0;
    std::size_t alive_ = 0;
};

/// Merges batches of at most `fan_in` runs into single longer runs until
/// no more than `fan_in` remain; reduction output lands in `dir`.
/// Consumed inputs are deleted. Adds the bytes written to *spill_bytes
/// and the passes performed to *passes.
std::vector<std::filesystem::path> reduce_runs(
    std::vector<std::filesystem::path> runs, std::size_t record_bytes,
    std::size_t buffer_records, std::size_t fan_in,
    const std::filesystem::path& dir, std::uint64_t* spill_bytes,
    std::size_t* passes);

}  // namespace detail

/// Streams `input` through an external sort into Hilbert order.
/// Construction performs run formation and any reduction passes; next()
/// then streams the final merge. See the file comment for the memory
/// bound.
template <std::size_t D>
class ExtSorter final : public PointSource<D> {
public:
    static constexpr std::size_t kRecordBytes = (2 + D) * 8;

    ExtSorter(PointSource<D>& input, const Rect<D>& domain,
              ExtSortConfig config = {})
        : cfg_(config) {
        PGF_CHECK(cfg_.chunk_records > 0, "extsort: chunk_records must be > 0");
        PGF_CHECK(cfg_.merge_buffer_records > 0,
                  "extsort: merge_buffer_records must be > 0");
        PGF_CHECK(cfg_.max_fan_in >= 2, "extsort: max_fan_in must be >= 2");
        if (cfg_.hilbert_bits == 0) {
            cfg_.hilbert_bits =
                std::min<unsigned>(16, sfc::kMaxIndexBits / D);
        }
        PGF_CHECK(D * cfg_.hilbert_bits <= sfc::kMaxIndexBits,
                  "extsort: D * hilbert_bits must fit in a 64-bit key");
        if (cfg_.temp_dir.empty()) {
            owned_dir_.emplace("pgf-extsort");
            dir_ = owned_dir_->path();
        } else {
            dir_ = cfg_.temp_dir;
            std::filesystem::create_directories(dir_);
        }
        form_runs(input, domain);
        stats_.initial_runs = runs_.size();
        runs_ = detail::reduce_runs(std::move(runs_), kRecordBytes,
                                    cfg_.merge_buffer_records,
                                    cfg_.max_fan_in, dir_,
                                    &stats_.spill_bytes,
                                    &stats_.merge_passes);
        stats_.final_fan_in = runs_.size();
        if (!runs_.empty()) {
            merge_.emplace(std::move(runs_), kRecordBytes,
                           cfg_.merge_buffer_records);
        }
    }

    /// Next block of the fully sorted sequence.
    std::size_t next(std::span<Point<D>> out) override {
        if (!merge_.has_value() || out.empty()) return 0;
        byte_buf_.resize(out.size() * kRecordBytes);
        const std::size_t n = merge_->next(byte_buf_.data(), out.size());
        for (std::size_t k = 0; k < n; ++k) {
            const std::byte* rec = byte_buf_.data() + k * kRecordBytes;
            for (std::size_t i = 0; i < D; ++i) {
                out[k][i] = std::bit_cast<double>(
                    detail::read_u64le(rec + (2 + i) * 8));
            }
        }
        if (n == 0) merge_.reset();  // release readers promptly
        return n;
    }

    const ExtSortStats& stats() const { return stats_; }
    const ExtSortConfig& config() const { return cfg_; }

    /// Hilbert key of `p` under this sorter's quantization — exposed so
    /// tests can check order without re-deriving the key map.
    std::uint64_t key_of(const Point<D>& p, const Rect<D>& domain) const {
        return hilbert_key(p, domain, cfg_.hilbert_bits);
    }

    /// Quantizes `p` onto the 2^bits-per-axis grid over `domain` (clamping
    /// out-of-domain coordinates, mirroring the scales' locate semantics)
    /// and returns its Hilbert index.
    static std::uint64_t hilbert_key(const Point<D>& p, const Rect<D>& domain,
                                     unsigned bits) {
        std::array<std::uint32_t, D> coords;
        const double cells = static_cast<double>(std::uint64_t{1} << bits);
        for (std::size_t i = 0; i < D; ++i) {
            const double extent = domain.hi[i] - domain.lo[i];
            double t = extent > 0.0 ? (p[i] - domain.lo[i]) / extent : 0.0;
            if (t < 0.0) t = 0.0;
            auto c = static_cast<std::int64_t>(t * cells);
            const auto last = static_cast<std::int64_t>(
                (std::uint64_t{1} << bits) - 1);
            if (c > last) c = last;
            coords[i] = static_cast<std::uint32_t>(c);
        }
        return sfc::hilbert_index_destructive(
            std::span<std::uint32_t>(coords.data(), D), bits);
    }

private:
    struct Keyed {
        std::uint64_t key;
        std::uint64_t seq;
        Point<D> point;
    };

    /// Phase 1: fixed-boundary chunks, parallel key+sort, sequential run
    /// spill. `lanes` chunks are in memory at once.
    void form_runs(PointSource<D>& input, const Rect<D>& domain) {
        const std::size_t lanes = cfg_.pool ? cfg_.pool->parallelism() : 1;
        std::vector<std::vector<Keyed>> chunks(lanes);
        std::vector<std::byte> encode_buf;
        std::uint64_t seq = 0;
        bool exhausted = false;
        while (!exhausted) {
            // Fill up to `lanes` chunks sequentially from the source; the
            // chunk a record lands in depends only on its position.
            std::size_t used = 0;
            for (; used < lanes && !exhausted; ++used) {
                std::vector<Keyed>& chunk = chunks[used];
                chunk.clear();
                chunk.reserve(cfg_.chunk_records);
                if (!fill_chunk(input, chunk, seq)) exhausted = true;
                if (chunk.empty()) break;
                seq += chunk.size();
            }
            const std::size_t ready =
                used > 0 && chunks[used - 1].empty() ? used - 1 : used;
            if (ready == 0) break;
            // Key + sort each chunk independently; the writes below are
            // sequential in chunk order, so scheduling never shows.
            auto sort_one = [&](std::size_t c) {
                for (Keyed& r : chunks[c]) {
                    r.key = hilbert_key(r.point, domain, cfg_.hilbert_bits);
                }
                std::sort(chunks[c].begin(), chunks[c].end(),
                          [](const Keyed& a, const Keyed& b) {
                              return a.key != b.key ? a.key < b.key
                                                    : a.seq < b.seq;
                          });
            };
            if (cfg_.pool != nullptr && ready > 1) {
                cfg_.pool->parallel_for_chunk(
                    ready, 1,
                    [&](std::size_t begin, std::size_t end) {
                        for (std::size_t c = begin; c < end; ++c) sort_one(c);
                    });
            } else {
                for (std::size_t c = 0; c < ready; ++c) sort_one(c);
            }
            for (std::size_t c = 0; c < ready; ++c) {
                spill_run(chunks[c], encode_buf);
            }
        }
        stats_.records = seq;
    }

    /// Reads up to chunk_records points into `chunk` (tagging sequence
    /// numbers from `seq_base`); false once the source is exhausted.
    bool fill_chunk(PointSource<D>& input, std::vector<Keyed>& chunk,
                    std::uint64_t seq_base) {
        std::vector<Point<D>> io(4096);
        while (chunk.size() < cfg_.chunk_records) {
            const std::size_t want =
                std::min(io.size(), cfg_.chunk_records - chunk.size());
            const std::size_t got =
                input.next(std::span<Point<D>>(io.data(), want));
            if (got == 0) return false;
            for (std::size_t k = 0; k < got; ++k) {
                chunk.push_back(
                    Keyed{0, seq_base + chunk.size(), io[k]});
            }
        }
        return true;
    }

    void spill_run(const std::vector<Keyed>& chunk,
                   std::vector<std::byte>& encode_buf) {
        const auto name = "run-" + std::to_string(runs_.size()) + ".bin";
        const std::filesystem::path path = dir_ / name;
        detail::RunWriter writer(path, kRecordBytes,
                                 cfg_.merge_buffer_records);
        encode_buf.resize(kRecordBytes);
        for (const Keyed& r : chunk) {
            std::byte* p = encode_buf.data();
            detail::write_u64le(p, r.key);
            detail::write_u64le(p + 8, r.seq);
            for (std::size_t i = 0; i < D; ++i) {
                detail::write_u64le(p + (2 + i) * 8,
                                    std::bit_cast<std::uint64_t>(r.point[i]));
            }
            writer.append(encode_buf.data(), 1);
        }
        stats_.spill_bytes += writer.finish();
        runs_.push_back(path);
    }

    ExtSortConfig cfg_;
    std::optional<util::TempDir> owned_dir_;
    std::filesystem::path dir_;
    std::vector<std::filesystem::path> runs_;
    std::optional<detail::KWayMerge> merge_;
    std::vector<std::byte> byte_buf_;
    ExtSortStats stats_;
};

}  // namespace pgf::extsort
