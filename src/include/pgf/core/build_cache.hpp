// Memoized dataset + grid-file construction for the experiment harness.
//
// Every figure/table binary builds one or more (dataset, grid file,
// structure) workbenches before sweeping its (scheme, M) configurations.
// Construction is deterministic in the generator Rng, so identical build
// requests — same distribution, same parameters, same Rng position — always
// produce identical workbenches. BuildCache exploits that: the first
// request constructs and the result is shared read-only with every later
// request for the same key.
//
// Byte-identity contract (see DESIGN.md §4d): the bench binaries thread one
// evolving Rng through successive generator calls, so skipping a generation
// on a cache hit would desynchronize the stream for everything built
// afterwards. Each cache entry therefore records the Rng state observed
// right after the original build; a hit restores the caller's Rng to that
// state, leaving the draw sequence exactly as if the build had run. With
// the Rng pre-state embedded in the key, a hit is only possible when the
// original build started from the same stream position — so the restored
// post-state is the one this build would have produced.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <atomic>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>

#include "pgf/util/annotations.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

/// Identity of one deterministic build request. Two requests with equal
/// keys produce bit-identical workbenches, which is what makes sharing the
/// cached object safe.
struct BuildKey {
    /// Distribution name including any non-default generator parameters
    /// (e.g. "hotspot.2d" or "dsmc.4d/s=12/p=15000"). Callers are
    /// responsible for folding every parameter that affects the points
    /// into this string.
    std::string distribution;
    /// Generator stream position at the start of the build. Captures the
    /// seed and how much of the stream earlier builds consumed.
    RngState rng_before;
    /// Requested record count.
    std::uint64_t n = 0;
    /// Dimensionality of the dataset.
    std::uint32_t dims = 0;
    /// Bucket capacity override; 0 = the generator's default.
    std::uint64_t bucket_capacity = 0;

    friend bool operator==(const BuildKey&, const BuildKey&) = default;
};

struct BuildKeyHash {
    std::size_t operator()(const BuildKey& k) const {
        // SplitMix64-style mixing over the scalar fields, seeded by the
        // string hash. Quality matters little (a handful of entries), but
        // keep the full state in play so distinct keys rarely collide.
        std::uint64_t h = std::hash<std::string>{}(k.distribution);
        auto mix = [&h](std::uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        mix(k.rng_before.state);
        mix(k.rng_before.inc);
        mix(k.rng_before.has_spare_normal ? 1 : 0);
        mix(std::bit_cast<std::uint64_t>(k.rng_before.spare_normal));
        mix(k.n);
        mix(k.dims);
        mix(k.bucket_capacity);
        return static_cast<std::size_t>(h);
    }
};

/// Thread-safe memo table mapping BuildKey to an immutable, type-erased
/// build product (typically bench::Workbench<D>). Misses run the caller's
/// build function; hits return the shared product and replay the original
/// build's Rng side effect. Entries live for the process lifetime (or
/// until clear()).
class BuildCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    explicit BuildCache(bool enabled = true) : enabled_(enabled) {}

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool enabled) {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /// Returns the cached product for `key`, building it via
    /// `build(rng)` on a miss. On a hit the build function is not called
    /// and `rng` is fast-forwarded to the state it would have reached by
    /// building. `key.rng_before` must equal `rng.state()` — the caller
    /// snapshots before constructing the key; this is checked.
    ///
    /// Builds are serialized under the cache mutex: concurrent requests
    /// for the same key construct once. The build function must not
    /// re-enter the same BuildCache.
    template <typename T, typename BuildFn>
    std::shared_ptr<const T> get_or_build(const BuildKey& key, Rng& rng,
                                          BuildFn&& build) {
        PGF_CHECK(key.rng_before == rng.state(),
                  "BuildKey.rng_before must snapshot the caller's Rng");
        if (!enabled()) {
            {
                MutexLock lock(mutex_);
                ++stats_.misses;
            }
            return std::make_shared<const T>(build(rng));
        }
        MutexLock lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            PGF_CHECK(it->second.type == std::type_index(typeid(T)),
                      "BuildCache key reused with a different product type");
            ++stats_.hits;
            rng.set_state(it->second.rng_after);
            return std::static_pointer_cast<const T>(it->second.product);
        }
        ++stats_.misses;
        auto product = std::make_shared<const T>(build(rng));
        entries_.emplace(key, Entry{product, std::type_index(typeid(T)),
                                    rng.state()});
        return product;
    }

    Stats stats() const {
        MutexLock lock(mutex_);
        return stats_;
    }

    std::size_t size() const {
        MutexLock lock(mutex_);
        return entries_.size();
    }

    void clear() {
        MutexLock lock(mutex_);
        entries_.clear();
        stats_ = Stats{};
    }

private:
    struct Entry {
        std::shared_ptr<const void> product;
        std::type_index type;
        RngState rng_after;
    };

    std::atomic<bool> enabled_;
    mutable Mutex mutex_;
    std::unordered_map<BuildKey, Entry, BuildKeyHash> entries_
        PGF_GUARDED_BY(mutex_);
    Stats stats_ PGF_GUARDED_BY(mutex_);
};

}  // namespace pgf
