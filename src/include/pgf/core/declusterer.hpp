// pgf::Declusterer — the library's one-call public API.
//
// Typical use:
//
//   pgf::GridFile<3> gf = dataset.build();
//   pgf::Declusterer dec(gf.structure());
//   auto report = dec.run(pgf::Method::kMinimax, /*num_disks=*/16);
//   // report.assignment.disk_of[b] is the disk of bucket b;
//   // report.data_balance / closest_pairs quantify the layout quality.
#pragma once

#include <cstdint>

#include "pgf/decluster/registry.hpp"
#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

/// Quality report accompanying an assignment.
struct DeclusterReport {
    Assignment assignment;
    double data_balance = 0.0;       ///< B_max * M / B_sum (1.0 = perfect)
    double area_balance = 0.0;       ///< volume analogue
    std::size_t closest_pairs = 0;   ///< closest pairs sharing a disk
};

class Declusterer {
public:
    /// Takes ownership of the structural snapshot (see
    /// GridFile<D>::structure()). The snapshot is validated on entry.
    explicit Declusterer(GridStructure structure);

    /// Declusters onto `num_disks` disks and computes the quality metrics.
    DeclusterReport run(Method method, std::uint32_t num_disks,
                        const DeclusterOptions& options = {}) const;

    const GridStructure& structure() const { return structure_; }

private:
    GridStructure structure_;
};

}  // namespace pgf
