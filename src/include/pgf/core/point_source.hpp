// Streaming point producers — the input side of the out-of-core build
// pipeline (pgf/core/extsort.hpp, GridFileCore::bulk_load_stream).
//
// A PointSource delivers a point sequence in bounded blocks: next(out)
// fills a prefix of `out` and returns the count, 0 meaning exhausted.
// Nothing about the interface fixes the block size, and the consumers are
// chunking-independent (bulk_load_stream produces byte-identical grid
// files for any block partition of the same sequence), so sources are
// free to return short fills.
//
// Provided sources:
//   VectorPointSource     — replays an in-memory vector (tests, goldens)
//   GeneratorPointSource  — n points from a stateful generator functor;
//                           the workload layer uses it to stream the
//                           paper's distributions without materializing
//                           them (pgf/workload/datasets.hpp)
//   BinaryFilePointSource — reads the flat binary format written by
//                           write_binary_points (pgfcli ingestion)
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class PointSource {
public:
    virtual ~PointSource() = default;

    /// Fills a prefix of `out` with the next points of the sequence and
    /// returns how many were written; 0 means the source is exhausted
    /// (and every later call must also return 0).
    virtual std::size_t next(std::span<Point<D>> out) = 0;
};

/// Replays an in-memory point vector (borrowed, not copied).
template <std::size_t D>
class VectorPointSource final : public PointSource<D> {
public:
    explicit VectorPointSource(const std::vector<Point<D>>& points)
        : points_(points) {}

    std::size_t next(std::span<Point<D>> out) override {
        std::size_t k = 0;
        while (k < out.size() && pos_ < points_.size()) {
            out[k++] = points_[pos_++];
        }
        return k;
    }

private:
    const std::vector<Point<D>>& points_;
    std::size_t pos_ = 0;
};

/// Exactly `count` points pulled one at a time from a stateful generator.
/// The generator is invoked in sequence order, so RNG-driven generators
/// reproduce their in-memory counterparts point for point.
template <std::size_t D>
class GeneratorPointSource final : public PointSource<D> {
public:
    GeneratorPointSource(std::uint64_t count,
                         std::function<Point<D>()> generate)
        : remaining_(count), generate_(std::move(generate)) {}

    std::size_t next(std::span<Point<D>> out) override {
        std::size_t k = 0;
        while (k < out.size() && remaining_ > 0) {
            out[k++] = generate_();
            --remaining_;
        }
        return k;
    }

private:
    std::uint64_t remaining_;
    std::function<Point<D>()> generate_;
};

// -- flat binary point files -------------------------------------------------
//
// Layout (little-endian): 8-byte magic "PGFPTS1\0", u64 dims, u64 count,
// then count * dims doubles (IEEE-754 bit patterns as u64). The header
// makes dimension mismatches a hard error instead of silent garbage.

namespace binary_points {
inline constexpr char kMagic[8] = {'P', 'G', 'F', 'P', 'T', 'S', '1', '\0'};
inline constexpr std::size_t kHeaderBytes = 24;

inline void write_u64le(std::ostream& out, std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(b, 8);
}

inline std::uint64_t read_u64le(std::istream& in) {
    char b[8] = {};
    in.read(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
             << (8 * i);
    }
    return v;
}
}  // namespace binary_points

/// Writes `points` as a flat binary point file (see layout above).
template <std::size_t D>
void write_binary_points(const std::filesystem::path& path,
                         std::span<const Point<D>> points) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    PGF_CHECK(out.good(), "write_binary_points: cannot open " + path.string());
    out.write(binary_points::kMagic, 8);
    binary_points::write_u64le(out, D);
    binary_points::write_u64le(out, points.size());
    for (const Point<D>& p : points) {
        for (std::size_t i = 0; i < D; ++i) {
            binary_points::write_u64le(out, std::bit_cast<std::uint64_t>(p[i]));
        }
    }
    PGF_CHECK(out.good(), "write_binary_points: write failed for " +
                              path.string());
}

/// Streams a flat binary point file written by write_binary_points.
/// Validates the magic and dimension up front; a truncated body fails at
/// read time.
template <std::size_t D>
class BinaryFilePointSource final : public PointSource<D> {
public:
    explicit BinaryFilePointSource(const std::filesystem::path& path)
        : in_(path, std::ios::binary) {
        PGF_CHECK(in_.good(),
                  "binary points: cannot open " + path.string());
        char magic[8] = {};
        in_.read(magic, 8);
        PGF_CHECK(in_.good() && std::string(magic, 8) ==
                                    std::string(binary_points::kMagic, 8),
                  "binary points: bad magic in " + path.string());
        const std::uint64_t dims = binary_points::read_u64le(in_);
        PGF_CHECK(dims == D, "binary points: file is " +
                                 std::to_string(dims) + "-d, expected " +
                                 std::to_string(D) + "-d: " + path.string());
        remaining_ = binary_points::read_u64le(in_);
        PGF_CHECK(in_.good(),
                  "binary points: truncated header in " + path.string());
        path_ = path.string();
    }

    std::size_t next(std::span<Point<D>> out) override {
        const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(out.size(), remaining_));
        if (want == 0) return 0;
        buf_.resize(want * D * 8);
        in_.read(reinterpret_cast<char*>(buf_.data()),
                 static_cast<std::streamsize>(buf_.size()));
        PGF_CHECK(in_.gcount() == static_cast<std::streamsize>(buf_.size()),
                  "binary points: truncated body in " + path_);
        for (std::size_t k = 0; k < want; ++k) {
            for (std::size_t i = 0; i < D; ++i) {
                const char* w = buf_.data() + (k * D + i) * 8;
                std::uint64_t v = 0;
                for (int b = 0; b < 8; ++b) {
                    v |= static_cast<std::uint64_t>(
                             static_cast<unsigned char>(w[b]))
                         << (8 * b);
                }
                out[k][i] = std::bit_cast<double>(v);
            }
        }
        remaining_ -= want;
        return want;
    }

    std::uint64_t remaining() const { return remaining_; }

private:
    std::ifstream in_;
    std::uint64_t remaining_ = 0;
    std::string path_;
    std::vector<char> buf_;
};

}  // namespace pgf
