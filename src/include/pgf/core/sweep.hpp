// The parallel sweep engine: fans independent experiment configurations —
// (scheme, M, workload) tuples in the paper's studies — across a ThreadPool
// and gathers results in declaration order.
//
// Determinism contract (relied on by the bench harness, which must emit
// byte-identical tables at any thread count):
//   - every task writes only its own result slot, indexed by declaration
//     order, so the gathered vector never depends on scheduling;
//   - tasks needing randomness use SweepTask::seed, a SplitMix64-derived
//     stream keyed by (base seed, task index) — never a shared Rng;
//   - tasks are scheduled one-per-chunk (ThreadPool::parallel_for_chunk
//     with chunk = 1) because sweep configurations have wildly different
//     costs: a minimax run is O(N^2), a disk-modulo run is O(N).
//
// A runner with no pool (or a 1-thread pool) degrades to a plain ordered
// loop, which is what the determinism tests compare against.
//
// The workbenches the sweep tasks read are built once, before the fan-out,
// and shared read-only across every configuration — see
// pgf/core/build_cache.hpp for the memoization layer and its Rng replay
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "pgf/util/annotations.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

/// Per-task context handed to every sweep function.
struct SweepTask {
    std::size_t index = 0;   ///< declaration index of this configuration
    std::uint64_t seed = 0;  ///< deterministic per-task RNG stream seed
};

/// Derives the RNG stream seed of task `task_index` from `base_seed`
/// (SplitMix64 over the pair, so neighbouring indices get uncorrelated
/// streams).
std::uint64_t sweep_task_seed(std::uint64_t base_seed,
                              std::size_t task_index);

/// Timing record of one sweep (for BENCH_sweep.json and regression
/// tracking).
struct SweepStats {
    std::size_t tasks = 0;
    unsigned threads = 1;  ///< pool parallelism the sweep ran with
    double wall_ms = 0.0;
};

class SweepRunner {
public:
    /// Runs sweeps on `pool`; nullptr means strictly serial execution.
    /// The pool must outlive the runner. `base_seed` keys the per-task
    /// seed streams.
    explicit SweepRunner(ThreadPool* pool = nullptr,
                         std::uint64_t base_seed = 0)
        : pool_(pool), base_seed_(base_seed) {}

    /// Parallelism the runner schedules onto (1 when serial).
    unsigned threads() const {
        return pool_ != nullptr ? pool_->parallelism() : 1u;
    }

    /// Fans `fn(config, task)` over every configuration; the returned
    /// vector holds results in declaration order regardless of which
    /// thread ran which task. Result types must be default-constructible.
    template <typename Config, typename Fn>
    auto map(const std::vector<Config>& configs, Fn&& fn)
        -> std::vector<std::invoke_result_t<Fn&, const Config&,
                                            const SweepTask&>> {
        using Result =
            std::invoke_result_t<Fn&, const Config&, const SweepTask&>;
        std::vector<Result> results(configs.size());
        run_indexed(configs.size(), [&](const SweepTask& task) {
            results[task.index] = fn(configs[task.index], task);
        });
        return results;
    }

    /// Low-level form: runs fn once per index in [0, n), one task per
    /// scheduling unit, blocking until all completed. Records SweepStats.
    void run_indexed(std::size_t n,
                     const std::function<void(const SweepTask&)>& fn);

    /// Stats of the most recent run_indexed/map call (by value: several
    /// external threads may share one runner over a common pool, so the
    /// gathered stats are read under the stats mutex).
    SweepStats last() const {
        MutexLock lock(stats_mutex_);
        return last_;
    }

    /// Wall-clock milliseconds accumulated over every sweep so far.
    double total_wall_ms() const {
        MutexLock lock(stats_mutex_);
        return total_wall_ms_;
    }

private:
    ThreadPool* pool_;
    std::uint64_t base_seed_;
    /// Guards the gather-side stats; the per-task result slots need no
    /// lock (each task writes only its own declaration-indexed slot).
    mutable Mutex stats_mutex_;
    SweepStats last_ PGF_GUARDED_BY(stats_mutex_);
    double total_wall_ms_ PGF_GUARDED_BY(stats_mutex_) = 0.0;
};

}  // namespace pgf
