// Record storage backends for the shared grid-file engine.
//
// GridFileCore (grid_file_core.hpp) owns the *access structure* of a grid
// file — linear scales, grid directory, bucket cell boxes, the
// split/refinement rules — and delegates where bucket *records* live to a
// BucketStore policy. A BucketStore models:
//
//   using Records = std::vector<GridRecord<D>>;
//   static constexpr bool kStrictCapacity;    // may a bucket stay oversized?
//   std::size_t bucket_count() const;
//   void reserve(std::size_t buckets);        // bucket-table headroom
//   std::uint32_t create_bucket(const CellBox<D>& cells,
//                               std::size_t reserve_hint);
//   const CellBox<D>& cells(std::uint32_t b) const;   // + mutable overload
//   std::size_t size(std::uint32_t b) const;  // records held by bucket b
//   const Records& read(std::uint32_t b) const;       // query access
//   Records& edit(std::uint32_t b);           // open an edit session on b
//   Records& active();                        // the session's open buffer
//   void split_active(std::uint32_t b, std::uint32_t new_id,
//                     std::size_t pivot, bool continue_with_upper);
//   void commit(std::uint32_t b);             // close the session
//
// Edit protocol: the engine opens at most one session at a time with
// edit(b), mutates the returned buffer, and finishes with commit() on the
// session's *final* bucket. During overflow handling the engine partitions
// active() at `pivot` (lower half [0, pivot), upper half [pivot, end)) and
// calls split_active: the lower half belongs to bucket `b`, the upper half
// to the freshly created `new_id`, and the session continues on whichever
// half `continue_with_upper` selects — the store must durably place the
// other half itself. The reference returned by read() stays valid only
// until the next read() or edit() call on the same store.
//
// kStrictCapacity declares whether the store can represent an oversized
// bucket: the in-memory vector store tolerates one (duplicate-heavy data
// that refinement cannot separate simply leaves the bucket over capacity),
// while a paged store, whose bucket is one fixed-size page, must reject
// the insert instead (the engine raises CheckError).
#pragma once

#include <cstdint>
#include <iterator>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/directory.hpp"

namespace pgf {

/// A stored record: an indexing point plus an opaque record id (in a real
/// deployment the id keys the non-indexed payload).
template <std::size_t D>
struct GridRecord {
    Point<D> point;
    std::uint64_t id = 0;
};

/// The in-memory backend: one record vector per bucket, held resident.
/// Edit sessions operate directly on the stored vectors, so commit() is a
/// no-op and read() hands out the live vector.
template <std::size_t D>
class VectorBucketStore {
public:
    using Records = std::vector<GridRecord<D>>;

    /// One bucket: the record vector plus the box of grid cells it covers.
    /// (The cell box lives here rather than in the engine so restore/save
    /// paths can treat a bucket as one self-contained unit.)
    struct Bucket {
        Records records;
        CellBox<D> cells;
    };

    static constexpr bool kStrictCapacity = false;

    std::size_t bucket_count() const { return buckets_.size(); }
    void reserve(std::size_t buckets) { buckets_.reserve(buckets); }

    std::uint32_t create_bucket(const CellBox<D>& cells,
                                std::size_t reserve_hint) {
        auto id = static_cast<std::uint32_t>(buckets_.size());
        Bucket b;
        b.cells = cells;
        b.records.reserve(reserve_hint);
        buckets_.push_back(std::move(b));
        return id;
    }

    const CellBox<D>& cells(std::uint32_t b) const { return buckets_[b].cells; }
    CellBox<D>& cells(std::uint32_t b) { return buckets_[b].cells; }
    std::size_t size(std::uint32_t b) const {
        return buckets_[b].records.size();
    }
    const Records& read(std::uint32_t b) const { return buckets_[b].records; }

    Records& edit(std::uint32_t b) {
        active_ = b;
        return buckets_[b].records;
    }
    Records& active() { return buckets_[active_].records; }

    void split_active(std::uint32_t b, std::uint32_t new_id, std::size_t pivot,
                      bool continue_with_upper) {
        Records& lower = buckets_[b].records;
        Records& upper = buckets_[new_id].records;
        auto split = lower.begin() + static_cast<std::ptrdiff_t>(pivot);
        upper.assign(std::make_move_iterator(split),
                     std::make_move_iterator(lower.end()));
        lower.erase(split, lower.end());
        active_ = continue_with_upper ? new_id : b;
    }

    void commit(std::uint32_t /*b*/) {}

    /// Direct bucket-table access for in-memory-only paths (GridFile's
    /// bucket() accessor and the snapshot save/restore round trip).
    std::vector<Bucket>& entries() { return buckets_; }
    const std::vector<Bucket>& entries() const { return buckets_; }

private:
    std::vector<Bucket> buckets_;
    std::uint32_t active_ = 0;
};

}  // namespace pgf
