// Partial match queries (Du & Sobolewski's setting, paper Sec. 2).
//
// A partial match query specifies exact values for a subset of the d
// attributes and leaves the rest unspecified:
//     (A_1 = a_1, A_2 = *, ..., A_d = a_d)
// It is the query class for which the disk modulo scheme was proven
// strictly optimal (whenever exactly one attribute is unspecified), and the
// class the fieldwise-xor scheme extends that optimality over.
#pragma once

#include <array>
#include <cstddef>
#include <optional>

#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
struct PartialMatch {
    /// key[i] set = attribute i must equal the value; unset = unspecified.
    std::array<std::optional<double>, D> key{};

    std::size_t specified_count() const {
        std::size_t n = 0;
        for (const auto& k : key) n += k.has_value() ? 1u : 0u;
        return n;
    }

    std::size_t unspecified_count() const { return D - specified_count(); }

    /// A valid partial match query leaves at least one attribute
    /// unspecified (otherwise it is an exact-match lookup).
    bool valid() const { return unspecified_count() >= 1; }
};

/// Convenience factory: pass one std::optional<double> per dimension.
template <typename... Keys>
auto make_partial_match(Keys... keys) {
    constexpr std::size_t D = sizeof...(Keys);
    PartialMatch<D> q;
    q.key = {std::optional<double>(keys)...};
    return q;
}

}  // namespace pgf
