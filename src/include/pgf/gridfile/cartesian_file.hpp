// Cartesian product files (Du & Sobolewski's structure, paper Fig. 1).
//
// A Cartesian product file partitions every attribute's domain into fixed
// intervals and stores EVERY subspace in its own data bucket — no merging.
// It is the structure the index-based declustering theory was developed
// for; the grid file differs exactly by merging sparse subspaces. This
// class exists (a) as the substrate of the analytic experiments and (b) to
// test the paper's observation that on uniform data a grid file behaves
// almost identically to its corresponding Cartesian product file.
//
// Unlike the grid file, the partitioning is fixed at construction; buckets
// can grow without bound (the structure does not adapt to skew — which is
// precisely its weakness).
#pragma once

#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/gridfile/scales.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class CartesianFile {
public:
    using BucketId = std::uint32_t;

    /// Partitions `domain` into shape[i] equal intervals per axis.
    CartesianFile(const Rect<D>& domain,
                  const std::array<std::uint32_t, D>& shape)
        : domain_(domain), shape_(shape) {
        std::uint64_t cells = 1;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_CHECK(shape_[i] >= 1, "every axis needs at least one interval");
            PGF_CHECK(domain_.hi[i] > domain_.lo[i], "empty domain axis");
            cells *= shape_[i];
        }
        buckets_.resize(cells);
    }

    void insert(const Point<D>& p, std::uint64_t id) {
        buckets_[flatten(locate_cell(p))].push_back(GridRecord<D>{p, id});
        ++record_count_;
    }

    void bulk_load(const std::vector<Point<D>>& points,
                   std::uint64_t id_base = 0) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            insert(points[i], id_base + i);
        }
    }

    // -- queries (same contracts as GridFile) -------------------------------

    std::vector<BucketId> query_buckets(const Rect<D>& q) const {
        std::vector<BucketId> out;
        CellBox<D> box;
        if (!query_cell_box(q, &box)) return out;
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            out.push_back(static_cast<BucketId>(flatten(cell)));
        });
        return out;
    }

    std::vector<GridRecord<D>> query_records(const Rect<D>& q) const {
        std::vector<GridRecord<D>> out;
        for (BucketId b : query_buckets(q)) {
            for (const auto& r : buckets_[b]) {
                if (q.contains(r.point)) out.push_back(r);
            }
        }
        return out;
    }

    std::vector<BucketId> query_buckets(const PartialMatch<D>& q) const {
        PGF_CHECK(q.valid(),
                  "partial match must leave at least one attribute free");
        CellBox<D> box;
        for (std::size_t i = 0; i < D; ++i) {
            if (q.key[i].has_value()) {
                std::uint32_t cell = locate_axis(i, *q.key[i]);
                box.lo[i] = cell;
                box.hi[i] = cell + 1;
            } else {
                box.lo[i] = 0;
                box.hi[i] = shape_[i];
            }
        }
        std::vector<BucketId> out;
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            out.push_back(static_cast<BucketId>(flatten(cell)));
        });
        return out;
    }

    // -- structure -----------------------------------------------------------

    const Rect<D>& domain() const { return domain_; }
    const std::array<std::uint32_t, D>& shape() const { return shape_; }
    std::size_t bucket_count() const { return buckets_.size(); }
    std::size_t record_count() const { return record_count_; }

    const std::vector<GridRecord<D>>& bucket(BucketId b) const {
        return buckets_[b];
    }

    /// Largest bucket size — the skew indicator a Cartesian product file
    /// cannot control (grid files split instead).
    std::size_t max_bucket_size() const {
        std::size_t m = 0;
        for (const auto& b : buckets_) m = std::max(m, b.size());
        return m;
    }

    std::array<std::uint32_t, D> locate_cell(const Point<D>& p) const {
        std::array<std::uint32_t, D> cell;
        for (std::size_t i = 0; i < D; ++i) cell[i] = locate_axis(i, p[i]);
        return cell;
    }

    /// Structural snapshot for the declustering layer; bucket order is the
    /// row-major cell order (matching make_cartesian_structure).
    GridStructure structure() const {
        GridStructure gs = make_cartesian_structure(
            {shape_.begin(), shape_.end()},
            {domain_.lo.x.begin(), domain_.lo.x.end()},
            {domain_.hi.x.begin(), domain_.hi.x.end()});
        for (std::size_t b = 0; b < buckets_.size(); ++b) {
            gs.buckets[b].record_count = buckets_[b].size();
        }
        return gs;
    }

private:
    std::uint32_t locate_axis(std::size_t axis, double x) const {
        double t = (x - domain_.lo[axis]) / domain_.extent(axis);
        auto idx = static_cast<std::int64_t>(
            t * static_cast<double>(shape_[axis]));
        idx = std::clamp<std::int64_t>(idx, 0, shape_[axis] - 1);
        return static_cast<std::uint32_t>(idx);
    }

    std::uint64_t flatten(const std::array<std::uint32_t, D>& cell) const {
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_DCHECK(cell[i] < shape_[i], "cartesian cell out of range");
            idx = idx * shape_[i] + cell[i];
        }
        return idx;
    }

    bool query_cell_box(const Rect<D>& q, CellBox<D>* box) const {
        for (std::size_t i = 0; i < D; ++i) {
            if (q.hi[i] <= q.lo[i]) return false;
            if (q.hi[i] <= domain_.lo[i] || q.lo[i] >= domain_.hi[i]) {
                return false;
            }
            std::uint32_t first =
                locate_axis(i, std::max(q.lo[i], domain_.lo[i]));
            std::uint32_t last =
                locate_axis(i, std::min(q.hi[i], domain_.hi[i]));
            // Half-open query: step back when q.hi sits on a boundary.
            double last_lo = domain_.lo[i] + domain_.extent(i) *
                                                 static_cast<double>(last) /
                                                 shape_[i];
            if (last_lo >= q.hi[i] && last > 0) --last;
            box->lo[i] = first;
            box->hi[i] = last + 1;
        }
        return true;
    }

    Rect<D> domain_;
    std::array<std::uint32_t, D> shape_;
    std::vector<std::vector<GridRecord<D>>> buckets_;
    std::size_t record_count_ = 0;
};

}  // namespace pgf
