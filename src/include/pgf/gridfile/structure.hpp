// Dimension-erased snapshot of a grid file's structure.
//
// Declustering operates on buckets (their cell boxes and data-space
// regions), never on individual records, and does not need the compile-time
// dimension the storage layer uses. GridFile<D>::structure() exports this
// snapshot; Cartesian product files build one directly (every cell its own
// bucket); all declustering algorithms, conflict-resolution heuristics and
// quality metrics consume it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// One bucket: the half-open box of grid cells it covers, its data-space
/// region, and how many records it holds.
struct BucketInfo {
    std::vector<std::uint32_t> cell_lo;  ///< inclusive per-axis cell bound
    std::vector<std::uint32_t> cell_hi;  ///< exclusive per-axis cell bound
    std::vector<double> region_lo;       ///< inclusive data-space bound
    std::vector<double> region_hi;       ///< exclusive data-space bound
    std::size_t record_count = 0;

    std::uint64_t cell_count() const {
        std::uint64_t n = 1;
        for (std::size_t i = 0; i < cell_lo.size(); ++i)
            n *= cell_hi[i] - cell_lo[i];
        return n;
    }

    bool merged() const { return cell_count() > 1; }

    double volume() const {
        double v = 1.0;
        for (std::size_t i = 0; i < region_lo.size(); ++i)
            v *= region_hi[i] - region_lo[i];
        return v;
    }
};

/// The whole file: grid shape, data-space domain, and all buckets.
struct GridStructure {
    std::vector<std::uint32_t> shape;  ///< cells per axis
    std::vector<double> domain_lo;
    std::vector<double> domain_hi;
    std::vector<BucketInfo> buckets;

    std::size_t dims() const { return shape.size(); }
    std::size_t bucket_count() const { return buckets.size(); }

    std::uint64_t cell_count() const {
        std::uint64_t n = 1;
        for (std::uint32_t s : shape) n *= s;
        return n;
    }

    std::size_t merged_bucket_count() const {
        std::size_t n = 0;
        for (const auto& b : buckets) n += b.merged() ? 1u : 0u;
        return n;
    }

    double domain_extent(std::size_t axis) const {
        return domain_hi[axis] - domain_lo[axis];
    }

    /// Sanity-checks internal consistency (matching dims, cells covered
    /// exactly once). O(cells); used by tests and bench setup.
    void validate() const;
};

/// Builds the structure of a Cartesian product file: a grid of `shape`
/// cells over the given domain where every cell is its own bucket (in
/// row-major order, last axis fastest) holding `records_per_cell` records.
GridStructure make_cartesian_structure(std::vector<std::uint32_t> shape,
                                       std::vector<double> domain_lo,
                                       std::vector<double> domain_hi,
                                       std::size_t records_per_cell = 1);

}  // namespace pgf
