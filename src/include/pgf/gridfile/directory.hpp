// The grid directory: a d-dimensional array mapping grid cells to buckets.
//
// Several cells may map to the same bucket — that is precisely the "merged
// subspaces" property of grid files (vs. Cartesian product files) that
// forces the conflict-resolution step when extending index-based
// declustering schemes (paper Sec. 2.1, Fig. 1). The directory maintains
// the grid-file invariant that the set of cells sharing a bucket always
// forms an axis-aligned box of cells.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// Half-open box of grid cells: lo[i] <= cell[i] < hi[i].
template <std::size_t D>
struct CellBox {
    std::array<std::uint32_t, D> lo{};
    std::array<std::uint32_t, D> hi{};

    std::uint64_t cell_count() const {
        std::uint64_t n = 1;
        for (std::size_t i = 0; i < D; ++i) n *= hi[i] - lo[i];
        return n;
    }

    std::uint32_t extent(std::size_t i) const { return hi[i] - lo[i]; }

    bool contains(const std::array<std::uint32_t, D>& cell) const {
        for (std::size_t i = 0; i < D; ++i)
            if (cell[i] < lo[i] || cell[i] >= hi[i]) return false;
        return true;
    }

    friend bool operator==(const CellBox&, const CellBox&) = default;
};

/// Invokes `fn(cell)` for every cell in `box`, in row-major order (last
/// axis fastest).
template <std::size_t D, typename Fn>
void for_each_cell(const CellBox<D>& box, Fn&& fn) {
    std::array<std::uint32_t, D> cell = box.lo;
    for (std::size_t i = 0; i < D; ++i) {
        if (box.lo[i] >= box.hi[i]) return;  // empty box
    }
    for (;;) {
        fn(static_cast<const std::array<std::uint32_t, D>&>(cell));
        std::size_t axis = D;
        while (axis-- > 0) {
            if (++cell[axis] < box.hi[axis]) break;
            cell[axis] = box.lo[axis];
            if (axis == 0) return;
        }
    }
}

template <std::size_t D>
class GridDirectory {
public:
    using BucketId = std::uint32_t;
    static constexpr BucketId kNoBucket = ~BucketId{0};

    /// A 1x1x...x1 directory whose single cell maps to `initial`.
    explicit GridDirectory(BucketId initial) {
        shape_.fill(1);
        cells_.assign(1, initial);
    }

    /// A directory of the given shape with every cell set to `fill`
    /// (used when restoring a persisted grid file).
    GridDirectory(const std::array<std::uint32_t, D>& shape, BucketId fill)
        : shape_(shape) {
        std::uint64_t total = 1;
        for (std::uint32_t s : shape_) {
            PGF_CHECK(s >= 1, "directory axes must be non-empty");
            total *= s;
        }
        cells_.assign(total, fill);
    }

    const std::array<std::uint32_t, D>& shape() const { return shape_; }

    std::uint64_t cell_count() const { return cells_.size(); }

    BucketId at(const std::array<std::uint32_t, D>& cell) const {
        return cells_[flatten(cell)];
    }

    void set(const std::array<std::uint32_t, D>& cell, BucketId b) {
        cells_[flatten(cell)] = b;
    }

    /// Splits interval `interval` of axis `axis` in two: the directory
    /// doubles that slice, and both halves initially map to the same
    /// buckets (so every bucket crossing the split becomes / stays merged).
    ///
    /// In row-major layout the new array is a sequence of contiguous runs
    /// of the old one: for each fixed prefix of coordinates before `axis`,
    /// the block of `shape[axis] * inner` old cells (inner = product of the
    /// extents after `axis`) becomes the old slices [0, interval] followed
    /// by the old slices [interval, shape[axis]) — the duplicated slice is
    /// simply copied twice. Two std::copy calls per outer block replace the
    /// per-cell coordinate walk + flatten() of the naive rewrite.
    void expand(std::size_t axis, std::uint32_t interval) {
        PGF_CHECK(axis < D, "directory axis out of range");
        PGF_CHECK(interval < shape_[axis], "directory interval out of range");
        std::uint64_t outer = 1;
        std::uint64_t inner = 1;
        for (std::size_t i = 0; i < axis; ++i) outer *= shape_[i];
        for (std::size_t i = axis + 1; i < D; ++i) inner *= shape_[i];
        const std::uint64_t old_len = shape_[axis];
        const std::uint64_t lead = (std::uint64_t{interval} + 1) * inner;
        const std::uint64_t tail = (old_len - interval) * inner;
        std::vector<BucketId> grown(outer * (old_len + 1) * inner);
        const BucketId* src = cells_.data();
        BucketId* dst = grown.data();
        for (std::uint64_t o = 0; o < outer; ++o) {
            std::copy(src, src + lead, dst);
            std::copy(src + lead - inner, src + old_len * inner, dst + lead);
            src += old_len * inner;
            dst += lead + tail;
        }
        ++shape_[axis];
        cells_ = std::move(grown);
    }

    /// Row-major index of `cell`. Coordinates are validated in debug builds
    /// only (PGF_DCHECK): callers reach this through locate()-clamped cell
    /// coordinates or directory-shaped loops, so the per-cell bounds check
    /// on the query/build hot paths would only restate those invariants.
    std::uint64_t flatten(const std::array<std::uint32_t, D>& cell) const {
        return flatten_unchecked(cell);
    }

    /// Hot-loop form of flatten(): explicitly unchecked in release builds.
    /// The caller guarantees cell[i] < shape()[i] for every axis; debug
    /// builds still assert it.
    std::uint64_t flatten_unchecked(
        const std::array<std::uint32_t, D>& cell) const {
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_DCHECK(cell[i] < shape_[i], "directory cell out of range");
            idx = idx * shape_[i] + cell[i];
        }
        return idx;
    }

private:
    std::array<std::uint32_t, D> shape_;
    std::vector<BucketId> cells_;  // row-major, last axis fastest
};

}  // namespace pgf
