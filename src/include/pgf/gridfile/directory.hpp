// The grid directory: a d-dimensional array mapping grid cells to buckets.
//
// Several cells may map to the same bucket — that is precisely the "merged
// subspaces" property of grid files (vs. Cartesian product files) that
// forces the conflict-resolution step when extending index-based
// declustering schemes (paper Sec. 2.1, Fig. 1). The directory maintains
// the grid-file invariant that the set of cells sharing a bucket always
// forms an axis-aligned box of cells.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// Half-open box of grid cells: lo[i] <= cell[i] < hi[i].
template <std::size_t D>
struct CellBox {
    std::array<std::uint32_t, D> lo{};
    std::array<std::uint32_t, D> hi{};

    std::uint64_t cell_count() const {
        std::uint64_t n = 1;
        for (std::size_t i = 0; i < D; ++i) n *= hi[i] - lo[i];
        return n;
    }

    std::uint32_t extent(std::size_t i) const { return hi[i] - lo[i]; }

    bool contains(const std::array<std::uint32_t, D>& cell) const {
        for (std::size_t i = 0; i < D; ++i)
            if (cell[i] < lo[i] || cell[i] >= hi[i]) return false;
        return true;
    }

    friend bool operator==(const CellBox&, const CellBox&) = default;
};

/// Invokes `fn(cell)` for every cell in `box`, in row-major order (last
/// axis fastest).
template <std::size_t D, typename Fn>
void for_each_cell(const CellBox<D>& box, Fn&& fn) {
    std::array<std::uint32_t, D> cell = box.lo;
    for (std::size_t i = 0; i < D; ++i) {
        if (box.lo[i] >= box.hi[i]) return;  // empty box
    }
    for (;;) {
        fn(static_cast<const std::array<std::uint32_t, D>&>(cell));
        std::size_t axis = D;
        while (axis-- > 0) {
            if (++cell[axis] < box.hi[axis]) break;
            cell[axis] = box.lo[axis];
            if (axis == 0) return;
        }
    }
}

template <std::size_t D>
class GridDirectory {
public:
    using BucketId = std::uint32_t;
    static constexpr BucketId kNoBucket = ~BucketId{0};

    /// A 1x1x...x1 directory whose single cell maps to `initial`.
    explicit GridDirectory(BucketId initial) {
        shape_.fill(1);
        cells_.assign(1, initial);
    }

    /// A directory of the given shape with every cell set to `fill`
    /// (used when restoring a persisted grid file).
    GridDirectory(const std::array<std::uint32_t, D>& shape, BucketId fill)
        : shape_(shape) {
        std::uint64_t total = 1;
        for (std::uint32_t s : shape_) {
            PGF_CHECK(s >= 1, "directory axes must be non-empty");
            total *= s;
        }
        cells_.assign(total, fill);
    }

    const std::array<std::uint32_t, D>& shape() const { return shape_; }

    std::uint64_t cell_count() const { return cells_.size(); }

    BucketId at(const std::array<std::uint32_t, D>& cell) const {
        return cells_[flatten(cell)];
    }

    void set(const std::array<std::uint32_t, D>& cell, BucketId b) {
        cells_[flatten(cell)] = b;
    }

    /// Splits interval `interval` of axis `axis` in two: the directory
    /// doubles that slice, and both halves initially map to the same
    /// buckets (so every bucket crossing the split becomes / stays merged).
    void expand(std::size_t axis, std::uint32_t interval) {
        PGF_CHECK(axis < D, "directory axis out of range");
        PGF_CHECK(interval < shape_[axis], "directory interval out of range");
        std::array<std::uint32_t, D> new_shape = shape_;
        ++new_shape[axis];
        std::vector<BucketId> grown(cells_.size() / shape_[axis] *
                                    new_shape[axis]);
        // Walk the new array; each new cell reads from the old cell whose
        // coordinate along `axis` is collapsed across the duplicated slice.
        CellBox<D> all;
        all.lo.fill(0);
        all.hi = new_shape;
        std::vector<BucketId> old_cells = std::move(cells_);
        std::array<std::uint32_t, D> old_shape = shape_;
        shape_ = new_shape;
        cells_ = std::move(grown);
        for_each_cell(all, [&](const std::array<std::uint32_t, D>& cell) {
            std::array<std::uint32_t, D> src = cell;
            if (src[axis] > interval) --src[axis];
            std::uint64_t src_flat = 0;
            for (std::size_t i = 0; i < D; ++i)
                src_flat = src_flat * old_shape[i] + src[i];
            cells_[flatten(cell)] = old_cells[src_flat];
        });
    }

    std::uint64_t flatten(const std::array<std::uint32_t, D>& cell) const {
        std::uint64_t idx = 0;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_CHECK(cell[i] < shape_[i], "directory cell out of range");
            idx = idx * shape_[i] + cell[i];
        }
        return idx;
    }

private:
    std::array<std::uint32_t, D> shape_;
    std::vector<BucketId> cells_;  // row-major, last axis fastest
};

}  // namespace pgf
