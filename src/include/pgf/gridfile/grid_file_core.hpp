// The shared grid-file engine behind GridFile (in-memory) and
// PagedGridFile (disk-resident).
//
// The grid file of Nievergelt & Hinterberger: an adaptive, symmetric,
// multi-key file structure over d attributes. One linear scale per
// dimension partitions the domain into a grid of cells; a grid directory
// maps each cell to a data bucket; several adjacent cells may share one
// bucket (a "merged" bucket), and the set of cells sharing a bucket always
// forms a box. Buckets hold up to `bucket_capacity` records. When a bucket
// overflows:
//   - if it spans more than one cell along some axis, the bucket is split
//     along an existing grid line (no directory growth);
//   - otherwise the grid itself is refined (a new split point enters one
//     scale and the directory doubles along that axis), after which the
//     bucket spans two cells and is split as above.
//
// GridFileCore owns exactly this access structure — scales, directory,
// cell-box bookkeeping, the relative-longest-axis refinement rule and the
// split loop — and is parameterized over a BucketStore (bucket_store.hpp)
// that decides where record payloads live. The split decisions depend only
// on record *sets* (counts and coordinate multisets), never on record
// order, so every store that receives the same insertion sequence produces
// byte-identical scales, directory, and bucket numbering.
//
// Supports insertion, deletion (without bucket re-merging: emptied buckets
// simply stay under-full, which is the common simplification and does not
// affect any experiment in the paper, which only loads and queries), exact
// multidimensional range queries, partial-match queries, and a structural
// export for the declustering layer.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/bucket_store.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/gridfile/scales.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

/// Reusable cursor for the query hot path: an epoch-stamped visited array
/// replaces the fresh `seen` vector (and its allocation) every query would
/// otherwise pay. Bumping the epoch invalidates all stamps at once, so
/// between queries nothing is cleared. One scratch per thread — instances
/// must not be shared concurrently.
class QueryScratch {
public:
    /// Starts a new query over a file with `bucket_count` buckets.
    void begin(std::size_t bucket_count) {
        if (stamp_.size() < bucket_count) stamp_.resize(bucket_count, 0);
        ++epoch_;
    }

    /// True the first time bucket `b` is seen in the current query.
    bool visit(std::uint32_t b) {
        if (stamp_[b] == epoch_) return false;
        stamp_[b] = epoch_;
        return true;
    }

    /// Scratch buffer for bucket-id lists (used by the record-query paths
    /// so they don't allocate a fresh id vector per query).
    std::vector<std::uint32_t> buckets;

private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t epoch_ = 0;
};

/// Where a grid refinement places the new split inside an overflowing cell.
enum class SplitPolicy {
    kMidpoint,  ///< geometric midpoint of the cell interval (default)
    kMedian,    ///< median of the overflowing bucket's coordinates
};

/// One journaled grid refinement (axis, created interval index, split
/// coordinate) — the unit crash recovery replays to rebuild the scales
/// exactly as the interrupted run grew them.
struct GridRefineOp {
    std::uint32_t axis = 0;
    std::uint32_t interval = 0;
    double coord = 0.0;
};

template <std::size_t D, typename Store>
class GridFileCore {
public:
    using BucketId = std::uint32_t;
    using Records = std::vector<GridRecord<D>>;
    using StoreType = Store;
    static constexpr std::size_t kDims = D;

    // -- modification ------------------------------------------------------

    /// Inserts one record. Out-of-domain coordinates are clamped into the
    /// boundary cells (the scales' locate() semantics). On a strict-
    /// capacity store (paged), records that cannot be separated by
    /// refinement — more identical points than one bucket holds — are
    /// rejected with CheckError instead of growing an oversized bucket.
    void insert(const Point<D>& p, std::uint64_t id) {
        BucketId b = dir_.at(locate_cell(p));
        Records& records = store_.edit(b);
        records.push_back(GridRecord<D>{p, id});
        ++record_count_;
        if (records.size() > bucket_capacity_) {
            b = resolve_overflow(b);
        }
        store_.commit(b);
        note_op_end();
    }

    /// Bulk insertion (ids are assigned 0..n-1 plus `id_base`), structurally
    /// byte-identical to inserting the points one by one in order: same
    /// scales, same directory, same bucket contents in the same order
    /// (asserted by tests/gridfile/test_bulk_load.cpp).
    ///
    /// The fast path over the insert loop: the bucket table is pre-reserved
    /// for the expected final split count, and the per-point locate_cell()
    /// scale walks are batched dimension-major over blocks of points, so
    /// each scale's split array streams once per block instead of being
    /// re-fetched per point. Cached cells stay valid until a grid
    /// refinement changes a scale (and renumbers directory slices); since
    /// locate() counts splits <= x, a single new split at coordinate x
    /// shifts a cached index by exactly (point >= x) along the split axis,
    /// so the unconsumed tail of the block is patched with one compare per
    /// point instead of re-searched. Bucket splits without refinement keep
    /// all cached cells valid — only the directory's cell → bucket mapping
    /// moved, and that is consulted at insertion time.
    void bulk_load(const std::vector<Point<D>>& points,
                   std::uint64_t id_base = 0) {
        const std::size_t n = points.size();
        // Each split adds one bucket and frees ~capacity/2 slots, so the
        // final bucket count is about 2n/capacity; headroom avoids moving
        // the bucket table more than once even on skewed data.
        store_.reserve(store_.bucket_count() + 2 * n / bucket_capacity_ + 8);
        std::size_t i = 0;
        while (i < n) {
            const std::size_t count = std::min(kLoadBlock, n - i);
            load_block(&points[i], count, id_base + i);
            i += count;
        }
    }

    /// Streaming bulk load: drains `source` — any object with
    /// `std::size_t next(std::span<Point<D>> out)` filling a prefix of
    /// `out` and returning the count (0 = exhausted) — through the same
    /// batched block loader as bulk_load, never holding more than one
    /// bounded block of points in memory. Because bulk_load is golden-
    /// tested byte-identical to the one-by-one insert loop, the structure
    /// produced is independent of how the source chunks its output:
    /// streaming the same point sequence yields byte-identical scales,
    /// directory, and bucket contents to an in-memory bulk_load.
    ///
    /// Ids are assigned sequentially from `id_base` in arrival order.
    /// Returns the number of records loaded. On stores that support batch
    /// sessions (PagedBucketStore::begin_batch), page encode/decode is
    /// deferred while consecutive records land in the same bucket — the
    /// reason the pipeline wants Hilbert-ordered input.
    template <typename Source>
    std::uint64_t bulk_load_stream(Source& source, std::uint64_t id_base = 0) {
        // One bounded refill buffer (64 locate blocks ≈ a few hundred KB)
        // is the only point storage this path ever allocates.
        std::vector<Point<D>> buf(64 * kLoadBlock);
        std::uint64_t loaded = 0;
        constexpr bool kBatch = requires { store_.begin_batch(); };
        if constexpr (kBatch) store_.begin_batch();
        for (;;) {
            const std::size_t filled =
                source.next(std::span<Point<D>>(buf.data(), buf.size()));
            if (filled == 0) break;
            PGF_CHECK(filled <= buf.size(),
                      "bulk_load_stream: source overfilled the block");
            // Grow the bucket table for this block's expected splits only;
            // reserve() below the current capacity is a no-op.
            store_.reserve(store_.bucket_count() +
                           2 * filled / bucket_capacity_ + 8);
            std::size_t i = 0;
            while (i < filled) {
                const std::size_t count = std::min(kLoadBlock, filled - i);
                load_block(&buf[i], count, id_base + loaded + i);
                i += count;
            }
            loaded += filled;
        }
        if constexpr (kBatch) store_.end_batch();
        return loaded;
    }

    /// Erases the record with the given point and id; returns true when a
    /// record was removed. Buckets are not re-merged on underflow.
    bool erase(const Point<D>& p, std::uint64_t id) {
        BucketId b = dir_.at(locate_cell(p));
        Records& records = store_.edit(b);
        auto it = std::find_if(records.begin(), records.end(),
                               [&](const GridRecord<D>& r) {
                                   return r.id == id && r.point == p;
                               });
        if (it == records.end()) return false;
        records.erase(it);
        store_.commit(b);
        note_op_end();
        --record_count_;
        return true;
    }

    // -- queries -----------------------------------------------------------

    /// Ids of the buckets whose region overlaps query box `q` — this is the
    /// unit of I/O the response-time metric counts.
    std::vector<BucketId> query_buckets(const Rect<D>& q) const {
        QueryScratch scratch;
        std::vector<BucketId> out;
        query_buckets(q, scratch, out);
        return out;
    }

    /// Allocation-free variant of the hot path: appends the touched bucket
    /// ids into `out` (cleared first) in the same first-visit cell order as
    /// query_buckets(q), deduplicating through the caller's scratch. After
    /// the first few queries neither `scratch` nor `out` reallocates.
    void query_buckets(const Rect<D>& q, QueryScratch& scratch,
                       std::vector<BucketId>& out) const {
        out.clear();
        CellBox<D> box;
        if (!query_cell_box(q, &box)) return;
        scratch.begin(store_.bucket_count());
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (scratch.visit(b)) out.push_back(b);
        });
    }

    /// Exact range query: records whose point lies in `q` (half-open).
    /// On a paged store every touched bucket costs one buffer-pool fetch
    /// (hit or page read).
    std::vector<GridRecord<D>> query_records(const Rect<D>& q) const {
        QueryScratch scratch;
        std::vector<GridRecord<D>> out;
        query_records(q, scratch, out);
        return out;
    }

    /// Scratch-reusing form of the exact range query; `out` is cleared and
    /// reserved for the candidate count before filtering.
    void query_records(const Rect<D>& q, QueryScratch& scratch,
                       std::vector<GridRecord<D>>& out) const {
        out.clear();
        query_buckets(q, scratch, scratch.buckets);
        out.reserve(candidate_records(scratch.buckets));
        for (BucketId b : scratch.buckets) {
            const Records& records = store_.read(b);
            for (const GridRecord<D>& r : records) {
                if (q.contains(r.point)) out.push_back(r);
            }
        }
    }

    /// Buckets a partial match query must read: specified attributes pin
    /// one scale interval, unspecified attributes span the whole axis.
    std::vector<BucketId> query_buckets(const PartialMatch<D>& q) const {
        QueryScratch scratch;
        std::vector<BucketId> out;
        query_buckets(q, scratch, out);
        return out;
    }

    /// Allocation-free partial-match bucket lookup (see the Rect variant).
    void query_buckets(const PartialMatch<D>& q, QueryScratch& scratch,
                       std::vector<BucketId>& out) const {
        PGF_CHECK(q.valid(),
                  "partial match must leave at least one attribute free");
        out.clear();
        CellBox<D> box;
        for (std::size_t i = 0; i < D; ++i) {
            if (q.key[i].has_value()) {
                std::uint32_t cell = scales_[i].locate(*q.key[i]);
                box.lo[i] = cell;
                box.hi[i] = cell + 1;
            } else {
                box.lo[i] = 0;
                box.hi[i] = dir_.shape()[i];
            }
        }
        scratch.begin(store_.bucket_count());
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (scratch.visit(b)) out.push_back(b);
        });
    }

    /// Records whose specified attributes match exactly.
    std::vector<GridRecord<D>> query_records(const PartialMatch<D>& q) const {
        QueryScratch scratch;
        std::vector<GridRecord<D>> out;
        query_records(q, scratch, out);
        return out;
    }

    /// Scratch-reusing form of the partial-match record query.
    void query_records(const PartialMatch<D>& q, QueryScratch& scratch,
                       std::vector<GridRecord<D>>& out) const {
        out.clear();
        query_buckets(q, scratch, scratch.buckets);
        out.reserve(candidate_records(scratch.buckets));
        for (BucketId b : scratch.buckets) {
            const Records& records = store_.read(b);
            for (const GridRecord<D>& r : records) {
                bool match = true;
                for (std::size_t i = 0; i < D && match; ++i) {
                    if (q.key[i].has_value() && r.point[i] != *q.key[i]) {
                        match = false;
                    }
                }
                if (match) out.push_back(r);
            }
        }
    }

    // -- structure accessors ------------------------------------------------

    const Rect<D>& domain() const { return domain_; }
    std::size_t record_count() const { return record_count_; }
    std::size_t bucket_count() const { return store_.bucket_count(); }
    const LinearScale& scale(std::size_t axis) const { return scales_[axis]; }
    const GridDirectory<D>& directory() const { return dir_; }

    std::array<std::uint32_t, D> grid_shape() const { return dir_.shape(); }

    /// Maximum records per bucket (page-derived for paged stores).
    std::size_t bucket_capacity() const { return bucket_capacity_; }
    SplitPolicy split_policy() const { return split_policy_; }

    /// Box of grid cells covered by bucket `b`.
    const CellBox<D>& bucket_cells(BucketId b) const {
        return store_.cells(b);
    }

    /// Records held by bucket `b`. For paged stores this fetches the page
    /// through the buffer pool and the reference is valid only until the
    /// next read or edit on the file.
    const Records& bucket_records(BucketId b) const { return store_.read(b); }

    /// Record count of bucket `b` from metadata alone (no page I/O).
    std::size_t bucket_record_count(BucketId b) const {
        return store_.size(b);
    }

    /// Data-space region covered by bucket `b` (union of its cells).
    Rect<D> bucket_region(BucketId b) const {
        const CellBox<D>& c = store_.cells(b);
        Rect<D> r;
        for (std::size_t i = 0; i < D; ++i) {
            r.lo[i] = scales_[i].interval_lo(c.lo[i]);
            r.hi[i] = scales_[i].interval_hi(c.hi[i] - 1);
        }
        return r;
    }

    /// Number of grid refinements performed so far (scale splits that grew
    /// the directory). Bucket splits along existing grid lines don't count.
    std::uint64_t refinement_count() const { return refinements_; }

    std::size_t merged_bucket_count() const {
        std::size_t n = 0;
        for (BucketId b = 0; b < store_.bucket_count(); ++b) {
            n += store_.cells(b).cell_count() > 1 ? 1u : 0u;
        }
        return n;
    }

    /// Number of buckets that exceed capacity because their records could
    /// not be separated by further refinement (duplicate-heavy data; always
    /// zero on strict-capacity stores, which reject such inserts).
    std::size_t oversized_bucket_count() const {
        std::size_t n = 0;
        for (BucketId b = 0; b < store_.bucket_count(); ++b) {
            n += store_.size(b) > bucket_capacity_ ? 1u : 0u;
        }
        return n;
    }

    /// Grid cell containing point `p` (out-of-domain values clamp).
    std::array<std::uint32_t, D> locate_cell(const Point<D>& p) const {
        std::array<std::uint32_t, D> cell;
        for (std::size_t i = 0; i < D; ++i) cell[i] = scales_[i].locate(p[i]);
        return cell;
    }

    /// Exports the dimension-erased structural snapshot consumed by the
    /// declustering layer.
    GridStructure structure() const {
        GridStructure gs;
        gs.shape.assign(dir_.shape().begin(), dir_.shape().end());
        gs.domain_lo.assign(domain_.lo.x.begin(), domain_.lo.x.end());
        gs.domain_hi.assign(domain_.hi.x.begin(), domain_.hi.x.end());
        gs.buckets.reserve(store_.bucket_count());
        for (BucketId b = 0; b < store_.bucket_count(); ++b) {
            const CellBox<D>& cells = store_.cells(b);
            BucketInfo info;
            info.cell_lo.assign(cells.lo.begin(), cells.lo.end());
            info.cell_hi.assign(cells.hi.begin(), cells.hi.end());
            Rect<D> region = bucket_region(b);
            info.region_lo.assign(region.lo.x.begin(), region.lo.x.end());
            info.region_hi.assign(region.hi.x.begin(), region.hi.x.end());
            info.record_count = store_.size(b);
            gs.buckets.push_back(std::move(info));
        }
        return gs;
    }

    /// Cell box of grid cells overlapping query box `q`; false when the
    /// query misses the domain entirely or is empty.
    bool query_cell_box(const Rect<D>& q, CellBox<D>* box) const {
        for (std::size_t i = 0; i < D; ++i) {
            if (q.hi[i] <= q.lo[i]) return false;
            if (q.hi[i] <= domain_.lo[i] || q.lo[i] >= domain_.hi[i])
                return false;
            // First interval whose upper bound exceeds q.lo[i].
            std::uint32_t first =
                scales_[i].locate(std::max(q.lo[i], domain_.lo[i]));
            // Last interval whose lower bound is below q.hi[i].
            std::uint32_t last =
                scales_[i].locate(std::min(q.hi[i], domain_.hi[i]));
            if (scales_[i].interval_lo(last) >= q.hi[i] && last > 0) --last;
            box->lo[i] = first;
            box->hi[i] = last + 1;
        }
        return true;
    }

protected:
    /// Builds the one-cell, one-bucket initial state. Store constructor
    /// arguments are forwarded in place because stores may be immovable
    /// (the paged store pins a BufferPool).
    template <typename... StoreArgs>
    explicit GridFileCore(const Rect<D>& domain, std::size_t bucket_capacity,
                          SplitPolicy split_policy, StoreArgs&&... store_args)
        : store_(std::forward<StoreArgs>(store_args)...),
          domain_(domain),
          bucket_capacity_(bucket_capacity),
          split_policy_(split_policy),
          dir_(BucketId{0}) {
        PGF_CHECK(bucket_capacity_ >= 2,
                  "bucket capacity must be at least 2");
        scales_.reserve(D);
        for (std::size_t i = 0; i < D; ++i) {
            scales_.emplace_back(domain.lo[i], domain.hi[i]);
        }
        CellBox<D> root;
        root.lo.fill(0);
        for (std::size_t i = 0; i < D; ++i) root.hi[i] = 1;
        store_.create_bucket(root, bucket_capacity_ + 1);
    }

    /// Rebuilds the access structure over a store that already holds the
    /// buckets (crash recovery): no root bucket is created; the scales are
    /// regrown by replaying the journaled refinements in order, and the
    /// directory is retiled from the store's bucket cell boxes, which must
    /// cover the grid exactly (checked — a failed replay cannot silently
    /// produce a half-mapped grid).
    struct RestoreTag {};
    template <typename... StoreArgs>
    GridFileCore(RestoreTag, const Rect<D>& domain,
                 std::size_t bucket_capacity, SplitPolicy split_policy,
                 const std::vector<GridRefineOp>& refines,
                 StoreArgs&&... store_args)
        : store_(std::forward<StoreArgs>(store_args)...),
          domain_(domain),
          bucket_capacity_(bucket_capacity),
          split_policy_(split_policy),
          dir_(BucketId{0}) {
        PGF_CHECK(bucket_capacity_ >= 2,
                  "bucket capacity must be at least 2");
        scales_.reserve(D);
        for (std::size_t i = 0; i < D; ++i) {
            scales_.emplace_back(domain.lo[i], domain.hi[i]);
        }
        for (const GridRefineOp& op : refines) {
            PGF_CHECK(op.axis < D, "restore: refinement axis out of range");
            std::uint32_t interval = 0;
            PGF_CHECK(scales_[op.axis].insert_split(op.coord, &interval),
                      "restore: journaled scale split no longer inserts");
            PGF_CHECK(interval == op.interval,
                      "restore: journaled scale split landed elsewhere");
        }
        refinements_ = refines.size();
        std::array<std::uint32_t, D> shape;
        for (std::size_t i = 0; i < D; ++i) shape[i] = scales_[i].intervals();
        dir_ = GridDirectory<D>(shape, GridDirectory<D>::kNoBucket);
        const std::size_t n = store_.bucket_count();
        PGF_CHECK(n > 0, "restore: at least one bucket required");
        std::uint64_t covered = 0;
        for (BucketId b = 0; b < n; ++b) {
            const CellBox<D>& box = store_.cells(b);
            for (std::size_t i = 0; i < D; ++i) {
                PGF_CHECK(box.lo[i] < box.hi[i] && box.hi[i] <= shape[i],
                          "restore: bucket cell box out of grid");
            }
            for_each_cell(box,
                          [&](const std::array<std::uint32_t, D>& cell) {
                              PGF_CHECK(dir_.at(cell) ==
                                            GridDirectory<D>::kNoBucket,
                                        "restore: overlapping bucket boxes");
                              dir_.set(cell, b);
                          });
            covered += box.cell_count();
            record_count_ += store_.size(b);
        }
        PGF_CHECK(covered == dir_.cell_count(),
                  "restore: buckets must tile the whole grid");
    }

    Store& store() { return store_; }
    const Store& store() const { return store_; }

    Store store_;
    Rect<D> domain_;
    std::size_t bucket_capacity_;
    SplitPolicy split_policy_;
    std::vector<LinearScale> scales_;
    GridDirectory<D> dir_;
    std::size_t record_count_ = 0;
    std::uint64_t refinements_ = 0;
    // Axis and coordinate of the most recent scale split, consumed by
    // bulk_load to patch its cached cell block without re-locating.
    std::size_t last_refine_axis_ = 0;
    double last_refine_coord_ = 0.0;

private:
    /// Block width of the batched locate path: big enough that each
    /// scale's split array streams once per block, small enough that the
    /// cached cell array lives on the stack.
    static constexpr std::size_t kLoadBlock = 256;

    /// Tells durability-aware stores that one logical operation completed
    /// (they journal a commit marker); a no-op for everything else.
    void note_op_end() {
        if constexpr (requires { store_.note_op_end(); }) {
            store_.note_op_end();
        }
    }

    /// One block of the batched bulk load: inserts points[0..count) with
    /// ids id_base..id_base+count-1, batching the scale walks
    /// dimension-major and patching cached cells across refinements (see
    /// bulk_load). Requires count <= kLoadBlock. Byte-identical to
    /// inserting the block's points one by one.
    void load_block(const Point<D>* points, std::size_t count,
                    std::uint64_t id_base) {
        const std::size_t capacity = bucket_capacity_;
        std::array<std::array<std::uint32_t, D>, kLoadBlock> cells;
        locate_cells(points, count, cells.data());
        std::size_t k = 0;
        while (k < count) {
            BucketId b = dir_.at(cells[k]);
            Records& records = store_.edit(b);
            records.push_back(GridRecord<D>{points[k], id_base + k});
            ++k;
            if (records.size() > capacity) {
                const std::uint64_t before = refinements_;
                b = resolve_overflow(b);
                if (refinements_ == before + 1 && k < count) {
                    // One scale split at (axis, x): the cell index of a
                    // cached point along that axis grows by one iff the
                    // point lies at/above the new boundary (the clamped
                    // out-of-domain cases shift consistently too).
                    const std::size_t axis = last_refine_axis_;
                    const double x = last_refine_coord_;
                    for (std::size_t j = k; j < count; ++j) {
                        cells[j][axis] += points[j][axis] >= x ? 1u : 0u;
                    }
                } else if (refinements_ != before && k < count) {
                    // Cascaded refinements (rare, skewed data): give up
                    // on patching and re-locate the tail outright.
                    locate_cells(points + k, count - k, cells.data() + k);
                }
            }
            store_.commit(b);
            note_op_end();
        }
        record_count_ += count;
    }

    /// Total records held by the given buckets — the reserve() upper bound
    /// for record-query results.
    std::size_t candidate_records(
        const std::vector<BucketId>& bucket_ids) const {
        std::size_t n = 0;
        for (BucketId b : bucket_ids) n += store_.size(b);
        return n;
    }

    /// Batched locate_cell over `count` points, dimension-major so each
    /// scale's split array stays cache-resident across the whole block.
    void locate_cells(const Point<D>* points, std::size_t count,
                      std::array<std::uint32_t, D>* cells) const {
        for (std::size_t d = 0; d < D; ++d) {
            const LinearScale& scale = scales_[d];
            for (std::size_t k = 0; k < count; ++k) {
                cells[k][d] = scale.locate(points[k][d]);
            }
        }
    }

    /// Resolves an overflow of the session's active bucket. A split may
    /// leave one half still overflowing (skewed data), so iterate until
    /// resolved or refinement becomes impossible. Returns the bucket that
    /// owns the session's remaining records.
    BucketId resolve_overflow(BucketId overflowing) {
        BucketId b = overflowing;
        while (store_.active().size() > bucket_capacity_) {
            if (max_cell_extent(b) == 1 && !refine_grid(b)) {
                if constexpr (Store::kStrictCapacity) {
                    PGF_CHECK(false,
                              "records cannot be separated (too many "
                              "duplicates for one bucket page)");
                }
                return b;  // cannot separate further; bucket stays oversized
            }
            b = split_bucket(b);
        }
        return b;
    }

    std::uint32_t max_cell_extent(BucketId b) const {
        std::uint32_t m = 0;
        for (std::size_t i = 0; i < D; ++i)
            m = std::max(m, store_.cells(b).extent(i));
        return m;
    }

    /// Refines the grid through bucket `b`'s single cell. Returns false if
    /// no axis can be split (degenerate region or duplicate coordinates).
    bool refine_grid(BucketId b) {
        // Prefer the axis where the cell is relatively longest, so the grid
        // adapts its shape to the data distribution.
        Rect<D> region = bucket_region(b);
        std::array<std::size_t, D> axes;
        for (std::size_t i = 0; i < D; ++i) axes[i] = i;
        std::sort(axes.begin(), axes.end(), [&](std::size_t a, std::size_t c) {
            return region.extent(a) / domain_.extent(a) >
                   region.extent(c) / domain_.extent(c);
        });
        for (std::size_t axis : axes) {
            double lo = region.lo[axis];
            double hi = region.hi[axis];
            if (hi - lo <= domain_.extent(axis) * 1e-12) continue;
            double x = split_coordinate(store_.active(), axis, lo, hi);
            if (!(x > lo && x < hi)) continue;
            std::uint32_t interval = 0;
            if (!scales_[axis].insert_split(x, &interval)) continue;
            dir_.expand(axis, interval);
            shift_cell_boxes(axis, interval);
            ++refinements_;
            last_refine_axis_ = axis;
            last_refine_coord_ = x;
            if constexpr (requires { store_.note_refine(axis, interval, x); })
                store_.note_refine(axis, interval, x);
            return true;
        }
        return false;
    }

    double split_coordinate(const Records& records, std::size_t axis,
                            double lo, double hi) const {
        if (split_policy_ == SplitPolicy::kMidpoint) {
            return 0.5 * (lo + hi);
        }
        // Median policy: the middle record coordinate, clamped strictly
        // inside the cell (falls back to midpoint for degenerate medians).
        std::vector<double> xs;
        xs.reserve(records.size());
        for (const auto& r : records) xs.push_back(r.point[axis]);
        auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
        std::nth_element(xs.begin(), mid, xs.end());
        double x = *mid;
        if (x > lo && x < hi) return x;
        return 0.5 * (lo + hi);
    }

    /// After a directory expansion at (axis, interval), renumber every
    /// bucket's cell box: intervals above the split shift up by one, and
    /// boxes containing the split interval grow by one.
    void shift_cell_boxes(std::size_t axis, std::uint32_t interval) {
        const std::size_t n = store_.bucket_count();
        for (BucketId b = 0; b < n; ++b) {
            CellBox<D>& cells = store_.cells(b);
            if (cells.lo[axis] > interval) {
                ++cells.lo[axis];
                ++cells.hi[axis];
            } else if (cells.hi[axis] > interval) {
                ++cells.hi[axis];
            }
        }
    }

    /// Splits the session's bucket `b` along its widest cell axis at the
    /// middle grid line; returns whichever half is overflowing (or `b` if
    /// neither — callers re-check the loop condition).
    BucketId split_bucket(BucketId b) {
        std::size_t axis = 0;
        std::uint32_t widest = 0;
        for (std::size_t i = 0; i < D; ++i) {
            if (store_.cells(b).extent(i) > widest) {
                widest = store_.cells(b).extent(i);
                axis = i;
            }
        }
        PGF_CHECK(widest >= 2, "split_bucket requires a multi-cell bucket");

        const std::uint32_t mid =
            store_.cells(b).lo[axis] + store_.cells(b).extent(axis) / 2;

        CellBox<D> upper_cells = store_.cells(b);
        upper_cells.lo[axis] = mid;
        // Reserve to capacity + 1 up front (the lower half keeps its
        // original reservation) so neither half reallocates its record
        // vector again before its own overflow.
        const BucketId new_id =
            store_.create_bucket(upper_cells, bucket_capacity_ + 1);
        store_.cells(b).hi[axis] = mid;
        for_each_cell(upper_cells,
                      [&](const std::array<std::uint32_t, D>& cell) {
                          dir_.set(cell, new_id);
                      });

        // Partition the session's records: lower half [0, pivot) stays with
        // b, upper half [pivot, end) moves to new_id. The partition is
        // unstable, but split decisions never depend on record order.
        Records& records = store_.active();
        auto pivot = std::partition(
            records.begin(), records.end(), [&](const GridRecord<D>& r) {
                return scales_[axis].locate(r.point[axis]) < mid;
            });
        const auto pivot_idx =
            static_cast<std::size_t>(pivot - records.begin());
        const std::size_t upper_size = records.size() - pivot_idx;
        const bool continue_with_upper = upper_size > pivot_idx;
        store_.split_active(b, new_id, pivot_idx, continue_with_upper);
        if constexpr (requires { store_.note_split(b, new_id, axis); })
            store_.note_split(b, new_id, axis);
        return continue_with_upper ? new_id : b;
    }
};

}  // namespace pgf
