// Linear scales: the per-dimension partitioning of a grid file's domain.
//
// A scale for a domain interval [lo, hi) holds an ordered list of interior
// split points; k split points define k+1 half-open intervals. The grid
// directory's extent along a dimension is exactly the interval count of
// that dimension's scale (Nievergelt & Hinterberger, Sec. 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pgf {

class LinearScale {
public:
    /// Creates a scale over [lo, hi) with no interior splits (one interval).
    LinearScale(double lo, double hi);

    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /// Number of intervals (= splits + 1).
    std::uint32_t intervals() const {
        return static_cast<std::uint32_t>(splits_.size()) + 1;
    }

    /// Index of the interval containing x. Values below the domain map to
    /// interval 0, values at/above hi map to the last interval (grid files
    /// clamp out-of-domain coordinates to the boundary cells).
    std::uint32_t locate(double x) const;

    /// Lower/upper boundary of interval i. interval_lo(0) == lo(),
    /// interval_hi(intervals()-1) == hi().
    double interval_lo(std::uint32_t i) const;
    double interval_hi(std::uint32_t i) const;

    /// Inserts a split at x, which must lie strictly inside interval
    /// locate(x); returns the index of the interval that was split (the new
    /// interval is at index+1). Returns false without modifying the scale
    /// when x coincides with an existing boundary (the split would create an
    /// empty interval).
    bool insert_split(double x, std::uint32_t* split_interval);

    const std::vector<double>& splits() const { return splits_; }

private:
    double lo_;
    double hi_;
    std::vector<double> splits_;  // sorted, strictly inside (lo, hi)
};

}  // namespace pgf
