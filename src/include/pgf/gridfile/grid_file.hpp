// The grid file of Nievergelt & Hinterberger: an adaptive, symmetric,
// multi-key file structure over d attributes.
//
// Structure: one linear scale per dimension partitions the domain into a
// grid of cells; a grid directory maps each cell to a data bucket; several
// adjacent cells may share one bucket (a "merged" bucket), and the set of
// cells sharing a bucket always forms a box. Buckets hold up to
// `bucket_capacity` records. When a bucket overflows:
//   - if it spans more than one cell along some axis, the bucket is split
//     along an existing grid line (no directory growth);
//   - otherwise the grid itself is refined (a new split point enters one
//     scale and the directory doubles along that axis), after which the
//     bucket spans two cells and is split as above.
//
// This implementation supports insertion, deletion (without bucket
// re-merging: emptied buckets simply stay under-full, which is the common
// simplification and does not affect any experiment in the paper, which
// only loads and queries), exact multidimensional range queries, and a
// structural export for the declustering layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/partial_match.hpp"
#include "pgf/gridfile/scales.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

/// A stored record: an indexing point plus an opaque record id (in a real
/// deployment the id keys the non-indexed payload).
template <std::size_t D>
struct GridRecord {
    Point<D> point;
    std::uint64_t id = 0;
};

/// Reusable cursor for the query hot path: an epoch-stamped visited array
/// replaces the fresh `seen` vector (and its allocation) every query would
/// otherwise pay. Bumping the epoch invalidates all stamps at once, so
/// between queries nothing is cleared. One scratch per thread — instances
/// must not be shared concurrently.
class QueryScratch {
public:
    /// Starts a new query over a file with `bucket_count` buckets.
    void begin(std::size_t bucket_count) {
        if (stamp_.size() < bucket_count) stamp_.resize(bucket_count, 0);
        ++epoch_;
    }

    /// True the first time bucket `b` is seen in the current query.
    bool visit(std::uint32_t b) {
        if (stamp_[b] == epoch_) return false;
        stamp_[b] = epoch_;
        return true;
    }

    /// Scratch buffer for bucket-id lists (used by the record-query paths
    /// so they don't allocate a fresh id vector per query).
    std::vector<std::uint32_t> buckets;

private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t epoch_ = 0;
};

/// Where a grid refinement places the new split inside an overflowing cell.
enum class SplitPolicy {
    kMidpoint,  ///< geometric midpoint of the cell interval (default)
    kMedian,    ///< median of the overflowing bucket's coordinates
};

template <std::size_t D>
class GridFile {
public:
    using BucketId = std::uint32_t;

    struct Config {
        /// Maximum records per bucket. The paper fixes bucket size at 4 KB;
        /// with ~72-byte records that is 56 records per bucket.
        std::size_t bucket_capacity = 56;
        SplitPolicy split_policy = SplitPolicy::kMidpoint;
    };

    struct Bucket {
        std::vector<GridRecord<D>> records;
        CellBox<D> cells;
    };

    GridFile(const Rect<D>& domain, Config config = {})
        : domain_(domain), config_(config), dir_(BucketId{0}) {
        PGF_CHECK(config_.bucket_capacity >= 2,
                  "bucket capacity must be at least 2");
        scales_.reserve(D);
        for (std::size_t i = 0; i < D; ++i) {
            scales_.emplace_back(domain.lo[i], domain.hi[i]);
        }
        Bucket root;
        root.cells.lo.fill(0);
        for (std::size_t i = 0; i < D; ++i) root.cells.hi[i] = 1;
        root.records.reserve(config_.bucket_capacity + 1);
        buckets_.push_back(std::move(root));
    }

    /// Reassembles a grid file from persisted state: the per-dimension
    /// scales and the buckets (records + cell boxes). The directory is
    /// rebuilt from the bucket cell boxes, which must tile the grid exactly
    /// (checked). Used by the storage layer's load path.
    static GridFile restore(const Rect<D>& domain, Config config,
                            std::vector<LinearScale> scales,
                            std::vector<Bucket> buckets) {
        PGF_CHECK(scales.size() == D, "restore: one scale per dimension");
        PGF_CHECK(!buckets.empty(), "restore: at least one bucket required");
        GridFile gf(domain, config);
        gf.scales_ = std::move(scales);
        std::array<std::uint32_t, D> shape;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_CHECK(gf.scales_[i].lo() == domain.lo[i] &&
                          gf.scales_[i].hi() == domain.hi[i],
                      "restore: scale does not span the domain");
            shape[i] = gf.scales_[i].intervals();
        }
        gf.dir_ = GridDirectory<D>(shape, GridDirectory<D>::kNoBucket);
        gf.buckets_ = std::move(buckets);
        gf.record_count_ = 0;
        std::uint64_t covered = 0;
        for (BucketId b = 0; b < gf.buckets_.size(); ++b) {
            const CellBox<D>& box = gf.buckets_[b].cells;
            for (std::size_t i = 0; i < D; ++i) {
                PGF_CHECK(box.lo[i] < box.hi[i] && box.hi[i] <= shape[i],
                          "restore: bucket cell box out of grid");
            }
            for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
                PGF_CHECK(gf.dir_.at(cell) == GridDirectory<D>::kNoBucket,
                          "restore: overlapping bucket cell boxes");
                gf.dir_.set(cell, b);
            });
            covered += box.cell_count();
            gf.record_count_ += gf.buckets_[b].records.size();
        }
        PGF_CHECK(covered == gf.dir_.cell_count(),
                  "restore: buckets must tile the whole grid");
        return gf;
    }

    // -- modification ------------------------------------------------------

    /// Inserts one record. Out-of-domain coordinates are clamped into the
    /// boundary cells (the scales' locate() semantics).
    void insert(const Point<D>& p, std::uint64_t id) {
        BucketId b = dir_.at(locate_cell(p));
        buckets_[b].records.push_back(GridRecord<D>{p, id});
        ++record_count_;
        if (buckets_[b].records.size() > config_.bucket_capacity) {
            handle_overflow(b);
        }
    }

    /// Bulk insertion (ids are assigned 0..n-1 plus `id_base`), structurally
    /// byte-identical to inserting the points one by one in order: same
    /// scales, same directory, same bucket contents in the same order
    /// (asserted by tests/gridfile/test_bulk_load.cpp).
    ///
    /// The fast path over the insert loop: the bucket table is pre-reserved
    /// for the expected final split count, and the per-point locate_cell()
    /// scale walks are batched dimension-major over blocks of points, so
    /// each scale's split array streams once per block instead of being
    /// re-fetched per point. Cached cells stay valid until a grid
    /// refinement changes a scale (and renumbers directory slices); since
    /// locate() counts splits <= x, a single new split at coordinate x
    /// shifts a cached index by exactly (point >= x) along the split axis,
    /// so the unconsumed tail of the block is patched with one compare per
    /// point instead of re-searched. Bucket splits without refinement keep
    /// all cached cells valid — only the directory's cell → bucket mapping
    /// moved, and that is consulted at insertion time.
    void bulk_load(const std::vector<Point<D>>& points,
                   std::uint64_t id_base = 0) {
        const std::size_t n = points.size();
        // Each split adds one bucket and frees ~capacity/2 slots, so the
        // final bucket count is about 2n/capacity; headroom avoids moving
        // the bucket table more than once even on skewed data.
        buckets_.reserve(buckets_.size() + 2 * n / config_.bucket_capacity +
                         8);
        const std::size_t capacity = config_.bucket_capacity;
        constexpr std::size_t kBlock = 256;
        std::array<std::array<std::uint32_t, D>, kBlock> cells;
        std::size_t i = 0;
        while (i < n) {
            const std::size_t count = std::min(kBlock, n - i);
            locate_cells(&points[i], count, cells.data());
            std::size_t k = 0;
            while (k < count) {
                const BucketId b = dir_.at(cells[k]);
                std::vector<GridRecord<D>>& records = buckets_[b].records;
                records.push_back(
                    GridRecord<D>{points[i + k], id_base + i + k});
                ++k;
                if (records.size() > capacity) {
                    const std::uint64_t before = refinements_;
                    handle_overflow(b);
                    if (refinements_ == before + 1 && k < count) {
                        // One scale split at (axis, x): the cell index of a
                        // cached point along that axis grows by one iff the
                        // point lies at/above the new boundary (the clamped
                        // out-of-domain cases shift consistently too).
                        const std::size_t axis = last_refine_axis_;
                        const double x = last_refine_coord_;
                        for (std::size_t j = k; j < count; ++j) {
                            cells[j][axis] +=
                                points[i + j][axis] >= x ? 1u : 0u;
                        }
                    } else if (refinements_ != before && k < count) {
                        // Cascaded refinements (rare, skewed data): give up
                        // on patching and re-locate the tail outright.
                        locate_cells(&points[i + k], count - k,
                                     cells.data() + k);
                    }
                }
            }
            record_count_ += count;
            i += count;
        }
    }

    /// Erases the record with the given point and id; returns true when a
    /// record was removed. Buckets are not re-merged on underflow.
    bool erase(const Point<D>& p, std::uint64_t id) {
        Bucket& b = buckets_[dir_.at(locate_cell(p))];
        auto it = std::find_if(b.records.begin(), b.records.end(),
                               [&](const GridRecord<D>& r) {
                                   return r.id == id && r.point == p;
                               });
        if (it == b.records.end()) return false;
        b.records.erase(it);
        --record_count_;
        return true;
    }

    // -- queries -----------------------------------------------------------

    /// Ids of the buckets whose region overlaps query box `q` — this is the
    /// unit of I/O the response-time metric counts.
    std::vector<BucketId> query_buckets(const Rect<D>& q) const {
        QueryScratch scratch;
        std::vector<BucketId> out;
        query_buckets(q, scratch, out);
        return out;
    }

    /// Allocation-free variant of the hot path: appends the touched bucket
    /// ids into `out` (cleared first) in the same first-visit cell order as
    /// query_buckets(q), deduplicating through the caller's scratch. After
    /// the first few queries neither `scratch` nor `out` reallocates.
    void query_buckets(const Rect<D>& q, QueryScratch& scratch,
                       std::vector<BucketId>& out) const {
        out.clear();
        CellBox<D> box;
        if (!query_cell_box(q, &box)) return;
        scratch.begin(buckets_.size());
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (scratch.visit(b)) out.push_back(b);
        });
    }

    /// Exact range query: records whose point lies in `q` (half-open).
    std::vector<GridRecord<D>> query_records(const Rect<D>& q) const {
        QueryScratch scratch;
        std::vector<GridRecord<D>> out;
        query_records(q, scratch, out);
        return out;
    }

    /// Scratch-reusing form of the exact range query; `out` is cleared and
    /// reserved for the candidate count before filtering.
    void query_records(const Rect<D>& q, QueryScratch& scratch,
                       std::vector<GridRecord<D>>& out) const {
        out.clear();
        query_buckets(q, scratch, scratch.buckets);
        out.reserve(candidate_records(scratch.buckets));
        const Bucket* const buckets = buckets_.data();
        for (BucketId b : scratch.buckets) {
            const std::vector<GridRecord<D>>& records = buckets[b].records;
            for (const GridRecord<D>& r : records) {
                if (q.contains(r.point)) out.push_back(r);
            }
        }
    }

    /// Buckets a partial match query must read: specified attributes pin
    /// one scale interval, unspecified attributes span the whole axis.
    std::vector<BucketId> query_buckets(const PartialMatch<D>& q) const {
        QueryScratch scratch;
        std::vector<BucketId> out;
        query_buckets(q, scratch, out);
        return out;
    }

    /// Allocation-free partial-match bucket lookup (see the Rect variant).
    void query_buckets(const PartialMatch<D>& q, QueryScratch& scratch,
                       std::vector<BucketId>& out) const {
        PGF_CHECK(q.valid(),
                  "partial match must leave at least one attribute free");
        out.clear();
        CellBox<D> box;
        for (std::size_t i = 0; i < D; ++i) {
            if (q.key[i].has_value()) {
                std::uint32_t cell = scales_[i].locate(*q.key[i]);
                box.lo[i] = cell;
                box.hi[i] = cell + 1;
            } else {
                box.lo[i] = 0;
                box.hi[i] = dir_.shape()[i];
            }
        }
        scratch.begin(buckets_.size());
        for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
            BucketId b = dir_.at(cell);
            if (scratch.visit(b)) out.push_back(b);
        });
    }

    /// Records whose specified attributes match exactly.
    std::vector<GridRecord<D>> query_records(const PartialMatch<D>& q) const {
        QueryScratch scratch;
        std::vector<GridRecord<D>> out;
        query_records(q, scratch, out);
        return out;
    }

    /// Scratch-reusing form of the partial-match record query.
    void query_records(const PartialMatch<D>& q, QueryScratch& scratch,
                       std::vector<GridRecord<D>>& out) const {
        out.clear();
        query_buckets(q, scratch, scratch.buckets);
        out.reserve(candidate_records(scratch.buckets));
        const Bucket* const buckets = buckets_.data();
        for (BucketId b : scratch.buckets) {
            const std::vector<GridRecord<D>>& records = buckets[b].records;
            for (const GridRecord<D>& r : records) {
                bool match = true;
                for (std::size_t i = 0; i < D && match; ++i) {
                    if (q.key[i].has_value() && r.point[i] != *q.key[i]) {
                        match = false;
                    }
                }
                if (match) out.push_back(r);
            }
        }
    }

    // -- structure accessors ------------------------------------------------

    const Rect<D>& domain() const { return domain_; }
    const Config& config() const { return config_; }
    std::size_t record_count() const { return record_count_; }
    std::size_t bucket_count() const { return buckets_.size(); }
    const Bucket& bucket(BucketId b) const { return buckets_[b]; }
    const LinearScale& scale(std::size_t axis) const { return scales_[axis]; }
    const GridDirectory<D>& directory() const { return dir_; }

    std::array<std::uint32_t, D> grid_shape() const { return dir_.shape(); }

    /// Data-space region covered by bucket `b` (union of its cells).
    Rect<D> bucket_region(BucketId b) const {
        const CellBox<D>& c = buckets_[b].cells;
        Rect<D> r;
        for (std::size_t i = 0; i < D; ++i) {
            r.lo[i] = scales_[i].interval_lo(c.lo[i]);
            r.hi[i] = scales_[i].interval_hi(c.hi[i] - 1);
        }
        return r;
    }

    /// Number of grid refinements performed so far (scale splits that grew
    /// the directory). Bucket splits along existing grid lines don't count.
    std::uint64_t refinement_count() const { return refinements_; }

    std::size_t merged_bucket_count() const {
        std::size_t n = 0;
        for (const auto& b : buckets_) n += b.cells.cell_count() > 1 ? 1u : 0u;
        return n;
    }

    /// Number of buckets that exceed capacity because their records could
    /// not be separated by further refinement (duplicate-heavy data).
    std::size_t oversized_bucket_count() const {
        std::size_t n = 0;
        for (const auto& b : buckets_)
            n += b.records.size() > config_.bucket_capacity ? 1u : 0u;
        return n;
    }

    /// Grid cell containing point `p` (out-of-domain values clamp).
    std::array<std::uint32_t, D> locate_cell(const Point<D>& p) const {
        std::array<std::uint32_t, D> cell;
        for (std::size_t i = 0; i < D; ++i) cell[i] = scales_[i].locate(p[i]);
        return cell;
    }

    /// Exports the dimension-erased structural snapshot consumed by the
    /// declustering layer.
    GridStructure structure() const {
        GridStructure gs;
        gs.shape.assign(dir_.shape().begin(), dir_.shape().end());
        gs.domain_lo.assign(domain_.lo.x.begin(), domain_.lo.x.end());
        gs.domain_hi.assign(domain_.hi.x.begin(), domain_.hi.x.end());
        gs.buckets.reserve(buckets_.size());
        for (BucketId b = 0; b < buckets_.size(); ++b) {
            BucketInfo info;
            info.cell_lo.assign(buckets_[b].cells.lo.begin(),
                                buckets_[b].cells.lo.end());
            info.cell_hi.assign(buckets_[b].cells.hi.begin(),
                                buckets_[b].cells.hi.end());
            Rect<D> region = bucket_region(b);
            info.region_lo.assign(region.lo.x.begin(), region.lo.x.end());
            info.region_hi.assign(region.hi.x.begin(), region.hi.x.end());
            info.record_count = buckets_[b].records.size();
            gs.buckets.push_back(std::move(info));
        }
        return gs;
    }

    /// Cell box of grid cells overlapping query box `q`; false when the
    /// query misses the domain entirely or is empty.
    bool query_cell_box(const Rect<D>& q, CellBox<D>* box) const {
        for (std::size_t i = 0; i < D; ++i) {
            if (q.hi[i] <= q.lo[i]) return false;
            if (q.hi[i] <= domain_.lo[i] || q.lo[i] >= domain_.hi[i])
                return false;
            // First interval whose upper bound exceeds q.lo[i].
            std::uint32_t first = scales_[i].locate(std::max(q.lo[i], domain_.lo[i]));
            // Last interval whose lower bound is below q.hi[i].
            std::uint32_t last = scales_[i].locate(std::min(q.hi[i], domain_.hi[i]));
            if (scales_[i].interval_lo(last) >= q.hi[i] && last > 0) --last;
            box->lo[i] = first;
            box->hi[i] = last + 1;
        }
        return true;
    }

private:
    /// Total records held by the given buckets — the reserve() upper bound
    /// for record-query results. The bucket-table base pointer is hoisted
    /// into a local so the size loads don't re-read buckets_.data() per id.
    std::size_t candidate_records(
        const std::vector<BucketId>& bucket_ids) const {
        const Bucket* const buckets = buckets_.data();
        std::size_t n = 0;
        for (BucketId b : bucket_ids) n += buckets[b].records.size();
        return n;
    }

    /// Batched locate_cell over `count` points, dimension-major so each
    /// scale's split array stays cache-resident across the whole block.
    void locate_cells(const Point<D>* points, std::size_t count,
                      std::array<std::uint32_t, D>* cells) const {
        for (std::size_t d = 0; d < D; ++d) {
            const LinearScale& scale = scales_[d];
            for (std::size_t k = 0; k < count; ++k) {
                cells[k][d] = scale.locate(points[k][d]);
            }
        }
    }

    void handle_overflow(BucketId overflowing) {
        // A split may leave one half still overflowing (skewed data), so
        // iterate until resolved or refinement becomes impossible.
        BucketId b = overflowing;
        while (buckets_[b].records.size() > config_.bucket_capacity) {
            if (max_cell_extent(b) == 1 && !refine_grid(b)) {
                return;  // cannot separate further; bucket stays oversized
            }
            b = split_bucket(b);
        }
    }

    std::uint32_t max_cell_extent(BucketId b) const {
        std::uint32_t m = 0;
        for (std::size_t i = 0; i < D; ++i)
            m = std::max(m, buckets_[b].cells.extent(i));
        return m;
    }

    /// Refines the grid through bucket `b`'s single cell. Returns false if
    /// no axis can be split (degenerate region or duplicate coordinates).
    bool refine_grid(BucketId b) {
        // Prefer the axis where the cell is relatively longest, so the grid
        // adapts its shape to the data distribution.
        Rect<D> region = bucket_region(b);
        std::array<std::size_t, D> axes;
        for (std::size_t i = 0; i < D; ++i) axes[i] = i;
        std::sort(axes.begin(), axes.end(), [&](std::size_t a, std::size_t c) {
            return region.extent(a) / domain_.extent(a) >
                   region.extent(c) / domain_.extent(c);
        });
        for (std::size_t axis : axes) {
            double lo = region.lo[axis];
            double hi = region.hi[axis];
            if (hi - lo <= domain_.extent(axis) * 1e-12) continue;
            double x = split_coordinate(b, axis, lo, hi);
            if (!(x > lo && x < hi)) continue;
            std::uint32_t interval = 0;
            if (!scales_[axis].insert_split(x, &interval)) continue;
            dir_.expand(axis, interval);
            shift_cell_boxes(axis, interval);
            ++refinements_;
            last_refine_axis_ = axis;
            last_refine_coord_ = x;
            return true;
        }
        return false;
    }

    double split_coordinate(BucketId b, std::size_t axis, double lo,
                            double hi) const {
        if (config_.split_policy == SplitPolicy::kMidpoint) {
            return 0.5 * (lo + hi);
        }
        // Median policy: the middle record coordinate, clamped strictly
        // inside the cell (falls back to midpoint for degenerate medians).
        std::vector<double> xs;
        xs.reserve(buckets_[b].records.size());
        for (const auto& r : buckets_[b].records) xs.push_back(r.point[axis]);
        auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
        std::nth_element(xs.begin(), mid, xs.end());
        double x = *mid;
        if (x > lo && x < hi) return x;
        return 0.5 * (lo + hi);
    }

    /// After a directory expansion at (axis, interval), renumber every
    /// bucket's cell box: intervals above the split shift up by one, and
    /// boxes containing the split interval grow by one.
    void shift_cell_boxes(std::size_t axis, std::uint32_t interval) {
        for (Bucket& bucket : buckets_) {
            if (bucket.cells.lo[axis] > interval) {
                ++bucket.cells.lo[axis];
                ++bucket.cells.hi[axis];
            } else if (bucket.cells.hi[axis] > interval) {
                ++bucket.cells.hi[axis];
            }
        }
    }

    /// Splits bucket `b` along its widest cell axis at the middle grid
    /// line; returns whichever half is overflowing (or `b` if neither —
    /// callers re-check the loop condition).
    BucketId split_bucket(BucketId b) {
        std::size_t axis = 0;
        std::uint32_t widest = 0;
        for (std::size_t i = 0; i < D; ++i) {
            if (buckets_[b].cells.extent(i) > widest) {
                widest = buckets_[b].cells.extent(i);
                axis = i;
            }
        }
        PGF_CHECK(widest >= 2, "split_bucket requires a multi-cell bucket");

        const std::uint32_t mid =
            buckets_[b].cells.lo[axis] + buckets_[b].cells.extent(axis) / 2;

        auto new_id = static_cast<BucketId>(buckets_.size());
        Bucket upper;
        upper.cells = buckets_[b].cells;
        upper.cells.lo[axis] = mid;
        buckets_[b].cells.hi[axis] = mid;
        // Reserve to capacity + 1 up front (the lower half keeps its
        // original reservation) so neither half reallocates its record
        // vector again before its own overflow.
        upper.records.reserve(config_.bucket_capacity + 1);

        // Move records whose cell falls in the upper half.
        auto& lower_records = buckets_[b].records;
        auto pivot = std::partition(
            lower_records.begin(), lower_records.end(),
            [&](const GridRecord<D>& r) {
                return scales_[axis].locate(r.point[axis]) < mid;
            });
        upper.records.assign(std::make_move_iterator(pivot),
                             std::make_move_iterator(lower_records.end()));
        lower_records.erase(pivot, lower_records.end());

        buckets_.push_back(std::move(upper));
        for_each_cell(buckets_[new_id].cells,
                      [&](const std::array<std::uint32_t, D>& cell) {
                          dir_.set(cell, new_id);
                      });

        return buckets_[new_id].records.size() >
                       buckets_[b].records.size()
                   ? new_id
                   : b;
    }

    Rect<D> domain_;
    Config config_;
    std::vector<LinearScale> scales_;
    GridDirectory<D> dir_;
    std::vector<Bucket> buckets_;
    std::size_t record_count_ = 0;
    std::uint64_t refinements_ = 0;
    // Axis and coordinate of the most recent scale split, consumed by
    // bulk_load to patch its cached cell block without re-locating.
    std::size_t last_refine_axis_ = 0;
    double last_refine_coord_ = 0.0;
};

}  // namespace pgf
