// The in-memory grid file: GridFileCore over a VectorBucketStore (every
// bucket's records held resident in a std::vector).
//
// All structure and query logic lives in the shared engine
// (grid_file_core.hpp); this subclass adds the in-memory-only surface:
// direct Bucket access (records + cell box as one unit, consumed by the
// snapshot save path) and restore(), which reassembles a file from
// persisted scales and buckets.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/gridfile/bucket_store.hpp"
#include "pgf/gridfile/directory.hpp"
#include "pgf/gridfile/grid_file_core.hpp"
#include "pgf/gridfile/scales.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
class GridFile : public GridFileCore<D, VectorBucketStore<D>> {
    using Core = GridFileCore<D, VectorBucketStore<D>>;

public:
    using BucketId = std::uint32_t;
    using Bucket = typename VectorBucketStore<D>::Bucket;

    struct Config {
        /// Maximum records per bucket. The paper fixes bucket size at 4 KB;
        /// with ~72-byte records that is 56 records per bucket.
        std::size_t bucket_capacity = 56;
        SplitPolicy split_policy = SplitPolicy::kMidpoint;
    };

    GridFile(const Rect<D>& domain, Config config = {})
        : Core(domain, config.bucket_capacity, config.split_policy),
          config_(config) {}

    const Config& config() const { return config_; }

    /// Direct access to a bucket's records and cell box (in-memory only;
    /// the storage layer's save path serializes buckets through this).
    const Bucket& bucket(BucketId b) const {
        return this->store_.entries()[b];
    }

    /// Reassembles a grid file from persisted state: the per-dimension
    /// scales and the buckets (records + cell boxes). The directory is
    /// rebuilt from the bucket cell boxes, which must tile the grid exactly
    /// (checked). Used by the storage layer's load path.
    static GridFile restore(const Rect<D>& domain, Config config,
                            std::vector<LinearScale> scales,
                            std::vector<Bucket> buckets) {
        PGF_CHECK(scales.size() == D, "restore: one scale per dimension");
        PGF_CHECK(!buckets.empty(), "restore: at least one bucket required");
        GridFile gf(domain, config);
        gf.scales_ = std::move(scales);
        std::array<std::uint32_t, D> shape;
        for (std::size_t i = 0; i < D; ++i) {
            PGF_CHECK(gf.scales_[i].lo() == domain.lo[i] &&
                          gf.scales_[i].hi() == domain.hi[i],
                      "restore: scale does not span the domain");
            shape[i] = gf.scales_[i].intervals();
        }
        gf.dir_ = GridDirectory<D>(shape, GridDirectory<D>::kNoBucket);
        gf.store_.entries() = std::move(buckets);
        gf.record_count_ = 0;
        std::uint64_t covered = 0;
        const auto& entries = gf.store_.entries();
        for (BucketId b = 0; b < entries.size(); ++b) {
            const CellBox<D>& box = entries[b].cells;
            for (std::size_t i = 0; i < D; ++i) {
                PGF_CHECK(box.lo[i] < box.hi[i] && box.hi[i] <= shape[i],
                          "restore: bucket cell box out of grid");
            }
            for_each_cell(box, [&](const std::array<std::uint32_t, D>& cell) {
                PGF_CHECK(gf.dir_.at(cell) == GridDirectory<D>::kNoBucket,
                          "restore: overlapping bucket cell boxes");
                gf.dir_.set(cell, b);
            });
            covered += box.cell_count();
            gf.record_count_ += entries[b].records.size();
        }
        PGF_CHECK(covered == gf.dir_.cell_count(),
                  "restore: buckets must tile the whole grid");
        return gf;
    }

private:
    Config config_;
};

}  // namespace pgf
