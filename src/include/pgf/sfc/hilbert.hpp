// d-dimensional Hilbert curve (Skilling's transpose algorithm).
//
// This is the H(i_1, ..., i_d) mapping used by the HCAM declustering scheme
// (Faloutsos & Bhagwat): grid cells are linearized along the Hilbert curve
// of the smallest enclosing power-of-two cube and then assigned to disks
// round-robin.
//
// Reference: J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc.
// 707 (2004). The algorithm transforms coordinates to/from the "transpose"
// bit layout of the Hilbert index in O(d * b) bit operations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pgf::sfc {

/// Maximum total index width supported (dims * bits must fit in 64 bits).
inline constexpr unsigned kMaxIndexBits = 64;

/// Hilbert index of the cell at `coords` in a [0, 2^bits)^dims cube.
/// Requirements: 1 <= dims, 1 <= bits, dims*bits <= 64, coords[i] < 2^bits.
std::uint64_t hilbert_index(std::span<const std::uint32_t> coords,
                            unsigned bits);

/// Same mapping, but transforms `coords` in place (their values are
/// clobbered) and performs no allocation — for hot loops that key
/// millions of points, where the copying overload's per-call vector
/// dominates. Same requirements as hilbert_index.
std::uint64_t hilbert_index_destructive(std::span<std::uint32_t> coords,
                                        unsigned bits);

/// Inverse mapping: cell coordinates of Hilbert index `index`.
std::vector<std::uint32_t> hilbert_coords(std::uint64_t index, unsigned dims,
                                          unsigned bits);

/// Smallest b such that every extent fits: max_i ceil(log2(shape[i])),
/// at least 1. Used to pick the enclosing cube for non-square grids.
unsigned bits_for_shape(std::span<const std::uint32_t> shape);

}  // namespace pgf::sfc
