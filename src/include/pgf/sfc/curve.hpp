// Unified front-end over the supported cell linearizations.
//
// HCAM uses the Hilbert curve; the others exist for the linearization
// ablation (paper Sec. 2.3 cites the comparison of Hilbert vs column scan,
// z-curve and Gray coding).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pgf::sfc {

enum class CurveKind {
    kHilbert,   ///< Hilbert curve (HCAM's H function)
    kMorton,    ///< Z-order / bit interleaving
    kGray,      ///< Gray-code ordering
    kScan,      ///< column-wise (row-major mixed-radix) scan
};

std::string to_string(CurveKind kind);

/// Linearizes the cell at `coords` within a grid of the given `shape`
/// (shape[i] = number of cells along axis i; coords[i] < shape[i]).
///
/// Power-of-two curves (Hilbert/Morton/Gray) are evaluated in the smallest
/// enclosing 2^b cube; kScan uses the exact mixed-radix row-major index.
/// Ranks are therefore not necessarily dense for non-power-of-two shapes;
/// they are used only for ordering and round-robin disk assignment, where
/// gaps are harmless.
std::uint64_t linearize(CurveKind kind, std::span<const std::uint32_t> coords,
                        std::span<const std::uint32_t> shape);

/// All cells of `shape` sorted by their rank along the curve.
std::vector<std::vector<std::uint32_t>> curve_order(
    CurveKind kind, std::span<const std::uint32_t> shape);

}  // namespace pgf::sfc
