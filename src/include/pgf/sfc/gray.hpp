// Gray-code linearization.
//
// Cells are ordered so that the interleaved coordinate bits, read as a
// binary-reflected Gray code, increase along the curve: the rank of a cell
// is gray_decode(morton_index(cell)). Consecutive cells differ in exactly
// one interleaved bit, which gives this curve better locality than plain
// Z-order but worse than Hilbert.
#pragma once

#include <cstdint>
#include <span>

namespace pgf::sfc {

/// Binary-reflected Gray code of `v`.
std::uint64_t gray_encode(std::uint64_t v);

/// Inverse of gray_encode.
std::uint64_t gray_decode(std::uint64_t g);

/// Rank of the cell along the Gray-code curve in a [0, 2^bits)^dims cube.
std::uint64_t gray_index(std::span<const std::uint32_t> coords, unsigned bits);

}  // namespace pgf::sfc
