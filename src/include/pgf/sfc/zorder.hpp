// Z-order (Morton) linearization: straight bit interleaving.
//
// One of the alternative linearizations the paper's Sec. 2.3 cites when
// noting that the Hilbert curve clusters better than column-wise scan,
// z-curve and Gray coding; included for the linearization ablation bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pgf::sfc {

/// Morton index of `coords` in a [0, 2^bits)^dims cube. Bit q of coordinate
/// i maps to index bit q*dims + (dims-1-i), i.e. dimension 0 is the most
/// significant within each bit plane (matching hilbert_index's convention).
std::uint64_t morton_index(std::span<const std::uint32_t> coords,
                           unsigned bits);

/// Inverse of morton_index.
std::vector<std::uint32_t> morton_coords(std::uint64_t index, unsigned dims,
                                         unsigned bits);

}  // namespace pgf::sfc
