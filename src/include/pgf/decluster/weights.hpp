// Fast bucket-pair edge weights for the proximity-based algorithms.
//
// The minimax/MST/SSP algorithms evaluate O(N^2) bucket-pair weights; this
// class stores bucket regions in a flat structure-of-arrays layout and
// computes the Kamel–Faloutsos proximity index (or the Euclidean-center
// ablation weight) without touching the per-bucket vectors, keeping the
// inner loop allocation- and indirection-free. Semantics are identical to
// pgf::proximity_index / pgf::center_similarity (unit-tested equal).
//
// Batched kernels: the quadratic scans never need one isolated weight —
// they consume whole rows (all weights of one bucket against a column
// range) or tiles. fill_row()/fill_row_range()/fill_tile() compute those
// batches over a dimension-major copy of the regions, with the inner loop
// specialized for D = 2/3/4 (constant trip count, branchless select) so
// the compiler can vectorize across the column index. Every batched value
// is bit-identical to operator()(i, j): same expressions, same evaluation
// order, same rounding (unit-tested).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

class BucketWeights {
public:
    explicit BucketWeights(const GridStructure& gs,
                           WeightKind kind = WeightKind::kProximityIndex)
        : dims_(gs.dims()), count_(gs.bucket_count()), kind_(kind) {
        lo_.resize(count_ * dims_);
        hi_.resize(count_ * dims_);
        col_lo_.resize(count_ * dims_);
        col_hi_.resize(count_ * dims_);
        inv_domain_.resize(dims_);
        for (std::size_t i = 0; i < dims_; ++i) {
            inv_domain_[i] = 1.0 / gs.domain_extent(i);
        }
        for (std::size_t b = 0; b < count_; ++b) {
            for (std::size_t i = 0; i < dims_; ++i) {
                lo_[b * dims_ + i] = gs.buckets[b].region_lo[i];
                hi_[b * dims_ + i] = gs.buckets[b].region_hi[i];
                // Dimension-major mirror: the row kernels stream bucket j
                // for fixed dimension i, so column access is contiguous.
                col_lo_[i * count_ + b] = gs.buckets[b].region_lo[i];
                col_hi_[i * count_ + b] = gs.buckets[b].region_hi[i];
            }
        }
    }

    std::size_t size() const { return count_; }
    std::size_t dims() const { return dims_; }
    WeightKind kind() const { return kind_; }

    /// Weight of the bucket pair (a, b); symmetric, in (0, 1].
    double operator()(std::size_t a, std::size_t b) const {
        const double* alo = &lo_[a * dims_];
        const double* ahi = &hi_[a * dims_];
        const double* blo = &lo_[b * dims_];
        const double* bhi = &hi_[b * dims_];
        if (kind_ == WeightKind::kProximityIndex) {
            double p = 1.0;
            for (std::size_t i = 0; i < dims_; ++i) {
                double overlap = (ahi[i] < bhi[i] ? ahi[i] : bhi[i]) -
                                 (alo[i] > blo[i] ? alo[i] : blo[i]);
                if (overlap > 0.0) {
                    p *= (1.0 + 2.0 * overlap * inv_domain_[i]) / 3.0;
                } else {
                    double gap = -overlap * inv_domain_[i];
                    double one_minus = gap < 1.0 ? 1.0 - gap : 0.0;
                    p *= one_minus * one_minus / 3.0;
                }
            }
            return p;
        }
        // Euclidean-center similarity (ablation weight).
        double d2 = 0.0;
        for (std::size_t i = 0; i < dims_; ++i) {
            double d = 0.5 * ((alo[i] + ahi[i]) - (blo[i] + bhi[i])) *
                       inv_domain_[i];
            d2 += d * d;
        }
        return 1.0 / (1.0 + std::sqrt(d2));
    }

    /// Writes operator()(i, j) for j in [col_begin, col_end) to
    /// out[j - col_begin]. Includes the self weight when i is in range.
    void fill_row_range(std::size_t i, std::size_t col_begin,
                        std::size_t col_end, double* out) const {
        if (kind_ == WeightKind::kProximityIndex) {
            switch (dims_) {
                case 2: prox_row<2>(i, col_begin, col_end, out); return;
                case 3: prox_row<3>(i, col_begin, col_end, out); return;
                case 4: prox_row<4>(i, col_begin, col_end, out); return;
                default: prox_row<0>(i, col_begin, col_end, out); return;
            }
        }
        switch (dims_) {
            case 2: center_row<2>(i, col_begin, col_end, out); return;
            case 3: center_row<3>(i, col_begin, col_end, out); return;
            case 4: center_row<4>(i, col_begin, col_end, out); return;
            default: center_row<0>(i, col_begin, col_end, out); return;
        }
    }

    /// Whole row i: out[j] = operator()(i, j) for j in [0, size()).
    void fill_row(std::size_t i, double* out) const {
        fill_row_range(i, 0, count_, out);
    }

    /// Tile [row_begin, row_end) x [col_begin, col_end), row-major with
    /// stride (col_end - col_begin). Column-blocked so one block of the
    /// dimension-major arrays stays cache-resident across the tile's rows.
    void fill_tile(std::size_t row_begin, std::size_t row_end,
                   std::size_t col_begin, std::size_t col_end,
                   double* out) const {
        const std::size_t cols = col_end - col_begin;
        constexpr std::size_t kColBlock = 512;
        for (std::size_t cb = col_begin; cb < col_end; cb += kColBlock) {
            const std::size_t ce = std::min(cb + kColBlock, col_end);
            for (std::size_t r = row_begin; r < row_end; ++r) {
                fill_row_range(r, cb, ce,
                               out + (r - row_begin) * cols +
                                   (cb - col_begin));
            }
        }
    }

private:
    // D > 0: compile-time dimension count (unrolled, vectorizable);
    // D == 0: runtime dims_ fallback. The loop bodies mirror operator()
    // term for term — the ternary select computes both branch values and
    // picks one, which rounds identically to the branchy scalar code.
    template <std::size_t D>
    void prox_row(std::size_t a, std::size_t col_begin, std::size_t col_end,
                  double* out) const {
        const std::size_t dims = D == 0 ? dims_ : D;
        const double* alo = &lo_[a * dims_];
        const double* ahi = &hi_[a * dims_];
        for (std::size_t j = col_begin; j < col_end; ++j) {
            double p = 1.0;
            for (std::size_t i = 0; i < dims; ++i) {
                const double blo = col_lo_[i * count_ + j];
                const double bhi = col_hi_[i * count_ + j];
                const double overlap = (ahi[i] < bhi ? ahi[i] : bhi) -
                                       (alo[i] > blo ? alo[i] : blo);
                const double pos = (1.0 + 2.0 * overlap * inv_domain_[i]) / 3.0;
                const double gap = -overlap * inv_domain_[i];
                const double one_minus = gap < 1.0 ? 1.0 - gap : 0.0;
                const double neg = one_minus * one_minus / 3.0;
                p *= overlap > 0.0 ? pos : neg;
            }
            out[j - col_begin] = p;
        }
    }

    template <std::size_t D>
    void center_row(std::size_t a, std::size_t col_begin, std::size_t col_end,
                    double* out) const {
        const std::size_t dims = D == 0 ? dims_ : D;
        const double* alo = &lo_[a * dims_];
        const double* ahi = &hi_[a * dims_];
        for (std::size_t j = col_begin; j < col_end; ++j) {
            double d2 = 0.0;
            for (std::size_t i = 0; i < dims; ++i) {
                const double blo = col_lo_[i * count_ + j];
                const double bhi = col_hi_[i * count_ + j];
                const double d =
                    0.5 * ((alo[i] + ahi[i]) - (blo + bhi)) * inv_domain_[i];
                d2 += d * d;
            }
            out[j - col_begin] = 1.0 / (1.0 + std::sqrt(d2));
        }
    }

    std::size_t dims_;
    std::size_t count_;
    WeightKind kind_;
    std::vector<double> lo_;          // count x dims, bucket-major
    std::vector<double> hi_;
    std::vector<double> col_lo_;      // dims x count, dimension-major
    std::vector<double> col_hi_;
    std::vector<double> inv_domain_;
};

/// Prim cost view of a similarity matrix: operator() and the row kernel
/// return the negated weight, so a minimum spanning tree under this cost is
/// the maximum-similarity tree. Negation is exact, so batched rows stay
/// bit-identical to -weights(i, j).
class NegatedBucketWeights {
public:
    explicit NegatedBucketWeights(const BucketWeights& weights)
        : weights_(&weights) {}

    std::size_t size() const { return weights_->size(); }

    double operator()(std::size_t a, std::size_t b) const {
        return -(*weights_)(a, b);
    }

    void fill_row_range(std::size_t i, std::size_t col_begin,
                        std::size_t col_end, double* out) const {
        weights_->fill_row_range(i, col_begin, col_end, out);
        for (std::size_t k = 0; k < col_end - col_begin; ++k) out[k] = -out[k];
    }

private:
    const BucketWeights* weights_;
};

}  // namespace pgf
