// Fast bucket-pair edge weights for the proximity-based algorithms.
//
// The minimax/MST/SSP algorithms evaluate O(N^2) bucket-pair weights; this
// class stores bucket regions in a flat structure-of-arrays layout and
// computes the Kamel–Faloutsos proximity index (or the Euclidean-center
// ablation weight) without touching the per-bucket vectors, keeping the
// inner loop allocation- and indirection-free. Semantics are identical to
// pgf::proximity_index / pgf::center_similarity (unit-tested equal).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

class BucketWeights {
public:
    explicit BucketWeights(const GridStructure& gs,
                           WeightKind kind = WeightKind::kProximityIndex)
        : dims_(gs.dims()), count_(gs.bucket_count()), kind_(kind) {
        lo_.resize(count_ * dims_);
        hi_.resize(count_ * dims_);
        inv_domain_.resize(dims_);
        for (std::size_t i = 0; i < dims_; ++i) {
            inv_domain_[i] = 1.0 / gs.domain_extent(i);
        }
        for (std::size_t b = 0; b < count_; ++b) {
            for (std::size_t i = 0; i < dims_; ++i) {
                lo_[b * dims_ + i] = gs.buckets[b].region_lo[i];
                hi_[b * dims_ + i] = gs.buckets[b].region_hi[i];
            }
        }
    }

    std::size_t size() const { return count_; }

    /// Weight of the bucket pair (a, b); symmetric, in (0, 1].
    double operator()(std::size_t a, std::size_t b) const {
        const double* alo = &lo_[a * dims_];
        const double* ahi = &hi_[a * dims_];
        const double* blo = &lo_[b * dims_];
        const double* bhi = &hi_[b * dims_];
        if (kind_ == WeightKind::kProximityIndex) {
            double p = 1.0;
            for (std::size_t i = 0; i < dims_; ++i) {
                double overlap = (ahi[i] < bhi[i] ? ahi[i] : bhi[i]) -
                                 (alo[i] > blo[i] ? alo[i] : blo[i]);
                if (overlap > 0.0) {
                    p *= (1.0 + 2.0 * overlap * inv_domain_[i]) / 3.0;
                } else {
                    double gap = -overlap * inv_domain_[i];
                    double one_minus = gap < 1.0 ? 1.0 - gap : 0.0;
                    p *= one_minus * one_minus / 3.0;
                }
            }
            return p;
        }
        // Euclidean-center similarity (ablation weight).
        double d2 = 0.0;
        for (std::size_t i = 0; i < dims_; ++i) {
            double d = 0.5 * ((alo[i] + ahi[i]) - (blo[i] + bhi[i])) *
                       inv_domain_[i];
            d2 += d * d;
        }
        return 1.0 / (1.0 + std::sqrt(d2));
    }

private:
    std::size_t dims_;
    std::size_t count_;
    WeightKind kind_;
    std::vector<double> lo_;          // count x dims, bucket-major
    std::vector<double> hi_;
    std::vector<double> inv_domain_;
};

}  // namespace pgf
