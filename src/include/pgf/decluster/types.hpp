// Common vocabulary of the declustering layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf {

/// A disk assignment: disk_of[b] is the disk (in [0, num_disks)) holding
/// bucket b.
struct Assignment {
    std::vector<std::uint32_t> disk_of;
    std::uint32_t num_disks = 0;

    /// Number of buckets per disk.
    std::vector<std::size_t> load() const {
        std::vector<std::size_t> n(num_disks, 0);
        for (std::uint32_t d : disk_of) {
            PGF_CHECK(d < num_disks, "assignment references unknown disk");
            ++n[d];
        }
        return n;
    }
};

/// Declustering algorithms studied by the paper (plus the extra curve
/// variants used in the linearization ablation).
enum class Method {
    kDiskModulo,    ///< DM: (i1+...+id) mod M  [Du & Sobolewski]
    kFieldwiseXor,  ///< FX: (i1^...^id) mod M  [Kim & Pramanik]
    kHilbert,       ///< HCAM: Hilbert rank mod M  [Faloutsos & Bhagwat]
    kMorton,        ///< ablation: Z-order rank mod M
    kGrayCode,      ///< ablation: Gray-code rank mod M
    kScan,          ///< ablation: row-major scan rank mod M
    kMst,           ///< similarity-based MST declustering  [Fang et al.]
    kSsp,           ///< similarity-based short spanning path  [Fang et al.]
    kSimilarityGraph,  ///< KL-refined similarity graph  [Liu & Shekhar]
    kMinimax,       ///< minimax spanning tree (this paper's Algorithm 2)
};

std::string to_string(Method m);

/// True for the index-based schemes that assign disks per *cell* and hence
/// need conflict resolution on merged grid-file buckets.
bool is_index_based(Method m);

/// Tie-breaking heuristics for merged buckets (paper Sec. 2.1).
enum class ConflictHeuristic {
    kRandom,
    kMostFrequent,
    kDataBalance,  ///< Algorithm 1
    kAreaBalance,
};

std::string to_string(ConflictHeuristic h);

/// Edge-weight measure for the proximity-based algorithms.
enum class WeightKind {
    kProximityIndex,     ///< Kamel & Faloutsos proximity (paper's choice)
    kCenterSimilarity,   ///< ablation: Euclidean-center similarity
};

std::string to_string(WeightKind w);

}  // namespace pgf
