// Online (incremental) minimax declustering.
//
// The paper's Algorithm 2 is an offline pass over the whole grid file, but
// the files it targets *grow*: a running simulation keeps appending
// snapshots, and every bucket split creates a bucket the existing
// assignment says nothing about. OnlineMinimax extends the minimax
// criterion to that setting: each arriving bucket goes to the admissible
// disk whose members have the smallest *maximum* proximity to it —
// exactly the tree-growth rule of Algorithm 2 applied one vertex at a
// time — where "admissible" enforces the same perfect-balance cap
// ceil(N/M) the offline algorithm guarantees.
//
// Placement is O(N) per bucket (N = buckets placed so far), so streaming a
// whole file costs the same O(N^2) as the offline algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

class OnlineMinimax {
public:
    /// An empty declusterer for buckets inside the given domain.
    OnlineMinimax(std::vector<double> domain_lo, std::vector<double> domain_hi,
                  std::uint32_t num_disks,
                  WeightKind weight = WeightKind::kProximityIndex);

    /// Seeds the state from an existing (e.g. offline-computed) assignment,
    /// so subsequent placements extend it.
    OnlineMinimax(const GridStructure& gs, const Assignment& assignment,
                  WeightKind weight = WeightKind::kProximityIndex);

    /// Places one new bucket; returns its disk and records it as a member.
    std::uint32_t place(const std::vector<double>& region_lo,
                        const std::vector<double>& region_hi);

    /// Convenience: place(bucket region of `info`).
    std::uint32_t place(const BucketInfo& info) {
        return place(info.region_lo, info.region_hi);
    }

    std::uint32_t num_disks() const { return num_disks_; }
    std::size_t placed() const { return placed_; }
    const std::vector<std::size_t>& load() const { return load_; }

private:
    double weight_to(std::uint32_t disk, const double* lo,
                     const double* hi) const;

    std::size_t dims_;
    std::uint32_t num_disks_;
    WeightKind weight_;
    std::vector<double> inv_domain_;
    /// Per-disk flat region storage: member k of disk d occupies
    /// [k*2*dims, (k+1)*2*dims) of regions_[d], lo first then hi.
    std::vector<std::vector<double>> regions_;
    std::vector<std::size_t> load_;
    std::size_t placed_ = 0;
};

}  // namespace pgf
