// Index-based declustering schemes extended to grid files (paper Sec. 2).
//
// DM, FX and the curve-based schemes assign a disk to every grid *cell*
// from its integer coordinates. In a Cartesian product file that is the
// whole story; in a grid file a merged bucket covers several cells whose
// assignments may conflict, so each bucket gets a *candidate set* (the
// distinct disks its cells map to, with multiplicities) which a conflict
// resolution heuristic then collapses to a single disk.
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

/// Candidate disks for one bucket: `disks` are distinct and sorted,
/// `counts[i]` is how many of the bucket's cells map to `disks[i]`.
struct CandidateSet {
    std::vector<std::uint32_t> disks;
    std::vector<std::uint32_t> counts;

    bool conflicting() const { return disks.size() > 1; }
};

/// Disk assigned to each grid cell (flattened row-major, last axis
/// fastest) by the given index-based method. `method` must satisfy
/// is_index_based(). Curve methods use dense ranks along the curve so the
/// round-robin property holds on non-power-of-two grids.
std::vector<std::uint32_t> cell_disks(const GridStructure& gs, Method method,
                                      std::uint32_t num_disks);

/// Candidate set of every bucket given a per-cell assignment.
std::vector<CandidateSet> bucket_candidates(
    const GridStructure& gs, const std::vector<std::uint32_t>& cell_disk);

/// Convenience: cell_disks + bucket_candidates in one call.
std::vector<CandidateSet> index_candidates(const GridStructure& gs,
                                           Method method,
                                           std::uint32_t num_disks);

}  // namespace pgf
