// Unified entry point: decluster any grid file with any studied method.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

class ThreadPool;

struct DeclusterOptions {
    /// Conflict-resolution heuristic (index-based methods only). The paper's
    /// experiments settle on data balance ("/D" in its tables).
    ConflictHeuristic heuristic = ConflictHeuristic::kDataBalance;
    /// Edge-weight measure (proximity-based methods only).
    WeightKind weight = WeightKind::kProximityIndex;
    /// Seed for every random choice the method makes.
    std::uint64_t seed = 1;
    /// Optional worker pool for the proximity-based methods: chunks their
    /// O(N^2) scans across threads, with output bit-identical to serial.
    /// Ignored by the index-based methods.
    ThreadPool* pool = nullptr;
};

/// Declusters the file over `num_disks` disks with the given method.
Assignment decluster(const GridStructure& gs, Method method,
                     std::uint32_t num_disks,
                     const DeclusterOptions& options = {});

/// Parses a method name ("dm", "fx", "hcam", "morton", "gray", "scan",
/// "mst", "ssp", "minimax"); returns nullopt for unknown names.
std::optional<Method> parse_method(const std::string& name);

/// All methods in the paper's presentation order.
const std::vector<Method>& all_methods();

}  // namespace pgf
