// Similarity-based declustering algorithms of Fang, Lee & Chang (VLDB '86),
// the prior proximity-aware work the paper compares minimax against.
//
// Both view buckets as vertices of a complete similarity graph and try to
// make the M partitions mutually similar (so that every neighborhood is
// spread across all disks):
//
//  - SSP (short spanning path): order the buckets along a short spanning
//    path — consecutive vertices highly similar — and deal positions to
//    disks round-robin. Perfectly balanced, but path locality degrades for
//    large files ("may produce partitions that are less similar to each
//    other").
//  - MST: grow a maximum-similarity spanning tree and color it during a
//    preorder walk, forcing every vertex away from its most-similar tree
//    neighbor (its parent) and cycling through the remaining disks. Does
//    NOT guarantee balanced partitions — exactly the drawback the paper
//    notes.
#pragma once

#include <cstdint>

#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf {

class ThreadPool;

struct SimilarityOptions {
    std::uint64_t seed = 1;  ///< seeds the start-vertex choice
    WeightKind weight = WeightKind::kProximityIndex;
    /// Optional worker pool: the O(N^2) graph scans (Prim relax/argmin,
    /// spanning-path argmax, KL gain scans) run chunked across threads with
    /// results bit-identical to the serial algorithms (mirrors
    /// MinimaxOptions::pool).
    ThreadPool* pool = nullptr;
};

/// Short-spanning-path declustering. Every disk receives at most
/// ceil(N/M) buckets.
Assignment ssp_decluster(const GridStructure& gs, std::uint32_t num_disks,
                         const SimilarityOptions& options = {});

/// MST-based declustering (balance not guaranteed).
Assignment mst_decluster(const GridStructure& gs, std::uint32_t num_disks,
                         const SimilarityOptions& options = {});

/// Similarity-graph declustering in the spirit of Liu & Shekhar (ICDE '95):
/// start from a balanced random partition and run Kernighan–Lin-style
/// balance-preserving swap passes that maximize the inter-disk similarity
/// cut. The paper excludes this approach as a primary algorithm because the
/// number of passes is unbounded; `max_passes` caps it here. Perfectly
/// balanced (swaps preserve the initial round-robin sizes). O(N^2) per pass.
Assignment similarity_graph_decluster(const GridStructure& gs,
                                      std::uint32_t num_disks,
                                      const SimilarityOptions& options = {},
                                      std::size_t max_passes = 4);

}  // namespace pgf
