// Conflict-resolution heuristics for merged grid-file buckets (Sec. 2.1).
//
// An index-based scheme yields a candidate set per bucket; these heuristics
// collapse each set to one disk. `data balance` is Algorithm 1 of the paper
// verbatim: unambiguous buckets first, then each conflicting bucket goes to
// its least-loaded candidate disk. `area balance` replaces bucket counts by
// accumulated region volume.
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/decluster/index_based.hpp"
#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

/// Resolves every bucket's candidate set to a single disk.
/// `rng` is consumed only by the randomized heuristics (kRandom, and
/// kMostFrequent's tie-break).
Assignment resolve_conflicts(const GridStructure& gs,
                             const std::vector<CandidateSet>& candidates,
                             std::uint32_t num_disks, ConflictHeuristic h,
                             Rng& rng);

/// One-stop index-based declustering of a grid file: candidate generation
/// followed by conflict resolution.
Assignment decluster_index_based(const GridStructure& gs, Method method,
                                 std::uint32_t num_disks, ConflictHeuristic h,
                                 Rng& rng);

}  // namespace pgf
