// Minimax spanning tree declustering — Algorithm 2 of the paper, its main
// contribution.
//
// The grid file is viewed as a complete graph: vertices are buckets, edge
// weights the probability of co-access (the proximity index). M spanning
// trees are grown from M random seeds in round-robin order; at each step
// tree K adopts the vertex whose *maximum* weight to the tree's current
// members is smallest (minimum-of-maximum criterion, vs. Prim's
// minimum-of-minimum). Round-robin growth guarantees perfectly balanced
// partitions: every disk receives at most ceil(N/M) buckets.
//
// Complexity: O(N^2) weight evaluations, O(N*M) memory — the edge list is
// never materialized.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "pgf/decluster/types.hpp"
#include "pgf/decluster/weights.hpp"
#include "pgf/gridfile/structure.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"
#include "pgf/util/thread_pool.hpp"

namespace pgf {

/// How the M tree seeds are chosen.
enum class MinimaxSeeding {
    kRandom,         ///< M random distinct vertices (the paper's Phase 1)
    kFarthestFirst,  ///< ablation: greedy farthest-first traversal seeds
};

struct MinimaxOptions {
    std::uint64_t seed = 1;
    MinimaxSeeding seeding = MinimaxSeeding::kRandom;
    WeightKind weight = WeightKind::kProximityIndex;
    /// Optional worker pool: the O(N^2) sweeps run chunked across threads
    /// with results bit-identical to the serial algorithm.
    ThreadPool* pool = nullptr;
};

/// Core of Algorithm 2 over an arbitrary symmetric cost functor
/// `cost(i, j) -> double` (higher = more likely co-accessed, must be
/// separated). Returns disk_of, with every disk receiving at most
/// ceil(n/m) vertices.
template <typename Cost>
std::vector<std::uint32_t> minimax_partition(std::size_t n, std::uint32_t m,
                                             const Cost& cost, Rng& rng,
                                             MinimaxSeeding seeding =
                                                 MinimaxSeeding::kRandom,
                                             ThreadPool* pool = nullptr) {
    // Sweeps below this size are cheaper than the dispatch overhead.
    constexpr std::size_t kParallelThreshold = 2048;
    PGF_CHECK(m >= 1, "minimax requires at least one disk");
    std::vector<std::uint32_t> disk_of(n, 0);
    if (n == 0 || m == 1) return disk_of;
    const std::uint32_t trees = static_cast<std::uint32_t>(
        std::min<std::size_t>(m, n));

    // Phase 1 [seeding]: choose `trees` mutually distinct seed vertices.
    std::vector<std::size_t> seeds;
    if (seeding == MinimaxSeeding::kRandom || trees == 1) {
        seeds = rng.sample_indices(n, trees);
    } else {
        // Farthest-first: start from a random vertex; each next seed is the
        // vertex whose maximum weight to the chosen seeds is smallest
        // (i.e. the vertex least similar to every existing seed).
        seeds.reserve(trees);
        seeds.push_back(rng.below(static_cast<std::uint32_t>(n)));
        std::vector<double> max_to_seeds(n, 0.0);
        std::vector<char> is_seed(n, 0);
        is_seed[seeds[0]] = 1;
        for (std::size_t v = 0; v < n; ++v) {
            if (!is_seed[v]) max_to_seeds[v] = cost(seeds[0], v);
        }
        while (seeds.size() < trees) {
            std::size_t best = n;
            double best_val = std::numeric_limits<double>::infinity();
            for (std::size_t v = 0; v < n; ++v) {
                if (!is_seed[v] && max_to_seeds[v] < best_val) {
                    best_val = max_to_seeds[v];
                    best = v;
                }
            }
            is_seed[best] = 1;
            seeds.push_back(best);
            for (std::size_t v = 0; v < n; ++v) {
                if (!is_seed[v]) {
                    max_to_seeds[v] = std::max(max_to_seeds[v], cost(best, v));
                }
            }
        }
    }

    // B: vertices not yet in any tree; pos_in_b enables O(1) swap-removal.
    std::vector<std::size_t> b_set;
    b_set.reserve(n);
    {
        std::vector<char> is_seed(n, 0);
        for (std::size_t k = 0; k < seeds.size(); ++k) {
            is_seed[seeds[k]] = 1;
            disk_of[seeds[k]] = static_cast<std::uint32_t>(k);
        }
        for (std::size_t v = 0; v < n; ++v) {
            if (!is_seed[v]) b_set.push_back(v);
        }
    }

    // MAX[x * trees + k]: maximum weight between vertex x (still in B) and
    // the members of tree k. Step 1 initializes it against the seeds.
    std::vector<double> max_cost(n * trees);
    auto init_range = [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
            std::size_t x = b_set[p];
            for (std::uint32_t k = 0; k < trees; ++k) {
                max_cost[x * trees + k] = cost(x, seeds[k]);
            }
        }
    };
    if (pool != nullptr && b_set.size() >= kParallelThreshold) {
        pool->parallel_for(b_set.size(), init_range);
    } else {
        init_range(0, b_set.size());
    }

    // Phase 2 [expanding]: round-robin growth.
    std::uint32_t k = 0;
    while (!b_set.empty()) {
        // Step 2: y = argmin over B of MAX_y(k). The serial scan keeps the
        // first occurrence of the minimum; the parallel reduction preserves
        // that by comparing (value, position) lexicographically.
        std::size_t best_pos;
        if (pool != nullptr && b_set.size() >= kParallelThreshold) {
            struct Best {
                double val;
                std::size_t pos;
            };
            Best best = pool->map_reduce(
                b_set.size(),
                Best{std::numeric_limits<double>::infinity(), b_set.size()},
                [&](std::size_t begin, std::size_t end) {
                    Best local{std::numeric_limits<double>::infinity(),
                               b_set.size()};
                    for (std::size_t p = begin; p < end; ++p) {
                        double v = max_cost[b_set[p] * trees + k];
                        if (v < local.val) local = Best{v, p};
                    }
                    return local;
                },
                [](const Best& acc, const Best& v) {
                    return v.val < acc.val ? v : acc;
                });
            best_pos = best.pos;
        } else {
            best_pos = 0;
            double best_val = max_cost[b_set[0] * trees + k];
            for (std::size_t p = 1; p < b_set.size(); ++p) {
                double v = max_cost[b_set[p] * trees + k];
                if (v < best_val) {
                    best_val = v;
                    best_pos = p;
                }
            }
        }
        const std::size_t y = b_set[best_pos];
        disk_of[y] = k;
        b_set[best_pos] = b_set.back();
        b_set.pop_back();

        // Step 3: fold y's edges into MAX_x(k) for the remaining vertices
        // (independent per vertex, so chunking cannot change the result).
        auto update_range = [&](std::size_t begin, std::size_t end) {
            for (std::size_t p = begin; p < end; ++p) {
                std::size_t x = b_set[p];
                double c = cost(y, x);
                double& slot = max_cost[x * trees + k];
                if (c > slot) slot = c;
            }
        };
        if (pool != nullptr && b_set.size() >= kParallelThreshold) {
            pool->parallel_for(b_set.size(), update_range);
        } else {
            update_range(0, b_set.size());
        }

        // Step 4: next tree, wrapping around.
        k = (k + 1 == trees) ? 0 : k + 1;
    }
    return disk_of;
}

/// Declusters a grid file with Algorithm 2 using the configured edge
/// weights. The result is an assignment over gs.bucket_count() buckets.
Assignment minimax_decluster(const GridStructure& gs, std::uint32_t num_disks,
                             const MinimaxOptions& options = {});

}  // namespace pgf
