// Dataset generators for every benchmark the paper runs.
//
// The three 2-d synthetic datasets follow Sec. 2.2 exactly. The two real
// datasets (a DSMC particle snapshot and two years of stock quotes) are not
// redistributable, so statistically equivalent synthetic generators stand
// in for them — see DESIGN.md §3 for the substitution rationale. Every
// generator is deterministic in the supplied Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pgf/core/point_source.hpp"
#include "pgf/geom/point.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

/// A generated dataset plus the grid-file parameters used in experiments.
template <std::size_t D>
struct Dataset {
    std::string name;
    std::vector<Point<D>> points;
    Rect<D> domain;
    /// Records per 4 KB (8 KB for the 4-d dataset) bucket, chosen so the
    /// resulting grid file's bucket count is close to the paper's.
    std::size_t bucket_capacity = 56;

    /// Builds the grid file the paper's experiments load.
    GridFile<D> build() const {
        typename GridFile<D>::Config config;
        config.bucket_capacity = bucket_capacity;
        GridFile<D> gf(domain, config);
        gf.bulk_load(points);
        return gf;
    }
};

/// uniform.2d: n points uniform over [0,2000]^2 (paper: n = 10,000).
Dataset<2> make_uniform2d(Rng& rng, std::size_t n = 10000);

/// hotspot.2d: n/2 uniform points overlaid with n/2 normally distributed
/// points centered in the domain (paper's hot.2d).
Dataset<2> make_hotspot2d(Rng& rng, std::size_t n = 10000);

/// correl.2d: n points normally distributed along the diagonal y = x
/// (correlated attributes).
Dataset<2> make_correl2d(Rng& rng, std::size_t n = 10000);

/// DSMC.3d stand-in: particles from a rarefied-flow scene — uniform free
/// stream, compression buildup ahead of an embedded flat plate, rarefied
/// wake behind it (paper: n = 52,857).
Dataset<3> make_dsmc3d(Rng& rng, std::size_t n = 52857);

/// stock.3d stand-in: (stock id, closing price, trading day) for
/// `stocks` geometric-random-walk price series; record count is exactly
/// `n` (paper: 383 stocks, n = 127,026 quotes).
Dataset<3> make_stock3d(Rng& rng, std::size_t n = 127026,
                        std::size_t stocks = 383);

/// 4-d spatio-temporal DSMC stand-in for the SP-2 experiment: `snapshots`
/// time steps of the 3-d scene with the plate/shock front advecting
/// downstream; coordinates are (t, x, y, z)
/// (paper: 59 snapshots, ~3M records, 8 KB buckets).
Dataset<4> make_dsmc4d(Rng& rng, std::size_t snapshots = 59,
                       std::size_t per_snapshot = 50847);

/// A dataset delivered as a bounded stream instead of a vector — the
/// input side of the out-of-core build pipeline (pgf/core/extsort.hpp).
/// Streaming makers replay their in-memory make_* counterpart point for
/// point (identical Rng consumption), so a streamed build at size n is
/// comparable record-for-record with a materialized one — without ever
/// holding more than the consumer's read block in memory.
template <std::size_t D>
struct StreamDataset {
    std::string name;
    Rect<D> domain;
    std::size_t bucket_capacity = 56;
    std::unique_ptr<PointSource<D>> source;
};

/// Streaming uniform.2d: n uniform points over [0,2000]^2.
StreamDataset<2> make_uniform2d_stream(Rng rng, std::uint64_t n);

/// Streaming hot.2d: n/2 uniform then n/2 normal about the center.
StreamDataset<2> make_hotspot2d_stream(Rng rng, std::uint64_t n);

/// Streaming DSMC.3d: rejection-sampled rarefied-flow scene.
StreamDataset<3> make_dsmc3d_stream(Rng rng, std::uint64_t n);

/// MHD.3d stand-in (the paper's conclusion names an MHD magnetosphere
/// simulation as its second large evaluation dataset, after Tanaka '93):
/// plasma density around a non-magnetized planet in the solar wind —
/// uniform free stream, a dense compressed sheath between the paraboloid
/// bow shock and the obstacle, a rarefied cavity/tail behind it.
Dataset<3> make_mhd3d(Rng& rng, std::size_t n = 60000);

}  // namespace pgf
