// Range-query workload generator (paper Sec. 2.2).
//
// Queries are square (equal relative side) boxes whose centers are uniform
// over the data domain. The side along dimension k is
//     l_k = r^(1/d) * L_k
// so a query covers a fraction r of the domain volume. Queries may overhang
// the domain boundary, exactly as generated centers imply; the grid file
// clips them naturally.
#pragma once

#include <cstddef>
#include <vector>

#include "pgf/geom/point.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {

/// Relative side length r^(1/d) of a query of volume ratio `ratio` in
/// `dims` dimensions. ratio must be in (0, 1).
double query_side_fraction(double ratio, std::size_t dims);

/// Generates `count` square range queries of volume ratio `ratio` with
/// centers uniform over `domain`.
template <std::size_t D>
std::vector<Rect<D>> square_queries(const Rect<D>& domain, double ratio,
                                    std::size_t count, Rng& rng) {
    const double side = query_side_fraction(ratio, D);
    std::vector<Rect<D>> queries;
    queries.reserve(count);
    for (std::size_t n = 0; n < count; ++n) {
        Rect<D> q;
        for (std::size_t i = 0; i < D; ++i) {
            double len = side * domain.extent(i);
            double center = rng.uniform(domain.lo[i], domain.hi[i]);
            q.lo[i] = center - 0.5 * len;
            q.hi[i] = center + 0.5 * len;
        }
        queries.push_back(q);
    }
    return queries;
}

/// Animation workload (paper Sec. 3.5, Table 4): for each time step, a
/// series of ~1/r slab queries sweeps the volume — each slab spans a
/// fraction r of the first spatial axis and the full extent of the others,
/// with the time axis (dimension 0) pinned to the snapshot's unit slab.
/// This matches the paper's accounting: "approximately 10 x 59 queries"
/// for r = 0.1 and 59 snapshots. Query order is time-major, sweep-order
/// within a step — consecutive steps revisit the same temporal partition,
/// which is what makes block caching effective.
template <std::size_t D>
std::vector<Rect<D>> animation_queries(const Rect<D>& domain,
                                       std::size_t time_steps, double r) {
    static_assert(D >= 2, "animation queries need a time axis plus space");
    const auto slabs = static_cast<std::size_t>(std::ceil(1.0 / r));
    std::vector<Rect<D>> queries;
    queries.reserve(time_steps * slabs);
    const double t_len = domain.extent(0) / static_cast<double>(time_steps);
    const double slab_len = r * domain.extent(1);
    for (std::size_t t = 0; t < time_steps; ++t) {
        for (std::size_t s = 0; s < slabs; ++s) {
            Rect<D> q;
            q.lo[0] = domain.lo[0] + t_len * static_cast<double>(t);
            q.hi[0] = q.lo[0] + t_len;
            q.lo[1] = domain.lo[1] + slab_len * static_cast<double>(s);
            q.hi[1] = std::min(q.lo[1] + slab_len, domain.hi[1]);
            for (std::size_t i = 2; i < D; ++i) {
                q.lo[i] = domain.lo[i];
                q.hi[i] = domain.hi[i];
            }
            queries.push_back(q);
        }
    }
    return queries;
}

/// Particle-tracing workload (the paper's stated future work, Sec. 4): a
/// physicist follows one particle through the simulation, issuing for every
/// time step a small spatial box around the particle's current position.
/// The trajectory is a bounded random walk inside the spatial domain; the
/// time axis (dimension 0) is pinned to consecutive unit slabs. Queries are
/// tiny and strongly correlated in space — the access pattern that
/// penalizes declusterings which co-locate spatially adjacent buckets.
template <std::size_t D>
std::vector<Rect<D>> trace_queries(const Rect<D>& domain,
                                   std::size_t time_steps, double box_side,
                                   Rng& rng) {
    static_assert(D >= 2, "trace queries need a time axis plus space");
    PGF_CHECK(box_side > 0.0 && box_side < 1.0,
              "trace box side must be a fraction of the domain in (0,1)");
    std::vector<Rect<D>> queries;
    queries.reserve(time_steps);
    // Start somewhere in the middle 80% of the volume.
    std::array<double, D> pos{};
    for (std::size_t i = 1; i < D; ++i) {
        pos[i] = domain.lo[i] + domain.extent(i) * rng.uniform(0.1, 0.9);
    }
    const double t_len = domain.extent(0) / static_cast<double>(time_steps);
    for (std::size_t t = 0; t < time_steps; ++t) {
        Rect<D> q;
        q.lo[0] = domain.lo[0] + t_len * static_cast<double>(t);
        q.hi[0] = q.lo[0] + t_len;
        for (std::size_t i = 1; i < D; ++i) {
            double half = 0.5 * box_side * domain.extent(i);
            q.lo[i] = pos[i] - half;
            q.hi[i] = pos[i] + half;
        }
        queries.push_back(q);
        // Advance the particle: a step of ~half a box per frame, reflected
        // at the domain walls so the trace stays inside.
        for (std::size_t i = 1; i < D; ++i) {
            double step = rng.normal(0.0, 0.5 * box_side * domain.extent(i));
            pos[i] += step;
            double lo = domain.lo[i], hi = domain.hi[i];
            if (pos[i] < lo) pos[i] = lo + (lo - pos[i]);
            if (pos[i] >= hi) pos[i] = hi - (pos[i] - hi);
            if (pos[i] < lo || pos[i] >= hi) pos[i] = 0.5 * (lo + hi);
        }
    }
    return queries;
}

}  // namespace pgf
