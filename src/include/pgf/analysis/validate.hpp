// Deep invariant checkers for the dimension-erased structures: grid-file
// structural snapshots and declustering assignments.
//
// These audits are the machine-checked counterpart of the informal
// invariants the paper's algorithms rely on: the directory tiles the grid
// exactly, merged-bucket regions are rectangular and disjoint, every bucket
// lands on exactly one disk, and conflict resolution only ever picks a disk
// from the bucket's candidate set. They are callable from tests, from
// `pgfcli validate`, and from any pipeline stage that wants a paranoia
// barrier before trusting a structure it was handed.
#pragma once

#include <cstdint>
#include <vector>

#include "pgf/analysis/report.hpp"
#include "pgf/decluster/index_based.hpp"
#include "pgf/decluster/types.hpp"
#include "pgf/gridfile/structure.hpp"

namespace pgf::analysis {

/// Audits a structural snapshot.
///
/// kFast: dimensionality agreement, non-empty domain/shape, per-bucket cell
///   boxes inside the grid, regions non-empty and inside the domain, and
///   total bucket cell count == grid cell count.
/// kStandard: exact tiling — every grid cell covered by exactly one bucket
///   (reconstructs the directory; reports both owners of a doubly-covered
///   cell and the coordinates of uncovered cells).
/// kDeep: implied linear-scale reconstruction — every grid line must have a
///   single consistent data-space coordinate across all buckets touching
///   it, the per-axis boundary sequences must be strictly increasing
///   (sorted/unique splits), and they must start/end exactly at the domain.
ValidationReport audit_structure(const GridStructure& gs,
                                 ValidationLevel level);

/// Declared bounds for an assignment audit. Zero-valued fields are not
/// checked (most declustering methods in the paper promise no worst-case
/// load bound; the index-based round-robin schemes promise ceil(B/M)).
struct AssignmentAuditOptions {
    /// Maximum buckets on one disk (0 = skip).
    std::size_t max_bucket_load = 0;
    /// Maximum data-balance ratio B_max·M / B_total (0 = skip). 1.0 means
    /// perfectly even record counts.
    double max_data_imbalance = 0.0;
};

/// Audits a disk assignment against the structure it declusters.
///
/// kFast: num_disks >= 1, every bucket assigned (size match), every disk id
///   in range.
/// kStandard: per-disk load accounting plus the declared bounds above; with
///   more buckets than disks, also flags completely idle disks.
/// kDeep: record-weighted load accounting for the data-imbalance bound
///   (exact recomputation of the paper's data-balance metric).
ValidationReport audit_assignment(const GridStructure& gs,
                                  const Assignment& assignment,
                                  ValidationLevel level,
                                  const AssignmentAuditOptions& options = {});

/// Audits conflict-resolution postconditions: one candidate set per bucket,
/// candidate multiplicities summing to the bucket's cell count, candidate
/// disk ids sorted/unique/in range, the resolved disk a member of the
/// bucket's candidate set, and unambiguous buckets resolved to their only
/// candidate.
ValidationReport audit_conflict_resolution(
    const GridStructure& gs, const std::vector<CandidateSet>& candidates,
    const Assignment& assignment);

}  // namespace pgf::analysis
