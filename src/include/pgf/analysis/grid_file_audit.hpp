// Deep structural audit of a live grid file (any backend).
//
// Unlike audit_structure (which sees only the dimension-erased snapshot),
// this audit has access to the real linear scales, the grid directory and
// every stored record, so it can check the full grid-file contract of
// Nievergelt & Hinterberger:
//   - scales span the domain, split points sorted/unique/strictly interior;
//   - the directory's shape matches the scales' interval counts;
//   - every directory cell maps to a live bucket, and bucket cell boxes
//     agree with the directory both ways (rectangular, disjoint regions);
//   - record bookkeeping: the per-bucket record sum matches record_count(),
//     oversized buckets only where refinement cannot separate records;
//   - (deep) every record lies in the bucket that the directory assigns to
//     its coordinates.
//
// The audit is generic over the BucketStore backend: it reads records
// through GridFileCore's bucket_records()/bucket_cells() accessors, so the
// same checks run against an in-memory GridFile or a disk-backed
// PagedGridFile (whose record reads go through the buffer pool — the deep
// level therefore also exercises every page decode). Paged-only page-level
// checks live in paged_audit.hpp.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "pgf/analysis/report.hpp"
#include "pgf/gridfile/grid_file_core.hpp"

namespace pgf::analysis {

template <std::size_t D, typename Store>
ValidationReport audit_grid_file(const GridFileCore<D, Store>& gf,
                                 ValidationLevel level) {
    ValidationReport r("gridfile", level);
    detail::CheckReportScope scope(
        [&r] { return "audit context:\n" + r.summary(); });

    // -- scales ------------------------------------------------------------
    for (std::size_t i = 0; i < D; ++i) {
        const LinearScale& scale = gf.scale(i);
        const std::string axis = "axis " + std::to_string(i);
        r.require(scale.lo() == gf.domain().lo[i] &&
                      scale.hi() == gf.domain().hi[i],
                  "gridfile.scale.domain", axis + " scale does not span the "
                  "domain");
        r.require(scale.lo() < scale.hi(), "gridfile.scale.empty",
                  axis + " scale interval is empty");
        const auto& splits = scale.splits();
        for (std::size_t k = 0; k < splits.size(); ++k) {
            r.require_lazy(splits[k] > scale.lo() && splits[k] < scale.hi(),
                           "gridfile.scale.interior", [&] {
                               return axis + " split " + std::to_string(k) +
                                      " lies outside the open domain "
                                      "interval";
                           });
            if (k > 0) {
                r.require_lazy(splits[k - 1] < splits[k],
                               "gridfile.scale.sorted", [&] {
                                   return axis + " splits " +
                                          std::to_string(k - 1) + " and " +
                                          std::to_string(k) +
                                          " are not strictly increasing";
                               });
            }
        }
        r.require_lazy(scale.intervals() == gf.directory().shape()[i],
                       "gridfile.directory.shape", [&] {
                           return axis + " has " +
                                  std::to_string(scale.intervals()) +
                                  " scale intervals but the directory spans " +
                                  std::to_string(gf.directory().shape()[i]) +
                                  " cells";
                       });
    }

    // -- bucket bookkeeping (O(buckets)) -----------------------------------
    const auto shape = gf.directory().shape();
    std::size_t record_sum = 0;
    bool boxes_ok = true;
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const CellBox<D>& cells = gf.bucket_cells(b);
        const std::size_t records = gf.bucket_record_count(b);
        const std::string which = "bucket " + std::to_string(b);
        bool ok = true;
        for (std::size_t i = 0; i < D; ++i) {
            if (cells.lo[i] >= cells.hi[i] || cells.hi[i] > shape[i]) {
                ok = false;
            }
        }
        r.require(ok, "gridfile.bucket.cellbox",
                  which + " cell box is empty or out of the grid");
        boxes_ok = boxes_ok && ok;
        record_sum += records;
        r.require_lazy(records <= gf.bucket_capacity() ||
                           cells.cell_count() == 1,
                       "gridfile.bucket.oversized_merged", [&] {
                           return which + " is over capacity (" +
                                  std::to_string(records) +
                                  " records) yet spans multiple cells — it "
                                  "should have been split along a grid line";
                       });
    }
    r.require_lazy(record_sum == gf.record_count(), "gridfile.records.total",
                   [&] {
                       return "buckets hold " + std::to_string(record_sum) +
                              " records, file reports " +
                              std::to_string(gf.record_count());
                   });

    if (level < ValidationLevel::kStandard || !boxes_ok) return r;

    // -- directory <-> bucket agreement (O(cells)) -------------------------
    CellBox<D> all;
    all.lo.fill(0);
    all.hi = shape;
    for_each_cell(all, [&](const std::array<std::uint32_t, D>& cell) {
        const std::uint32_t b = gf.directory().at(cell);
        r.require_lazy(b < gf.bucket_count(), "gridfile.directory.dangling",
                       [&] {
                           std::string name;
                           for (std::size_t i = 0; i < D; ++i) {
                               name += (i ? "," : "(") + std::to_string(cell[i]);
                           }
                           return "cell " + name + ") maps to bucket " +
                                  std::to_string(b) + " of " +
                                  std::to_string(gf.bucket_count());
                       });
        if (b < gf.bucket_count()) {
            r.require_lazy(gf.bucket_cells(b).contains(cell),
                           "gridfile.directory.box_mismatch", [&] {
                               return "a directory cell maps to bucket " +
                                      std::to_string(b) +
                                      " outside that bucket's cell box";
                           });
        }
    });
    // The converse — every cell of a bucket's box maps back to it — plus
    // the total-coverage identity makes merged regions rectangular and
    // disjoint.
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        for_each_cell(gf.bucket_cells(b),
                      [&](const std::array<std::uint32_t, D>& cell) {
                          r.require_lazy(gf.directory().at(cell) == b,
                                         "gridfile.bucket.box_mismatch", [&] {
                                             return "bucket " +
                                                    std::to_string(b) +
                                                    "'s box contains a cell "
                                                    "the directory assigns "
                                                    "elsewhere";
                                         });
                      });
    }

    if (level < ValidationLevel::kDeep) return r;

    // -- per-record placement (O(records · D)) -----------------------------
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const CellBox<D>& cells = gf.bucket_cells(b);
        const auto& records = gf.bucket_records(b);
        for (std::size_t k = 0; k < records.size(); ++k) {
            const auto cell = gf.locate_cell(records[k].point);
            r.require_lazy(cells.contains(cell),
                           "gridfile.record.misplaced", [&] {
                               std::ostringstream os;
                               os << "bucket " << b << " record " << k
                                  << " (id " << records[k].id
                                  << ") at " << records[k].point
                                  << " belongs to a different bucket's "
                                  << "region";
                               return os.str();
                           });
        }
    }
    return r;
}

}  // namespace pgf::analysis
