// Validation report vocabulary of the pgf::analysis invariant checkers.
//
// Every audit in this subsystem produces a ValidationReport: the list of
// violated invariants (findings) plus how many checks ran. Audits never
// throw on a violated invariant — they record it — so a single run can
// surface *all* corruption in a structure instead of stopping at the first.
// Callers that want hard-failure semantics call ValidationReport::enforce(),
// which raises CheckError carrying the full report text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pgf/util/check.hpp"

namespace pgf::analysis {

/// How much work an audit may spend. Checks are cumulative: every level
/// includes the cheaper levels' checks.
enum class ValidationLevel {
    kFast,      ///< O(buckets): shape, range and bookkeeping checks
    kStandard,  ///< + O(cells): exact directory tiling / coverage
    kDeep,      ///< + O(B·D + records): geometry cross-checks, per-record
                ///  placement, implied-scale reconstruction
};

std::string to_string(ValidationLevel level);

/// Parses "fast" / "standard" / "deep" (case-sensitive). Returns false and
/// leaves `out` untouched on unknown names.
bool parse_validation_level(const std::string& text, ValidationLevel* out);

/// One violated invariant. `invariant` is a stable dotted identifier
/// (e.g. "gridfile.directory.dangling"); `detail` names the offending
/// indices/values so the failure is actionable without a debugger.
struct Finding {
    std::string invariant;
    std::string detail;
};

/// Outcome of one audit (or several merged audits).
struct ValidationReport {
    ValidationReport() = default;
    ValidationReport(std::string subsystem_name, ValidationLevel run_level)
        : subsystem(std::move(subsystem_name)), level(run_level) {}

    std::string subsystem;  ///< e.g. "gridfile", "decluster", "sim"
    ValidationLevel level = ValidationLevel::kFast;
    std::size_t checks_run = 0;
    std::vector<Finding> findings;

    bool ok() const { return findings.empty(); }

    /// Records one passed/failed check.
    void require(bool condition, const char* invariant,
                 const std::string& detail) {
        ++checks_run;
        if (!condition) findings.push_back(Finding{invariant, detail});
    }

    /// Hot-loop variant: `detail_fn()` builds the message only on failure,
    /// so per-cell checks don't pay string construction when healthy.
    template <typename DetailFn>
    void require_lazy(bool condition, const char* invariant,
                      DetailFn&& detail_fn) {
        ++checks_run;
        if (!condition) findings.push_back(Finding{invariant, detail_fn()});
    }

    /// Folds another audit's outcome into this one (checks and findings
    /// accumulate; the subsystem label of `this` wins).
    void merge(const ValidationReport& other);

    /// Multi-line human-readable report. Lists at most `max_findings`
    /// findings, then an elision count.
    std::string summary(std::size_t max_findings = 20) const;

    /// Throws CheckError carrying summary() when the audit found violations.
    void enforce() const;
};

}  // namespace pgf::analysis
