// DES audit hook: attaches to a pgf::sim::Simulator and machine-checks the
// engine invariants the cluster model (paper Sec. 3.5) depends on.
//
//   - dispatch timestamps never decrease (causality: the simulated clock
//     only moves forward);
//   - no event schedules a successor into the past;
//   - after mark_teardown(), no further events may be scheduled or fired
//     (events still pending at teardown are also reported).
//
// Violations are recorded as findings, not thrown, so a simulation run can
// complete and the full report surfaces every breach at once. While a
// DesAudit is attached it also installs a CheckReportScope: if a PGF_CHECK
// inside the simulator trips (e.g. scheduling into the past), the raised
// CheckError carries this audit's partial report.
#pragma once

#include "pgf/analysis/report.hpp"
#include "pgf/sim/des.hpp"
#include "pgf/util/check.hpp"

namespace pgf::analysis {

class DesAudit {
public:
    /// Installs itself as `sim`'s observer. The simulator must outlive the
    /// audit (or the audit's detach() must run first).
    explicit DesAudit(sim::Simulator& sim);

    /// Detaches from the simulator (idempotent).
    ~DesAudit();

    DesAudit(const DesAudit&) = delete;
    DesAudit& operator=(const DesAudit&) = delete;

    /// Declares the simulation finished: any later schedule or dispatch is
    /// recorded as a "sim.teardown.*" finding, and events still pending now
    /// are reported immediately.
    void mark_teardown();

    /// Stops observing without destroying the collected report.
    void detach();

    std::size_t events_dispatched() const { return dispatched_; }
    std::size_t events_scheduled() const { return scheduled_; }

    /// The findings collected so far.
    const ValidationReport& report() const { return report_; }

private:
    void on_schedule(sim::SimTime when, sim::SimTime now);
    void on_dispatch(sim::SimTime when, std::size_t pending);

    sim::Simulator* sim_;
    ValidationReport report_;
    detail::CheckReportScope scope_;
    sim::SimTime last_dispatch_;
    std::size_t dispatched_ = 0;
    std::size_t scheduled_ = 0;
    bool torn_down_ = false;
    bool attached_ = true;
};

}  // namespace pgf::analysis
