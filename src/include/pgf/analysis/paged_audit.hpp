// Page-level invariant checks for the disk-backed grid file.
//
// audit_paged_grid_file runs the full backend-generic structural audit
// (grid_file_audit.hpp) and layers on the checks only a paged backend can
// violate:
//   - every bucket owns a distinct page (no aliased storage);
//   - the scales are reconstructible from the bucket cell boxes alone —
//     every grid line is the boundary of at least one bucket box, so an
//     open-from-disk path that only sees boxes can rebuild the directory
//     tiling (the split dynamics guarantee this: a refinement immediately
//     splits the refined bucket along the new line, and later splits only
//     add boundaries);
//   - (standard) each page header's record count agrees with the in-memory
//     metadata and fits the page capacity;
//   - (deep) page-record roundtrip: decoding a page and re-encoding the
//     records reproduces the page's meaningful bytes exactly, so the codec
//     loses nothing on any stored record.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pgf/analysis/grid_file_audit.hpp"
#include "pgf/analysis/report.hpp"
#include "pgf/storage/paged_grid_file.hpp"

namespace pgf::analysis {

template <std::size_t D>
ValidationReport audit_paged_grid_file(const PagedGridFile<D>& gf,
                                       ValidationLevel level) {
    using Store = PagedBucketStore<D>;
    ValidationReport r("paged-gridfile", level);
    r.merge(audit_grid_file(gf, level));

    // -- page ownership (O(buckets)) ---------------------------------------
    std::vector<std::uint64_t> pages;
    pages.reserve(gf.bucket_count());
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        pages.push_back(gf.bucket_page(b));
    }
    std::vector<std::uint64_t> sorted = pages;
    std::sort(sorted.begin(), sorted.end());
    r.require(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end(),
              "paged.page.unique",
              "two buckets share one backing page");

    // -- pool pin discipline (O(frames)) -----------------------------------
    // Every PageRef the engine takes is scoped to one operation, so a
    // quiescent grid file holds no pins; a nonzero count means a pin leaked
    // (and its frame is permanently unevictable). Checked before the
    // standard-level page reads below take (and release) pins of their own.
    r.require_lazy(gf.pool().pinned_frames() == 0, "paged.pool.pins", [&] {
        return "buffer pool holds " +
               std::to_string(gf.pool().pinned_frames()) +
               " pinned frame(s) on a quiescent grid file — a PageRef "
               "outlived its operation";
    });

    // -- scale reconstruction from bucket boxes (O(buckets · D)) -----------
    for (std::size_t i = 0; i < D; ++i) {
        const std::uint32_t intervals = gf.directory().shape()[i];
        std::vector<char> boundary(intervals + 1, 0);
        for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
            const CellBox<D>& cells = gf.bucket_cells(b);
            if (cells.lo[i] <= intervals) boundary[cells.lo[i]] = 1;
            if (cells.hi[i] <= intervals) boundary[cells.hi[i]] = 1;
        }
        for (std::uint32_t k = 0; k <= intervals; ++k) {
            r.require_lazy(boundary[k] == 1, "paged.scale.reconstruction",
                           [&] {
                               return "axis " + std::to_string(i) +
                                      " grid line " + std::to_string(k) +
                                      " is not a boundary of any bucket box"
                                      " — the scales cannot be rebuilt from"
                                      " the boxes";
                           });
        }
    }

    if (level < ValidationLevel::kStandard) return r;

    // -- durability headers straight from disk (O(buckets) raw reads) ------
    // Checksums must verify even while the pool holds newer dirty copies
    // (the on-disk image is then simply the previous version, which was
    // stamped on its way out too). The LSN obeys WAL-before-data: no data
    // page may ever be ahead of the durable log (and without a log, no
    // page is ever stamped at all).
    {
        const std::uint64_t durable =
            gf.wal() != nullptr ? gf.wal()->durable_lsn() : 0;
        for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
            const auto probe = gf.probe_bucket_page(b);
            r.require_lazy(probe.checksum_ok, "paged.page.checksum", [&] {
                return "bucket " + std::to_string(b) +
                       " page fails its checksum on disk (torn or corrupt "
                       "page)";
            });
            if (!probe.checksum_ok) continue;
            r.require_lazy(probe.version == kPageFormatVersion,
                           "paged.page.version", [&] {
                               return "bucket " + std::to_string(b) +
                                      " page carries format version " +
                                      std::to_string(probe.version);
                           });
            r.require_lazy(probe.lsn <= durable, "paged.page.lsn", [&] {
                return "bucket " + std::to_string(b) + " page LSN " +
                       std::to_string(probe.lsn) +
                       " is ahead of the durable log LSN " +
                       std::to_string(durable) +
                       " — WAL-before-data ordering was violated";
            });
        }
    }

    // -- page headers vs metadata (O(buckets) page reads) ------------------
    std::vector<std::byte> raw;
    std::vector<GridRecord<D>> decoded;
    std::vector<std::byte> reencoded;
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        const std::string which = "bucket " + std::to_string(b);
        gf.read_bucket_page(b, raw);
        const std::uint64_t header = Store::page_record_count(raw);
        const bool header_ok = header == gf.bucket_record_count(b);
        r.require_lazy(header_ok, "paged.page.header", [&] {
            return which + " page header claims " + std::to_string(header) +
                   " records, metadata says " +
                   std::to_string(gf.bucket_record_count(b));
        });
        r.require_lazy(header <= gf.capacity(), "paged.page.capacity", [&] {
            return which + " page header claims " + std::to_string(header) +
                   " records but the page holds at most " +
                   std::to_string(gf.capacity());
        });
        if (level < ValidationLevel::kDeep || !header_ok ||
            header > gf.capacity()) {
            continue;
        }

        // -- roundtrip (deep, O(records)): decode -> encode -> byte-equal --
        Store::decode_page(raw, decoded);
        reencoded.assign(raw.size(), std::byte{0});
        Store::encode_page(reencoded, decoded.data(), decoded.size());
        const std::size_t meaningful =
            Store::kCountBytes + decoded.size() * Store::kRecordBytes;
        r.require_lazy(std::equal(raw.begin(),
                                  raw.begin() + static_cast<std::ptrdiff_t>(
                                                    meaningful),
                                  reencoded.begin()),
                       "paged.page.roundtrip", [&] {
                           return which + " page bytes do not survive a "
                                          "decode/encode roundtrip";
                       });
    }
    return r;
}

}  // namespace pgf::analysis
