// Theorem 1: closed-form response time of the disk modulo scheme for
// 2-d l x l square range queries on Cartesian product files, and the
// necessary-and-sufficient condition for its strict optimality.
//
// With beta = l mod M:
//   R_DM(M) = l                                  if M > l
//   R_DM(M) = R_opt(M) + beta - ceil(beta^2/M)   if M <= l, beta != 0,
//                                                   beta <= M (1 - 1/beta)
//   R_DM(M) = R_opt(M)                           otherwise (strictly optimal)
//
// DM's response to an l x l query is position-independent (shifting the
// query permutes the disks), so the exact value is also computable by
// direct enumeration — dm_response_exact — which the tests and the theory
// bench use to validate the closed form.
#pragma once

#include <cstdint>
#include <vector>

namespace pgf {

struct DmPrediction {
    std::uint64_t response = 0;
    bool strictly_optimal = false;
};

/// Closed-form Theorem 1 prediction for an l x l query on M disks.
DmPrediction dm_theorem1(std::uint32_t l, std::uint32_t num_disks);

/// Exact DM response by enumerating the l x l cell block: the maximum,
/// over residues r, of |{(i,j) in [0,l)^2 : (i+j) mod M = r}|.
std::uint64_t dm_response_exact(std::uint32_t l, std::uint32_t num_disks);

/// Exact DM response for a query anchored at (x0, y0) — used to verify the
/// position-independence that the closed form relies on.
std::uint64_t dm_response_at(std::uint32_t x0, std::uint32_t y0,
                             std::uint32_t l, std::uint32_t num_disks);

/// Exact DM response of a *partial match* query on a Cartesian product
/// file: the specified attributes pin one cell each (their values only
/// shift every residue, so they do not appear); each entry of
/// `free_extents` is the full axis extent of one unspecified attribute.
/// Du & Sobolewski: with exactly one unspecified attribute this equals the
/// optimal ceil(extent / M) for every M — DM's strict-optimality class.
std::uint64_t dm_partial_match_exact(
    const std::vector<std::uint32_t>& free_extents, std::uint32_t num_disks);

/// FX response of a partial match query: `pinned_xor` is the XOR of the
/// specified attribute values, `free_anchor[i]`..`free_anchor[i] +
/// free_extents[i]` the swept range of unspecified attribute i. Unlike DM,
/// the result depends on the anchor and the pinned values.
std::uint64_t fx_partial_match_at(std::uint32_t pinned_xor,
                                  const std::vector<std::uint32_t>& free_anchor,
                                  const std::vector<std::uint32_t>& free_extents,
                                  std::uint32_t num_disks);

}  // namespace pgf
