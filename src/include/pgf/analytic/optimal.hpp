// Optimal response-time references for square range queries on Cartesian
// product files.
#pragma once

#include <cstdint>

namespace pgf {

/// Best possible worst-disk load when an l x l block of cells is spread
/// over M disks: ceil(l^2 / M).
std::uint64_t optimal_square_response(std::uint32_t l, std::uint32_t num_disks);

/// Ideal-scaling reference of Theorem 2's discussion: R_opt(2M) = R_opt(M)/2
/// holds exactly whenever M divides l^2.
double optimal_square_response_real(std::uint32_t l, std::uint32_t num_disks);

}  // namespace pgf
