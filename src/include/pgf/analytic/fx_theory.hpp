// Theorem 2: scalability bounds of the fieldwise-xor scheme for
// 2^m x 2^m square range queries on 2^n disks.
//
//   (i)   R_FX(2^n) = 2^(m + (m-n)) = 4^m / 2^n          for n <= m
//   (ii)  2^(m-(n-m)) <= R_FX(2^n) <= 2^m                for n > m
//   (iii) R_FX(2^(n+1)) >= (3/4) R_FX(2^n)               for n > m
//
// Unlike DM, FX's response to a square query depends on the query's
// position, so the measured quantities are computed by enumerating all
// anchor positions within a power-of-two grid (with expected / worst /
// best summaries). The tests and the theory bench check the measured
// values against the bounds.
#pragma once

#include <cstdint>

namespace pgf {

struct FxBounds {
    double lower = 0.0;
    double upper = 0.0;
    bool exact = false;  ///< true when n <= m (clause (i) pins the value)
};

/// Theorem 2 bounds for query side l = 2^m on M = 2^n disks.
FxBounds fx_theorem2(unsigned m, unsigned n);

struct FxMeasurement {
    double expected = 0.0;
    std::uint64_t worst = 0;
    std::uint64_t best = 0;
};

/// FX response of the l x l query anchored at (x0, y0).
std::uint64_t fx_response_at(std::uint32_t x0, std::uint32_t y0,
                             std::uint32_t l, std::uint32_t num_disks);

/// Enumerates all anchors (x0, y0) in [0, grid - l]^2 of an l x l query on
/// a grid x grid Cartesian file and summarizes the FX response.
FxMeasurement fx_response_measure(std::uint32_t l, std::uint32_t num_disks,
                                  std::uint32_t grid);

}  // namespace pgf
