// Proximity index of Kamel & Faloutsos (Parallel R-trees, SIGMOD '92),
// the edge-weight measure the minimax algorithm (paper Sec. 3.1) uses to
// estimate how likely two buckets are to be touched by the same range query.
//
// For two d-dimensional rectangles R, S inside a domain rectangle:
//     Proximity(R, S)    = prod_i Proximity(R_i, S_i)
//     Proximity(R_i,S_i) = (1 + 2*delta_i) / 3      if R_i, S_i intersect
//                        = (1 - Delta_i)^2 / 3      if disjoint
// where delta_i is the overlap length and Delta_i the gap, each normalized
// by the domain extent along axis i.
#pragma once

#include "pgf/geom/point.hpp"

namespace pgf {

/// One-dimensional proximity of intervals [r_lo, r_hi) and [s_lo, s_hi)
/// inside a domain of length `domain_len`. Exposed separately so the formula
/// can be unit-tested against hand-computed values.
double interval_proximity(double r_lo, double r_hi, double s_lo, double s_hi,
                          double domain_len);

/// Full d-dimensional proximity index of two boxes within `domain`.
/// Result is in (0, 1]; higher = more likely to be co-accessed.
template <std::size_t D>
double proximity_index(const Rect<D>& r, const Rect<D>& s,
                       const Rect<D>& domain) {
    double p = 1.0;
    for (std::size_t i = 0; i < D; ++i) {
        p *= interval_proximity(r.lo[i], r.hi[i], s.lo[i], s.hi[i],
                                domain.extent(i));
    }
    return p;
}

/// The alternative the paper considered and rejected (suitable for points,
/// not for partially overlapped boxes): Euclidean distance between centers,
/// converted into a similarity in (0, 1] so it can be swapped for the
/// proximity index in ablation experiments (higher = closer).
template <std::size_t D>
double center_similarity(const Rect<D>& r, const Rect<D>& s,
                         const Rect<D>& domain) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < D; ++i) {
        double len = domain.extent(i);
        double d = (0.5 * (r.lo[i] + r.hi[i]) - 0.5 * (s.lo[i] + s.hi[i])) /
                   (len > 0.0 ? len : 1.0);
        d2 += d * d;
    }
    return 1.0 / (1.0 + std::sqrt(d2));
}

}  // namespace pgf
