// Fixed-dimension points and axis-aligned boxes.
//
// The dimension is a template parameter: grid files in this reproduction are
// 2-d (synthetic datasets), 3-d (DSMC/stock snapshots) and 4-d
// (spatio-temporal SP-2 experiment), and compile-time dimension keeps the
// hot per-record paths free of heap allocation and runtime loops the
// optimizer cannot unroll.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

#include "pgf/util/check.hpp"

namespace pgf {

template <std::size_t D>
struct Point {
    static_assert(D >= 1, "points must have at least one dimension");

    std::array<double, D> x{};

    double& operator[](std::size_t i) { return x[i]; }
    double operator[](std::size_t i) const { return x[i]; }

    friend bool operator==(const Point&, const Point&) = default;
};

template <std::size_t D>
std::ostream& operator<<(std::ostream& os, const Point<D>& p) {
    os << "(";
    for (std::size_t i = 0; i < D; ++i) {
        if (i) os << ", ";
        os << p[i];
    }
    return os << ")";
}

template <std::size_t D>
double squared_distance(const Point<D>& a, const Point<D>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < D; ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

template <std::size_t D>
double distance(const Point<D>& a, const Point<D>& b) {
    return std::sqrt(squared_distance(a, b));
}

/// Axis-aligned box [lo, hi) — half-open on each axis, matching grid-file
/// cell semantics (a point on a split plane belongs to the upper cell).
template <std::size_t D>
struct Rect {
    Point<D> lo;
    Point<D> hi;

    static Rect from_bounds(const Point<D>& lo, const Point<D>& hi) {
        for (std::size_t i = 0; i < D; ++i)
            PGF_CHECK(lo[i] <= hi[i], "Rect requires lo <= hi on every axis");
        return Rect{lo, hi};
    }

    double extent(std::size_t i) const { return hi[i] - lo[i]; }

    double volume() const {
        double v = 1.0;
        for (std::size_t i = 0; i < D; ++i) v *= extent(i);
        return v;
    }

    Point<D> center() const {
        Point<D> c;
        for (std::size_t i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
        return c;
    }

    bool contains(const Point<D>& p) const {
        for (std::size_t i = 0; i < D; ++i)
            if (p[i] < lo[i] || p[i] >= hi[i]) return false;
        return true;
    }

    /// Closed-sense overlap test: boxes sharing only a face do NOT
    /// intersect under half-open semantics.
    bool intersects(const Rect& o) const {
        for (std::size_t i = 0; i < D; ++i)
            if (lo[i] >= o.hi[i] || o.lo[i] >= hi[i]) return false;
        return true;
    }

    /// Length of the overlap of the two boxes' projections on axis i
    /// (0 when disjoint on that axis).
    double overlap_extent(std::size_t i, const Rect& o) const {
        double l = std::max(lo[i], o.lo[i]);
        double h = std::min(hi[i], o.hi[i]);
        return h > l ? h - l : 0.0;
    }

    /// Gap between the two boxes' projections on axis i (0 when they touch
    /// or overlap).
    double gap_extent(std::size_t i, const Rect& o) const {
        double g = std::max(lo[i], o.lo[i]) - std::min(hi[i], o.hi[i]);
        return g > 0.0 ? g : 0.0;
    }

    friend bool operator==(const Rect&, const Rect&) = default;
};

template <std::size_t D>
std::ostream& operator<<(std::ostream& os, const Rect<D>& r) {
    return os << "[" << r.lo << " .. " << r.hi << ")";
}

}  // namespace pgf
