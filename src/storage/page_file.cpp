#include "pgf/storage/page_file.hpp"

#include <algorithm>
#include <cstring>

#include "pgf/storage/page.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

namespace {

constexpr char kMagic[8] = {'P', 'G', 'F', 'P', 'A', 'G', 'E', '2'};
constexpr std::size_t kSuperblockSize = 24;  // magic + page_size + page_count

void put_u64(std::byte* out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
    }
}

std::uint64_t get_u64(const std::byte* in) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    return v;
}

}  // namespace

PageFile PageFile::create(const std::string& path, std::size_t page_size) {
    PGF_CHECK(page_size >= kMinPageSize, "page size too small");
    PGF_CHECK(page_size > kPageHeaderBytes, "page size below header size");
    PageFile pf;
    pf.path_ = path;
    pf.page_size_ = page_size;
    pf.page_count_ = 0;
    pf.stream_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                              std::ios::trunc);
    PGF_CHECK(pf.stream_.is_open(), "PageFile: cannot create " + path);
    pf.write_superblock();
    return pf;
}

PageFile PageFile::open(const std::string& path) {
    PageFile pf;
    pf.path_ = path;
    pf.stream_.open(path, std::ios::binary | std::ios::in | std::ios::out);
    PGF_CHECK(pf.stream_.is_open(), "PageFile: cannot open " + path);
    std::byte header[kSuperblockSize];
    pf.stream_.seekg(0);
    pf.stream_.read(reinterpret_cast<char*>(header), kSuperblockSize);
    PGF_CHECK(pf.stream_.good(), "PageFile: truncated superblock in " + path);
    PGF_CHECK(std::memcmp(header, kMagic, sizeof(kMagic)) == 0,
              "PageFile: bad magic in " + path);
    pf.page_size_ = static_cast<std::size_t>(get_u64(header + 8));
    pf.page_count_ = get_u64(header + 16);
    PGF_CHECK(pf.page_size_ >= kMinPageSize,
              "PageFile: corrupt page size in " + path);
    return pf;
}

PageFile::~PageFile() {
    if (stream_.is_open() && !dead_) {
        write_superblock();
        stream_.flush();
    }
}

std::size_t PageFile::payload_size() const {
    return page_size_ - kPageHeaderBytes;
}

void PageFile::write_superblock() {
    if (dead_) return;
    std::byte header[kSuperblockSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    put_u64(header + 8, page_size_);
    put_u64(header + 16, page_count_);
    stream_.clear();
    stream_.seekp(0);
    stream_.write(reinterpret_cast<const char*>(header), kSuperblockSize);
    PGF_CHECK(stream_.good(), "PageFile: superblock write failed");
}

std::uint64_t PageFile::allocate() {
    std::uint64_t id = page_count_++;
    std::vector<std::byte> zero(page_size_, std::byte{0});
    write(id, zero);
    return id;
}

void PageFile::read(std::uint64_t id, std::span<std::byte> out) {
    PGF_CHECK(id < page_count_, "PageFile: read past end");
    PGF_CHECK(out.size() == page_size_, "PageFile: read buffer size mismatch");
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(kSuperblockSize +
                                              id * page_size_));
    stream_.read(reinterpret_cast<char*>(out.data()),
                 static_cast<std::streamsize>(page_size_));
    PGF_CHECK(stream_.good(), "PageFile: read failed");
    PGF_CHECK(page_checksum_ok(out),
              "PageFile: checksum mismatch on page " + std::to_string(id) +
                  " of " + path_ + " (torn or corrupt page)");
}

bool PageFile::try_read(std::uint64_t id, std::span<std::byte> out) {
    if (id >= page_count_ || out.size() != page_size_) return false;
    std::fill(out.begin(), out.end(), std::byte{0});
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(kSuperblockSize +
                                              id * page_size_));
    stream_.read(reinterpret_cast<char*>(out.data()),
                 static_cast<std::streamsize>(page_size_));
    // A short read at the tail of a crashed file leaves the zero fill in
    // place; the checksum decides whether what we got is a whole page.
    stream_.clear();
    return page_checksum_ok(out);
}

std::span<const std::byte> PageFile::stamp_image(
    std::span<const std::byte> data) {
    scratch_.assign(data.begin(), data.end());
    scratch_[4] = static_cast<std::byte>(kPageFormatVersion & 0xff);
    scratch_[5] = static_cast<std::byte>(kPageFormatVersion >> 8);
    scratch_[6] = std::byte{0};  // flags (reserved)
    scratch_[7] = std::byte{0};
    const std::uint32_t crc = page_compute_crc(scratch_);
    for (int i = 0; i < 4; ++i)
        scratch_[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((crc >> (8 * i)) & 0xff);
    return scratch_;
}

void PageFile::write_image(std::uint64_t id,
                           std::span<const std::byte> image) {
    if (dead_) return;
    stream_.clear();
    stream_.seekp(static_cast<std::streamoff>(kSuperblockSize +
                                              id * page_size_));
    stream_.write(reinterpret_cast<const char*>(image.data()),
                  static_cast<std::streamsize>(image.size()));
    PGF_CHECK(stream_.good(), "PageFile: write failed");
}

void PageFile::write(std::uint64_t id, std::span<const std::byte> data) {
    PGF_CHECK(id < page_count_, "PageFile: write past end");
    PGF_CHECK(data.size() == page_size_,
              "PageFile: write buffer size mismatch");
    write_image(id, stamp_image(data));
}

void PageFile::write_torn(std::uint64_t id, std::span<const std::byte> data,
                          std::size_t keep_bytes) {
    PGF_CHECK(id < page_count_, "PageFile: write past end");
    PGF_CHECK(data.size() == page_size_,
              "PageFile: write buffer size mismatch");
    const auto image = stamp_image(data);
    write_image(id, image.first(std::min(keep_bytes, image.size())));
}

void PageFile::write_payload(std::uint64_t id,
                             std::span<const std::byte> payload,
                             std::uint64_t lsn) {
    PGF_CHECK(payload.size() == payload_size(),
              "PageFile: payload size mismatch");
    std::vector<std::byte> page(page_size_, std::byte{0});
    set_page_lsn(page, lsn);
    std::memcpy(page.data() + kPageHeaderBytes, payload.data(),
                payload.size());
    write(id, page);
}

void PageFile::ensure_page_count(std::uint64_t n) {
    while (page_count_ < n) allocate();
}

void PageFile::sync() {
    if (dead_) return;
    write_superblock();
    stream_.flush();
    PGF_CHECK(stream_.good(), "PageFile: sync failed");
}

}  // namespace pgf
