#include "pgf/storage/partition.hpp"

#include <memory>
#include <vector>

#include "pgf/storage/page_file.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

PartitionResult partition_pages(const std::string& source_path,
                                const std::vector<std::uint64_t>& bucket_pages,
                                const Assignment& assignment,
                                const std::string& output_prefix) {
    PGF_CHECK(bucket_pages.size() == assignment.disk_of.size(),
              "partition_pages: one page per assigned bucket required");
    PGF_CHECK(assignment.num_disks >= 1, "partition_pages: need disks");

    PageFile source = PageFile::open(source_path);
    PartitionResult result;
    result.pages_per_disk.assign(assignment.num_disks, 0);
    result.location.resize(bucket_pages.size());

    std::vector<std::unique_ptr<PageFile>> disks;
    disks.reserve(assignment.num_disks);
    for (std::uint32_t d = 0; d < assignment.num_disks; ++d) {
        std::string path = output_prefix + ".disk" + std::to_string(d);
        disks.push_back(std::make_unique<PageFile>(
            PageFile::create(path, source.page_size())));
        result.paths.push_back(std::move(path));
    }

    std::vector<std::byte> buffer(source.page_size());
    for (std::size_t b = 0; b < bucket_pages.size(); ++b) {
        std::uint32_t d = assignment.disk_of[b];
        PGF_CHECK(d < assignment.num_disks,
                  "partition_pages: assignment references unknown disk");
        source.read(bucket_pages[b], buffer);
        std::uint64_t page = disks[d]->allocate();
        disks[d]->write(page, buffer);
        result.location[b] = {d, page};
        ++result.pages_per_disk[d];
    }
    for (auto& disk : disks) disk->sync();
    return result;
}

}  // namespace pgf
