#include "pgf/storage/wal.hpp"

#include <cstring>
#include <filesystem>

#include "pgf/storage/fault_injection.hpp"
#include "pgf/storage/page.hpp"
#include "pgf/util/check.hpp"

namespace pgf {

namespace {

constexpr char kWalMagic[8] = {'P', 'G', 'F', 'W', 'A', 'L', '1', '\0'};
constexpr std::size_t kFileHeaderBytes = 16;  // magic + u64 reserved
constexpr std::size_t kEnvelopeBytes = 17;    // crc + len + lsn + kind
// Body-length sanity bound for the tail scan: far above any real record
// (the largest is a page image), far below anything that could make the
// scan read garbage as a length and allocate wild.
constexpr std::uint32_t kMaxBodyBytes = 1u << 24;

void encode_record(std::vector<std::byte>& out, std::uint64_t lsn,
                   WalRecordKind kind, std::span<const std::byte> body) {
    const std::size_t start = out.size();
    out.resize(start + kEnvelopeBytes);
    auto* p = out.data() + start;
    const auto len = static_cast<std::uint32_t>(body.size());
    for (int i = 0; i < 4; ++i)
        p[4 + i] = static_cast<std::byte>((len >> (8 * i)) & 0xff);
    for (int i = 0; i < 8; ++i)
        p[8 + i] = static_cast<std::byte>((lsn >> (8 * i)) & 0xff);
    p[16] = static_cast<std::byte>(kind);
    out.insert(out.end(), body.begin(), body.end());
    // Checksum over everything after the crc field (len, lsn, kind, body).
    const std::uint32_t crc = crc32c(
        std::span<const std::byte>(out).subspan(start + 4));
    p = out.data() + start;  // insert() may have reallocated
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::byte>((crc >> (8 * i)) & 0xff);
}

}  // namespace

// ---------------------------------------------------------------- WAL writer

std::unique_ptr<WriteAheadLog> WriteAheadLog::create(const std::string& path) {
    auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
    wal->path_ = path;
    MutexLock lock(wal->latch_);
    wal->stream_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                                std::ios::trunc);
    PGF_CHECK(wal->stream_.is_open(), "WAL: cannot create " + path);
    std::byte header[kFileHeaderBytes] = {};
    std::memcpy(header, kWalMagic, sizeof(kWalMagic));
    wal->stream_.write(reinterpret_cast<const char*>(header),
                       kFileHeaderBytes);
    wal->stream_.flush();
    PGF_CHECK(wal->stream_.good(), "WAL: header write failed for " + path);
    return wal;
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::open(const std::string& path) {
    WalReader reader(path);
    const auto scan = reader.scan();
    // Drop the torn tail so the resumed LSN sequence stays dense.
    std::filesystem::resize_file(path, scan.valid_bytes);

    auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
    wal->path_ = path;
    MutexLock lock(wal->latch_);
    wal->stream_.open(path, std::ios::binary | std::ios::in | std::ios::out);
    PGF_CHECK(wal->stream_.is_open(), "WAL: cannot open " + path);
    wal->stream_.seekp(0, std::ios::end);
    wal->last_lsn_ = scan.last_lsn;
    wal->durable_lsn_.store(scan.last_lsn, std::memory_order_release);
    return wal;
}

WriteAheadLog::~WriteAheadLog() {
    // Destructor flush: a triggered crash fault must not escape — the
    // poisoned state *is* the simulated crash.
    try {
        MutexLock lock(latch_);
        flush_locked();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

std::uint64_t WriteAheadLog::append(WalRecordKind kind,
                                    std::span<const std::byte> body) {
    MutexLock lock(latch_);
    const std::uint64_t lsn = ++last_lsn_;
    if (dead_) return lsn;  // post-crash: everything is silently dropped
    encode_record(buf_, lsn, kind, body);
    ++stats_.records;
    stats_.bytes += kEnvelopeBytes + body.size();
    if (buf_.size() >= kAutoFlushBytes) flush_locked();
    return lsn;
}

std::uint64_t WriteAheadLog::last_lsn() const {
    MutexLock lock(latch_);
    return last_lsn_;
}

void WriteAheadLog::flush() {
    MutexLock lock(latch_);
    flush_locked();
}

void WriteAheadLog::flush_up_to(std::uint64_t lsn) {
    if (lsn == 0 || lsn <= durable_lsn()) return;
    flush();
}

void WriteAheadLog::set_fault_injector(FaultInjector* injector) {
    MutexLock lock(latch_);
    injector_ = injector;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
    MutexLock lock(latch_);
    return stats_;
}

void WriteAheadLog::flush_locked() {
    if (dead_) {
        buf_.clear();
        return;
    }
    if (buf_.empty()) return;
    if (injector_ != nullptr) {
        if (injector_->crashed()) {  // crash already happened elsewhere
            dead_ = true;
            buf_.clear();
            return;
        }
        if (injector_->should_crash()) {
            // Torn group write: half the buffer reaches disk, then the
            // "process" dies. The tail scan on reopen must cut this off.
            const std::size_t keep = buf_.size() / 2;
            stream_.write(reinterpret_cast<const char*>(buf_.data()),
                          static_cast<std::streamsize>(keep));
            stream_.flush();
            dead_ = true;
            buf_.clear();
            throw CrashError("injected crash during WAL flush");
        }
    }
    stream_.write(reinterpret_cast<const char*>(buf_.data()),
                  static_cast<std::streamsize>(buf_.size()));
    stream_.flush();
    PGF_CHECK(stream_.good(), "WAL: flush failed for " + path_);
    buf_.clear();
    ++stats_.flushes;
    durable_lsn_.store(last_lsn_, std::memory_order_release);
}

// ---------------------------------------------------------------- WAL reader

WalReader::WalReader(const std::string& path) : path_(path) {
    stream_.open(path, std::ios::binary);
    PGF_CHECK(stream_.is_open(), "WAL: cannot open " + path);
}

WalReader::ScanResult WalReader::scan() {
    std::byte header[kFileHeaderBytes];
    stream_.clear();
    stream_.seekg(0);
    stream_.read(reinterpret_cast<char*>(header), kFileHeaderBytes);
    PGF_CHECK(stream_.good() &&
                  std::memcmp(header, kWalMagic, sizeof(kWalMagic)) == 0,
              "WAL: bad magic in " + path_ + " (not a write-ahead log)");
    pos_ = kFileHeaderBytes;
    prev_lsn_ = 0;

    ScanResult result;
    result.valid_bytes = kFileHeaderBytes;
    result.commit_bytes = kFileHeaderBytes;
    Record rec;
    std::uint64_t consumed = 0;
    while (read_record(rec, consumed)) {
        pos_ += consumed;
        prev_lsn_ = rec.lsn;
        result.valid_bytes = pos_;
        ++result.records;
        result.last_lsn = rec.lsn;
        if (rec.kind == WalRecordKind::kCommit) {
            result.last_commit_lsn = rec.lsn;
            result.commit_bytes = pos_;
        }
        if (rec.kind == WalRecordKind::kGenesis) result.has_genesis = true;
    }
    valid_bytes_ = result.valid_bytes;
    scanned_ = true;
    rewind();
    return result;
}

void WalReader::rewind() {
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(kFileHeaderBytes));
    pos_ = kFileHeaderBytes;
    prev_lsn_ = 0;
}

bool WalReader::next(Record& out) {
    PGF_CHECK(scanned_, "WAL: next() before scan()");
    if (pos_ >= valid_bytes_) return false;
    std::uint64_t consumed = 0;
    const bool ok = read_record(out, consumed);
    PGF_CHECK(ok, "WAL: record inside the valid prefix failed to re-read");
    pos_ += consumed;
    prev_lsn_ = out.lsn;
    return true;
}

bool WalReader::read_record(Record& out, std::uint64_t& consumed) {
    std::byte env[kEnvelopeBytes];
    stream_.clear();
    stream_.seekg(static_cast<std::streamoff>(pos_));
    stream_.read(reinterpret_cast<char*>(env), kEnvelopeBytes);
    if (stream_.gcount() != static_cast<std::streamsize>(kEnvelopeBytes))
        return false;

    std::uint32_t stored_crc = 0;
    std::uint32_t len = 0;
    std::uint64_t lsn = 0;
    for (int i = 0; i < 4; ++i) {
        stored_crc |= static_cast<std::uint32_t>(
                          std::to_integer<std::uint8_t>(env[i]))
                      << (8 * i);
        len |= static_cast<std::uint32_t>(
                   std::to_integer<std::uint8_t>(env[4 + i]))
               << (8 * i);
    }
    for (int i = 0; i < 8; ++i)
        lsn |= static_cast<std::uint64_t>(
                   std::to_integer<std::uint8_t>(env[8 + i]))
               << (8 * i);
    const auto kind = std::to_integer<std::uint8_t>(env[16]);

    if (len > kMaxBodyBytes) return false;
    if (kind < static_cast<std::uint8_t>(WalRecordKind::kGenesis) ||
        kind > static_cast<std::uint8_t>(WalRecordKind::kCommit))
        return false;
    if (lsn != prev_lsn_ + 1) return false;  // LSNs are dense and increasing

    out.body.resize(len);
    if (len > 0) {
        stream_.read(reinterpret_cast<char*>(out.body.data()),
                     static_cast<std::streamsize>(len));
        if (stream_.gcount() != static_cast<std::streamsize>(len))
            return false;
    }

    std::uint32_t crc = crc32c(
        std::span<const std::byte>(env).subspan(4));
    crc = crc32c(out.body, crc);
    if (crc != stored_crc) return false;

    out.lsn = lsn;
    out.kind = static_cast<WalRecordKind>(kind);
    consumed = kEnvelopeBytes + len;
    return true;
}

}  // namespace pgf
