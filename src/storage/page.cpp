#include "pgf/storage/page.hpp"

#include <array>

namespace pgf {
namespace {

constexpr std::uint32_t kCastagnoli = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kCastagnoli : 0u);
        table[i] = crc;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc32c_table();

// Header field offsets (little endian throughout).
constexpr std::size_t kCrcOffset = 0;
constexpr std::size_t kCrcBytes = 4;
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kLsnOffset = 8;

std::uint32_t get_u32(std::span<const std::byte> p, std::size_t off) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(
                 p[off + i]))
             << (8 * i);
    return v;
}

std::uint64_t get_u64(std::span<const std::byte> p, std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
                 p[off + i]))
             << (8 * i);
    return v;
}

void put_u64(std::span<std::byte> p, std::size_t off, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i)
        p[off + i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
    std::uint32_t crc = seed;
    for (const std::byte b : data)
        crc = kCrcTable[(crc ^ std::to_integer<std::uint8_t>(b)) & 0xFFu] ^
              (crc >> 8);
    return crc;
}

std::uint32_t page_stored_crc(std::span<const std::byte> page) {
    return get_u32(page, kCrcOffset);
}

std::uint32_t page_compute_crc(std::span<const std::byte> page) {
    return crc32c(page.subspan(kCrcBytes));
}

bool page_checksum_ok(std::span<const std::byte> page) {
    return page.size() >= kPageHeaderBytes &&
           page_stored_crc(page) == page_compute_crc(page);
}

std::uint16_t page_version(std::span<const std::byte> page) {
    return static_cast<std::uint16_t>(
        std::to_integer<std::uint8_t>(page[kVersionOffset]) |
        (std::to_integer<std::uint8_t>(page[kVersionOffset + 1]) << 8));
}

std::uint64_t page_lsn(std::span<const std::byte> page) {
    return get_u64(page, kLsnOffset);
}

void set_page_lsn(std::span<std::byte> page, std::uint64_t lsn) {
    put_u64(page, kLsnOffset, lsn);
}

}  // namespace pgf
