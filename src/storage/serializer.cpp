#include "pgf/storage/serializer.hpp"

#include <bit>
#include <cstring>

#include "pgf/util/check.hpp"

namespace pgf {

ByteWriter::ByteWriter(BufferPool& pool) : pool_(pool) {
    auto page = pool_.allocate();
    first_page_ = current_page_ = page.page_id();
    page.mark_dirty();
}

void ByteWriter::put_byte(std::byte b) {
    PGF_CHECK(!finished_, "write after finish()");
    auto page = pool_.fetch(current_page_);
    if (offset_ == page.data().size()) {
        auto next = pool_.allocate();
        // Pages are allocated consecutively by construction; the reader
        // relies on that to walk the stream.
        PGF_CHECK(next.page_id() == current_page_ + 1,
                  "ByteWriter requires exclusive use of the page file");
        next.mark_dirty();
        current_page_ = next.page_id();
        offset_ = 0;
        next.data()[offset_++] = b;
        ++bytes_;
        return;
    }
    page.data()[offset_++] = b;
    page.mark_dirty();
    ++bytes_;
}

void ByteWriter::put_u8(std::uint8_t v) { put_byte(static_cast<std::byte>(v)); }

void ByteWriter::put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        put_byte(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

void ByteWriter::put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        put_byte(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

void ByteWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    for (char c : s) put_byte(static_cast<std::byte>(c));
}

void ByteWriter::finish() {
    finished_ = true;
    pool_.flush_all();
}

ByteReader::ByteReader(BufferPool& pool, std::uint64_t first_page)
    : pool_(pool), current_page_(first_page) {}

std::byte ByteReader::get_byte() {
    auto page = pool_.fetch(current_page_);
    if (offset_ == page.data().size()) {
        ++current_page_;
        offset_ = 0;
        auto next = pool_.fetch(current_page_);
        ++bytes_;
        return next.data()[offset_++];
    }
    ++bytes_;
    return page.data()[offset_++];
}

std::uint8_t ByteReader::get_u8() {
    return static_cast<std::uint8_t>(get_byte());
}

std::uint32_t ByteReader::get_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(get_byte()) << (8 * i);
    }
    return v;
}

std::uint64_t ByteReader::get_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(get_byte()) << (8 * i);
    }
    return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string ByteReader::get_string() {
    std::uint32_t n = get_u32();
    std::string s;
    s.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(get_byte()));
    }
    return s;
}

}  // namespace pgf
