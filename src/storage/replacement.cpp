#include "pgf/storage/replacement.hpp"

#include <algorithm>
#include <limits>

#include "pgf/util/check.hpp"

namespace pgf {

std::string to_string(ReplacementPolicy policy) {
    switch (policy) {
        case ReplacementPolicy::kLru: return "lru";
        case ReplacementPolicy::kLruK: return "lru-k";
        case ReplacementPolicy::kClock: return "clock";
        case ReplacementPolicy::kTwoQ: return "2q";
        case ReplacementPolicy::kLfu: return "lfu";
    }
    return "?";
}

std::optional<ReplacementPolicy> parse_policy(std::string_view text) {
    if (text == "lru") return ReplacementPolicy::kLru;
    if (text == "lru-k" || text == "lruk" || text == "lru2") {
        return ReplacementPolicy::kLruK;
    }
    if (text == "clock") return ReplacementPolicy::kClock;
    if (text == "2q" || text == "twoq") return ReplacementPolicy::kTwoQ;
    if (text == "lfu") return ReplacementPolicy::kLfu;
    return std::nullopt;
}

// ---------------------------------------------------------------- LRU --

void LruReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    stamp_[frame] = ++clock_;
}

void LruReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    stamp_[frame] = ++clock_;
}

std::size_t LruReplacer::victim(const std::vector<bool>& evictable,
                                Mutex& /*latch*/) {
    // First minimal stamp wins on ties — the order the historical pool's
    // strict `<` scan produced.
    std::size_t best = evictable.size();
    for (std::size_t i = 0; i < evictable.size(); ++i) {
        if (evictable[i] &&
            (best == evictable.size() || stamp_[i] < stamp_[best])) {
            best = i;
        }
    }
    return best;
}

void LruReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                           Mutex& /*latch*/) {
    stamp_[frame] = 0;
}

// -------------------------------------------------------------- LRU-K --

LruKReplacer::LruKReplacer(std::size_t capacity, std::size_t k)
    : k_(k), history_(capacity) {
    PGF_CHECK(k_ >= 1, "LRU-K needs k >= 1");
    for (History& h : history_) h.stamps.assign(k_, 0);
}

void LruKReplacer::record(std::size_t frame) {
    History& h = history_[frame];
    h.stamps[h.next] = ++clock_;
    h.next = (h.next + 1) % k_;
    if (h.count < k_) ++h.count;
}

void LruKReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                             Mutex& /*latch*/) {
    History& h = history_[frame];
    h.next = 0;
    h.count = 0;
    record(frame);
}

void LruKReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    record(frame);
}

std::size_t LruKReplacer::victim(const std::vector<bool>& evictable,
                                 Mutex& /*latch*/) {
    // Frames with fewer than K recorded accesses have infinite backward-K
    // distance and beat every full-history frame; among them the one whose
    // *most recent* access is oldest goes first. Full-history frames
    // compete on their K-th-most-recent (i.e. oldest retained) stamp.
    std::size_t best = evictable.size();
    bool best_infinite = false;
    std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < evictable.size(); ++i) {
        if (!evictable[i]) continue;
        const History& h = history_[i];
        const bool infinite = h.count < k_;
        std::uint64_t key;
        if (infinite) {
            // Most recent stamp: the slot just before the write cursor.
            const std::size_t last = (h.next + k_ - 1) % k_;
            key = h.count == 0 ? 0 : h.stamps[last];
        } else {
            // Oldest retained stamp lives at the write cursor.
            key = h.stamps[h.next];
        }
        if (best == evictable.size() || (infinite && !best_infinite) ||
            (infinite == best_infinite && key < best_key)) {
            best = i;
            best_infinite = infinite;
            best_key = key;
        }
    }
    return best;
}

void LruKReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    History& h = history_[frame];
    h.next = 0;
    h.count = 0;
}

// -------------------------------------------------------------- CLOCK --

void ClockReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                              Mutex& /*latch*/) {
    referenced_[frame] = true;
}

void ClockReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    referenced_[frame] = true;
}

std::size_t ClockReplacer::victim(const std::vector<bool>& evictable,
                                  Mutex& /*latch*/) {
    const std::size_t n = evictable.size();
    bool any = std::find(evictable.begin(), evictable.end(), true) !=
               evictable.end();
    if (!any) return n;
    // At most two sweeps: the first clears every set bit among the
    // eligible frames, so the second must find a clear one.
    for (std::size_t step = 0; step < 2 * n; ++step) {
        const std::size_t i = hand_;
        hand_ = (hand_ + 1) % n;
        if (!evictable[i]) continue;  // pinned/absent frames keep their bit
        if (referenced_[i]) {
            referenced_[i] = false;
            continue;
        }
        return i;
    }
    return n;
}

void ClockReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                             Mutex& /*latch*/) {
    referenced_[frame] = false;
}

// ----------------------------------------------------------------- 2Q --

TwoQReplacer::TwoQReplacer(std::size_t capacity)
    : a1_target_(std::max<std::size_t>(1, capacity / 4)),
      ghost_limit_(std::max<std::size_t>(1, capacity)),
      queue_(capacity, Queue::kNone),
      stamp_(capacity, 0) {}

std::size_t TwoQReplacer::resident_a1() const {
    return static_cast<std::size_t>(
        std::count(queue_.begin(), queue_.end(), Queue::kA1));
}

void TwoQReplacer::on_insert(std::size_t frame, std::uint64_t page,
                             Mutex& /*latch*/) {
    auto ghost = ghost_.find(page);
    if (ghost != ghost_.end()) {
        // Reuse across a window wider than A1in: promote straight to Am.
        ghost_.erase(ghost);  // stale fifo entry skipped during trimming
        queue_[frame] = Queue::kAm;
    } else {
        queue_[frame] = Queue::kA1;
    }
    stamp_[frame] = ++clock_;
}

void TwoQReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    // Full 2Q: hits inside A1in do NOT promote — pages must prove reuse
    // beyond the correlated-reference window. Am hits refresh LRU order.
    if (queue_[frame] == Queue::kAm) stamp_[frame] = ++clock_;
}

std::size_t TwoQReplacer::victim(const std::vector<bool>& evictable,
                                 Mutex& /*latch*/) {
    std::size_t a1_front = evictable.size();
    std::size_t am_lru = evictable.size();
    for (std::size_t i = 0; i < evictable.size(); ++i) {
        if (!evictable[i]) continue;
        if (queue_[i] == Queue::kA1) {
            if (a1_front == evictable.size() ||
                stamp_[i] < stamp_[a1_front]) {
                a1_front = i;
            }
        } else if (queue_[i] == Queue::kAm) {
            if (am_lru == evictable.size() || stamp_[i] < stamp_[am_lru]) {
                am_lru = i;
            }
        }
    }
    if (a1_front != evictable.size() && resident_a1() > a1_target_) {
        return a1_front;
    }
    if (am_lru != evictable.size()) return am_lru;
    return a1_front;
}

void TwoQReplacer::on_evict(std::size_t frame, std::uint64_t page,
                            Mutex& /*latch*/) {
    if (queue_[frame] == Queue::kA1) {
        // Leaving A1in: remember the page id so a near-future re-fetch is
        // recognized as reuse and promoted to Am.
        if (ghost_.insert(page).second) ghost_fifo_.push_back(page);
        while (ghost_.size() > ghost_limit_ && !ghost_fifo_.empty()) {
            const std::uint64_t old = ghost_fifo_.front();
            ghost_fifo_.pop_front();
            ghost_.erase(old);  // no-op for ids already promoted out
        }
    }
    queue_[frame] = Queue::kNone;
    stamp_[frame] = 0;
}

// ---------------------------------------------------------------- LFU --

void LfuReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    count_[frame] = 1;  // install counts as the first reference
    stamp_[frame] = ++clock_;
}

void LfuReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    ++count_[frame];
    stamp_[frame] = ++clock_;
}

std::size_t LfuReplacer::victim(const std::vector<bool>& evictable,
                                Mutex& /*latch*/) {
    // Smallest (count, stamp): least frequent first, least recent among
    // equally frequent frames (first index wins exact ties, matching the
    // other policies' strict `<` scan order).
    std::size_t best = evictable.size();
    for (std::size_t i = 0; i < evictable.size(); ++i) {
        if (!evictable[i]) continue;
        if (best == evictable.size() || count_[i] < count_[best] ||
            (count_[i] == count_[best] && stamp_[i] < stamp_[best])) {
            best = i;
        }
    }
    return best;
}

void LfuReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                           Mutex& /*latch*/) {
    count_[frame] = 0;
    stamp_[frame] = 0;
}

// ------------------------------------------------------------ factory --

std::unique_ptr<Replacer> make_replacer(const BufferPoolConfig& config,
                                        std::size_t capacity) {
    switch (config.policy) {
        case ReplacementPolicy::kLru:
            return std::make_unique<LruReplacer>(capacity);
        case ReplacementPolicy::kLruK:
            return std::make_unique<LruKReplacer>(capacity, config.lru_k);
        case ReplacementPolicy::kClock:
            return std::make_unique<ClockReplacer>(capacity);
        case ReplacementPolicy::kTwoQ:
            return std::make_unique<TwoQReplacer>(capacity);
        case ReplacementPolicy::kLfu:
            return std::make_unique<LfuReplacer>(capacity);
    }
    PGF_CHECK(false, "unknown replacement policy");
    return nullptr;
}

}  // namespace pgf
