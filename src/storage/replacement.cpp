#include "pgf/storage/replacement.hpp"

#include <algorithm>
#include <limits>

#include "pgf/util/check.hpp"

namespace pgf {

std::string to_string(ReplacementPolicy policy) {
    switch (policy) {
        case ReplacementPolicy::kLru: return "lru";
        case ReplacementPolicy::kLruK: return "lru-k";
        case ReplacementPolicy::kClock: return "clock";
        case ReplacementPolicy::kTwoQ: return "2q";
        case ReplacementPolicy::kLfu: return "lfu";
    }
    return "?";
}

std::optional<ReplacementPolicy> parse_policy(std::string_view text) {
    if (text == "lru") return ReplacementPolicy::kLru;
    if (text == "lru-k" || text == "lruk" || text == "lru2") {
        return ReplacementPolicy::kLruK;
    }
    if (text == "clock") return ReplacementPolicy::kClock;
    if (text == "2q" || text == "twoq") return ReplacementPolicy::kTwoQ;
    if (text == "lfu") return ReplacementPolicy::kLfu;
    return std::nullopt;
}

// ---------------------------------------------------------------- LRU --

LruReplacer::LruReplacer(std::size_t capacity)
    : prev_(capacity, kNil), next_(capacity, kNil), linked_(capacity, false) {}

void LruReplacer::unlink(std::size_t frame) {
    const std::size_t p = prev_[frame];
    const std::size_t n = next_[frame];
    if (p != kNil) next_[p] = n; else head_ = n;
    if (n != kNil) prev_[n] = p; else tail_ = p;
    prev_[frame] = kNil;
    next_[frame] = kNil;
    linked_[frame] = false;
}

void LruReplacer::push_back(std::size_t frame) {
    prev_[frame] = tail_;
    next_[frame] = kNil;
    if (tail_ != kNil) next_[tail_] = frame; else head_ = frame;
    tail_ = frame;
    linked_[frame] = true;
}

void LruReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    if (linked_[frame]) unlink(frame);
    push_back(frame);
}

void LruReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    if (linked_[frame]) unlink(frame);
    push_back(frame);
}

std::size_t LruReplacer::victim(const EvictableView& view, Mutex& /*latch*/) {
    // List order == increasing access stamps, so the first eligible frame
    // from the cold end is exactly the historical argmin-stamp choice.
    for (std::size_t i = head_; i != kNil; i = next_[i]) {
        if (view[i]) return i;
    }
    return view.size();
}

void LruReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                           Mutex& /*latch*/) {
    if (linked_[frame]) unlink(frame);
}

// -------------------------------------------------------------- LRU-K --

LruKReplacer::LruKReplacer(std::size_t capacity, std::size_t k)
    : k_(k), history_(capacity), resident_(capacity, false) {
    PGF_CHECK(k_ >= 1, "LRU-K needs k >= 1");
    for (History& h : history_) h.stamps.assign(k_, 0);
}

LruKReplacer::Key LruKReplacer::key_of(std::size_t frame) const {
    const History& h = history_[frame];
    if (h.count < k_) {
        // Infinite backward-K distance: sorts before every full-history
        // frame (flag 0); LRU among themselves by most recent stamp.
        const std::size_t last = (h.next + k_ - 1) % k_;
        return Key{0, h.count == 0 ? 0 : h.stamps[last]};
    }
    // Full history: compete on the oldest retained stamp (at the cursor).
    return Key{1, h.stamps[h.next]};
}

void LruKReplacer::record(std::size_t frame) {
    History& h = history_[frame];
    h.stamps[h.next] = ++clock_;
    h.next = (h.next + 1) % k_;
    if (h.count < k_) ++h.count;
}

void LruKReplacer::reindex(std::size_t frame) {
    record(frame);
    order_.insert({key_of(frame), frame});
}

void LruKReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                             Mutex& /*latch*/) {
    if (resident_[frame]) order_.erase({key_of(frame), frame});
    History& h = history_[frame];
    h.next = 0;
    h.count = 0;
    resident_[frame] = true;
    reindex(frame);
}

void LruKReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    order_.erase({key_of(frame), frame});
    reindex(frame);
}

std::size_t LruKReplacer::victim(const EvictableView& view, Mutex& /*latch*/) {
    // Ascending (infinite-first, distance-stamp) order; keys are unique
    // (stamps are), so the first eligible entry equals the historical
    // linear argmin's choice.
    for (const auto& [key, frame] : order_) {
        if (view[frame]) return frame;
    }
    return view.size();
}

void LruKReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    if (resident_[frame]) {
        order_.erase({key_of(frame), frame});
        resident_[frame] = false;
    }
    History& h = history_[frame];
    h.next = 0;
    h.count = 0;
}

// -------------------------------------------------------------- CLOCK --

void ClockReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                              Mutex& /*latch*/) {
    referenced_[frame] = true;
}

void ClockReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    referenced_[frame] = true;
}

std::size_t ClockReplacer::victim(const EvictableView& view,
                                  Mutex& /*latch*/) {
    const std::size_t n = view.size();
    bool any = false;
    for (std::size_t i = 0; i < n && !any; ++i) any = view[i];
    if (!any) return n;
    // At most two sweeps: the first clears every set bit among the
    // eligible frames, so the second must find a clear one.
    for (std::size_t step = 0; step < 2 * n; ++step) {
        const std::size_t i = hand_;
        hand_ = (hand_ + 1) % n;
        if (!view[i]) continue;  // pinned/absent frames keep their bit
        if (referenced_[i]) {
            referenced_[i] = false;
            continue;
        }
        return i;
    }
    return n;
}

void ClockReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                             Mutex& /*latch*/) {
    referenced_[frame] = false;
}

// ----------------------------------------------------------------- 2Q --

TwoQReplacer::TwoQReplacer(std::size_t capacity)
    : a1_target_(std::max<std::size_t>(1, capacity / 4)),
      ghost_limit_(std::max<std::size_t>(1, capacity)),
      queue_(capacity, Queue::kNone),
      stamp_(capacity, 0) {}

void TwoQReplacer::on_insert(std::size_t frame, std::uint64_t page,
                             Mutex& /*latch*/) {
    auto ghost = ghost_.find(page);
    if (ghost != ghost_.end()) {
        // Reuse across a window wider than A1in: promote straight to Am.
        ghost_.erase(ghost);  // stale fifo entry skipped during trimming
        queue_[frame] = Queue::kAm;
    } else {
        queue_[frame] = Queue::kA1;
        ++resident_a1_;
    }
    stamp_[frame] = ++clock_;
}

void TwoQReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    // Full 2Q: hits inside A1in do NOT promote — pages must prove reuse
    // beyond the correlated-reference window. Am hits refresh LRU order.
    if (queue_[frame] == Queue::kAm) stamp_[frame] = ++clock_;
}

std::size_t TwoQReplacer::victim(const EvictableView& view,
                                 Mutex& /*latch*/) {
    std::size_t a1_front = view.size();
    std::size_t am_lru = view.size();
    for (std::size_t i = 0; i < view.size(); ++i) {
        if (!view[i]) continue;
        if (queue_[i] == Queue::kA1) {
            if (a1_front == view.size() || stamp_[i] < stamp_[a1_front]) {
                a1_front = i;
            }
        } else if (queue_[i] == Queue::kAm) {
            if (am_lru == view.size() || stamp_[i] < stamp_[am_lru]) {
                am_lru = i;
            }
        }
    }
    if (a1_front != view.size() && resident_a1_ > a1_target_) {
        return a1_front;
    }
    if (am_lru != view.size()) return am_lru;
    return a1_front;
}

void TwoQReplacer::on_evict(std::size_t frame, std::uint64_t page,
                            Mutex& /*latch*/) {
    if (queue_[frame] == Queue::kA1) {
        --resident_a1_;
        // Leaving A1in: remember the page id so a near-future re-fetch is
        // recognized as reuse and promoted to Am.
        if (ghost_.insert(page).second) ghost_fifo_.push_back(page);
        while (ghost_.size() > ghost_limit_ && !ghost_fifo_.empty()) {
            const std::uint64_t old = ghost_fifo_.front();
            ghost_fifo_.pop_front();
            ghost_.erase(old);  // no-op for ids already promoted out
        }
    }
    queue_[frame] = Queue::kNone;
    stamp_[frame] = 0;
}

// ---------------------------------------------------------------- LFU --

LfuReplacer::LfuReplacer(std::size_t capacity)
    : count_(capacity, 0), stamp_(capacity, 0), resident_(capacity, false) {}

void LfuReplacer::reindex(std::size_t frame, Key key) {
    if (resident_[frame]) {
        order_.erase({Key{count_[frame], stamp_[frame]}, frame});
    }
    count_[frame] = key.first;
    stamp_[frame] = key.second;
    resident_[frame] = true;
    order_.insert({key, frame});
}

void LfuReplacer::on_insert(std::size_t frame, std::uint64_t /*page*/,
                            Mutex& /*latch*/) {
    reindex(frame, Key{1, ++clock_});  // install counts as first reference
}

void LfuReplacer::on_access(std::size_t frame, Mutex& /*latch*/) {
    reindex(frame, Key{count_[frame] + 1, ++clock_});
}

std::size_t LfuReplacer::victim(const EvictableView& view, Mutex& /*latch*/) {
    // Smallest (count, stamp) lexicographically: least frequent first,
    // least recent among equally frequent frames. Stamps are unique, so
    // the set order matches the historical strict `<` linear scan.
    for (const auto& [key, frame] : order_) {
        if (view[frame]) return frame;
    }
    return view.size();
}

void LfuReplacer::on_evict(std::size_t frame, std::uint64_t /*page*/,
                           Mutex& /*latch*/) {
    if (resident_[frame]) {
        order_.erase({Key{count_[frame], stamp_[frame]}, frame});
        resident_[frame] = false;
    }
    count_[frame] = 0;
    stamp_[frame] = 0;
}

// ------------------------------------------------------------ factory --

std::unique_ptr<Replacer> make_replacer(const BufferPoolConfig& config,
                                        std::size_t capacity) {
    switch (config.policy) {
        case ReplacementPolicy::kLru:
            return std::make_unique<LruReplacer>(capacity);
        case ReplacementPolicy::kLruK:
            return std::make_unique<LruKReplacer>(capacity, config.lru_k);
        case ReplacementPolicy::kClock:
            return std::make_unique<ClockReplacer>(capacity);
        case ReplacementPolicy::kTwoQ:
            return std::make_unique<TwoQReplacer>(capacity);
        case ReplacementPolicy::kLfu:
            return std::make_unique<LfuReplacer>(capacity);
    }
    PGF_CHECK(false, "unknown replacement policy");
    return nullptr;
}

}  // namespace pgf
