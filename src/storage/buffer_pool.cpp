#include "pgf/storage/buffer_pool.hpp"

#include <algorithm>

namespace pgf {

BufferPool::BufferPool(PageFile& file, std::size_t capacity,
                       BufferPoolConfig config, WriteAheadLog* wal)
    : file_(file), capacity_(capacity), config_(config), wal_(wal) {
    PGF_CHECK(capacity_ >= 1, "BufferPool needs at least one frame");
    MutexLock lock(latch_);
    frames_.resize(capacity_);
    policy_ = make_replacer(config_, capacity_);
    // Stack of never-used frames, popped back-to-front so frames fill in
    // index order — the same order the historical linear free scan used.
    free_.reserve(capacity_);
    for (std::size_t i = capacity_; i > 0; --i) free_.push_back(i - 1);
}

BufferPool::~BufferPool() {
    // Best-effort flush; failures here cannot throw out of a destructor.
    try {
        flush_all();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void BufferPool::PageRef::mark_dirty() {
    pool_->mark_dirty_frame(frame_);
}

void BufferPool::PageRef::set_lsn(std::uint64_t lsn) {
    pool_->set_frame_lsn(frame_, lsn);
}

void BufferPool::mark_dirty_frame(std::size_t frame) {
    MutexLock lock(latch_);
    frames_[frame].dirty = true;
}

void BufferPool::set_frame_lsn(std::size_t frame, std::uint64_t lsn) {
    MutexLock lock(latch_);
    set_page_lsn(frames_[frame].data, lsn);
}

bool BufferPool::demand_evictable(const void* frames, std::size_t i) {
    const auto& fs = *static_cast<const std::vector<Frame>*>(frames);
    return fs[i].pin_count == 0;
}

bool BufferPool::prefetch_evictable(const void* frames, std::size_t i) {
    const auto& fs = *static_cast<const std::vector<Frame>*>(frames);
    return fs[i].pin_count == 0 && !fs[i].prefetched;
}

BufferPool::PageRef BufferPool::fetch(std::uint64_t id) {
    MutexLock lock(latch_);
    auto it = table_.find(id);
    if (it != table_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Frame& f = frames_[it->second];
        if (f.prefetched) {
            // First demand pin of a staged page: the read-ahead paid off.
            // Graduate the frame out of the first-eviction class.
            prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
            f.prefetched = false;
            --staged_count_;
        }
        ++f.pin_count;
        policy_->on_access(it->second, latch_);
        return PageRef(this, it->second, payload_of(f), f.page_id);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    try {
        file_.read(id, f.data);
    } catch (...) {
        // Checksum mismatch (or I/O failure) on the miss fill: hand the
        // grabbed frame back before the typed error reaches the caller.
        release_frame(frame);
        throw;
    }
    f.pin_count = 1;
    f.dirty = false;
    f.in_use = true;
    f.prefetched = false;
    table_[id] = frame;
    policy_->on_insert(frame, id, latch_);
    return PageRef(this, frame, payload_of(f), id);
}

BufferPool::PageRef BufferPool::allocate() {
    MutexLock lock(latch_);
    std::uint64_t id = file_.allocate();
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    f.pin_count = 1;
    f.dirty = false;
    f.in_use = true;
    f.prefetched = false;
    table_[id] = frame;
    policy_->on_insert(frame, id, latch_);
    return PageRef(this, frame, payload_of(f), id);
}

void BufferPool::prefetch(std::span<const std::uint64_t> pages) {
    MutexLock lock(latch_);
    for (std::uint64_t id : pages) {
        if (table_.find(id) != table_.end()) continue;  // already resident
        std::size_t frame = grab_frame_for_prefetch();
        if (frame == frames_.size()) return;  // pool under pressure: stop
        Frame& f = frames_[frame];
        f.page_id = id;
        f.data.assign(file_.page_size(), std::byte{0});
        try {
            file_.read(id, f.data);
        } catch (...) {
            release_frame(frame);
            throw;
        }
        f.pin_count = 0;
        f.dirty = false;
        f.in_use = true;
        f.prefetched = true;
        f.prefetch_stamp = ++prefetch_clock_;
        ++staged_count_;
        table_[id] = frame;
        policy_->on_insert(frame, id, latch_);
        prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
    }
}

void BufferPool::evict_frame(std::size_t frame) {
    Frame& f = frames_[frame];
    if (f.dirty) {
        // WAL-before-data: the log must be durable past this page's LSN
        // before its image may overwrite the on-disk pre-image. With no
        // WAL (or an unlogged page, LSN 0) this is a no-op.
        if (wal_ != nullptr) wal_->flush_up_to(page_lsn(f.data));
        file_.write(f.page_id, f.data);
        writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
    table_.erase(f.page_id);
    policy_->on_evict(frame, f.page_id, latch_);
    f.in_use = false;
    if (f.prefetched) --staged_count_;
    f.prefetched = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::release_frame(std::size_t frame) {
    frames_[frame].in_use = false;
    frames_[frame].prefetched = false;
    free_.push_back(frame);
}

std::size_t BufferPool::grab_frame() {
    // Free frame first (stack pop, not a scan).
    while (!free_.empty()) {
        const std::size_t i = free_.back();
        free_.pop_back();
        if (!frames_[i].in_use) return i;
    }
    // First-eviction class: prefetched pages nobody pinned are the
    // speculation that did not pay off yet — reclaim them FIFO before
    // disturbing the policy's demand-driven order. staged_count_ keeps
    // this scan off the demand path entirely unless prefetch() is in use.
    std::size_t victim = frames_.size();
    if (staged_count_ > 0) {
        for (std::size_t i = 0; i < frames_.size(); ++i) {
            const Frame& f = frames_[i];
            if (f.prefetched && f.pin_count == 0 &&
                (victim == frames_.size() ||
                 f.prefetch_stamp < frames_[victim].prefetch_stamp)) {
                victim = i;
            }
        }
    }
    if (victim == frames_.size()) {
        // Policy victim among unpinned frames — a pinned frame is never a
        // victim, so its data span (captured by live PageRefs) stays valid.
        // The view probes pin state lazily; ordered policies only test the
        // few frames at the head of their structure.
        EvictableView view(&frames_, &demand_evictable, frames_.size());
        victim = policy_->victim(view, latch_);
    }
    PGF_CHECK(victim < frames_.size(),
              "BufferPool exhausted: every frame is pinned");
    evict_frame(victim);
    return victim;
}

std::size_t BufferPool::grab_frame_for_prefetch() {
    while (!free_.empty()) {
        const std::size_t i = free_.back();
        free_.pop_back();
        if (!frames_[i].in_use) return i;
    }
    // Read-ahead may displace cached demand pages (the policy decides
    // which) but never a pinned frame and never an earlier still-unused
    // prefetch — a long staging list cannot cannibalize its own head.
    EvictableView view(&frames_, &prefetch_evictable, frames_.size());
    std::size_t victim = policy_->victim(view, latch_);
    if (victim == frames_.size()) return victim;  // stop staging, no throw
    evict_frame(victim);
    return victim;
}

void BufferPool::unpin(std::size_t frame) {
    MutexLock lock(latch_);
    Frame& f = frames_[frame];
    PGF_CHECK(f.pin_count > 0, "unpin of an unpinned frame");
    --f.pin_count;
}

std::size_t BufferPool::resident() const {
    MutexLock lock(latch_);
    return table_.size();
}

std::size_t BufferPool::pinned_frames() const {
    MutexLock lock(latch_);
    std::size_t pinned = 0;
    for (const Frame& f : frames_) {
        if (f.in_use && f.pin_count > 0) ++pinned;
    }
    return pinned;
}

std::vector<std::uint64_t> BufferPool::resident_pages() const {
    MutexLock lock(latch_);
    std::vector<std::uint64_t> pages;
    pages.reserve(table_.size());
    for (const auto& [page, frame] : table_) pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    return pages;
}

BufferPool::Stats BufferPool::reset() {
    return Stats{hits_.exchange(0, std::memory_order_relaxed),
                 misses_.exchange(0, std::memory_order_relaxed),
                 evictions_.exchange(0, std::memory_order_relaxed),
                 writebacks_.exchange(0, std::memory_order_relaxed),
                 prefetch_issued_.exchange(0, std::memory_order_relaxed),
                 prefetch_hits_.exchange(0, std::memory_order_relaxed)};
}

void BufferPool::flush_all() {
    MutexLock lock(latch_);
    if (wal_ != nullptr) {
        // One group flush covering the dirtiest frame, instead of one
        // per write-back.
        std::uint64_t max_lsn = 0;
        for (const Frame& f : frames_) {
            if (f.in_use && f.dirty)
                max_lsn = std::max(max_lsn, page_lsn(f.data));
        }
        wal_->flush_up_to(max_lsn);
    }
    for (Frame& f : frames_) {
        if (f.in_use && f.dirty) {
            file_.write(f.page_id, f.data);
            f.dirty = false;
            writebacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    file_.sync();
}

}  // namespace pgf
