#include "pgf/storage/buffer_pool.hpp"

namespace pgf {

BufferPool::BufferPool(PageFile& file, std::size_t capacity)
    : file_(file), capacity_(capacity) {
    PGF_CHECK(capacity_ >= 1, "BufferPool needs at least one frame");
    frames_.resize(capacity_);
}

BufferPool::~BufferPool() {
    // Best-effort flush; failures here cannot throw out of a destructor.
    try {
        flush_all();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

std::span<std::byte> BufferPool::PageRef::data() {
    return pool_->frames_[frame_].data;
}

std::span<const std::byte> BufferPool::PageRef::data() const {
    return pool_->frames_[frame_].data;
}

std::uint64_t BufferPool::PageRef::page_id() const {
    return pool_->frames_[frame_].page_id;
}

void BufferPool::PageRef::mark_dirty() {
    pool_->frames_[frame_].dirty = true;
}

BufferPool::PageRef BufferPool::fetch(std::uint64_t id) {
    auto it = table_.find(id);
    if (it != table_.end()) {
        ++hits_;
        Frame& f = frames_[it->second];
        ++f.pin_count;
        f.last_use = ++clock_;
        return PageRef(this, it->second);
    }
    ++misses_;
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    file_.read(id, f.data);
    f.pin_count = 1;
    f.dirty = false;
    f.last_use = ++clock_;
    f.in_use = true;
    table_[id] = frame;
    return PageRef(this, frame);
}

BufferPool::PageRef BufferPool::allocate() {
    std::uint64_t id = file_.allocate();
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    f.pin_count = 1;
    f.dirty = false;
    f.last_use = ++clock_;
    f.in_use = true;
    table_[id] = frame;
    return PageRef(this, frame);
}

std::size_t BufferPool::grab_frame() {
    // Free frame first.
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].in_use) return i;
    }
    // LRU among unpinned frames.
    std::size_t victim = frames_.size();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (frames_[i].pin_count == 0 &&
            (victim == frames_.size() ||
             frames_[i].last_use < frames_[victim].last_use)) {
            victim = i;
        }
    }
    PGF_CHECK(victim < frames_.size(),
              "BufferPool exhausted: every frame is pinned");
    Frame& f = frames_[victim];
    if (f.dirty) {
        file_.write(f.page_id, f.data);
        ++writebacks_;
    }
    table_.erase(f.page_id);
    f.in_use = false;
    ++evictions_;
    return victim;
}

void BufferPool::unpin(std::size_t frame) {
    Frame& f = frames_[frame];
    PGF_CHECK(f.pin_count > 0, "unpin of an unpinned frame");
    --f.pin_count;
}

BufferPool::Stats BufferPool::reset() {
    Stats snapshot{hits_, misses_, evictions_, writebacks_};
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    writebacks_ = 0;
    return snapshot;
}

void BufferPool::flush_all() {
    for (Frame& f : frames_) {
        if (f.in_use && f.dirty) {
            file_.write(f.page_id, f.data);
            f.dirty = false;
            ++writebacks_;
        }
    }
    file_.sync();
}

}  // namespace pgf
