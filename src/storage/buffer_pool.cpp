#include "pgf/storage/buffer_pool.hpp"

namespace pgf {

BufferPool::BufferPool(PageFile& file, std::size_t capacity)
    : file_(file), capacity_(capacity) {
    PGF_CHECK(capacity_ >= 1, "BufferPool needs at least one frame");
    frames_.resize(capacity_);
}

BufferPool::~BufferPool() {
    // Best-effort flush; failures here cannot throw out of a destructor.
    try {
        flush_all();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void BufferPool::PageRef::mark_dirty() {
    pool_->mark_dirty_frame(frame_);
}

void BufferPool::mark_dirty_frame(std::size_t frame) {
    MutexLock lock(latch_);
    frames_[frame].dirty = true;
}

BufferPool::PageRef BufferPool::fetch(std::uint64_t id) {
    MutexLock lock(latch_);
    auto it = table_.find(id);
    if (it != table_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Frame& f = frames_[it->second];
        ++f.pin_count;
        f.last_use = ++clock_;
        return PageRef(this, it->second, std::span<std::byte>(f.data),
                       f.page_id);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    file_.read(id, f.data);
    f.pin_count = 1;
    f.dirty = false;
    f.last_use = ++clock_;
    f.in_use = true;
    table_[id] = frame;
    return PageRef(this, frame, std::span<std::byte>(f.data), id);
}

BufferPool::PageRef BufferPool::allocate() {
    MutexLock lock(latch_);
    std::uint64_t id = file_.allocate();
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    f.pin_count = 1;
    f.dirty = false;
    f.last_use = ++clock_;
    f.in_use = true;
    table_[id] = frame;
    return PageRef(this, frame, std::span<std::byte>(f.data), id);
}

std::size_t BufferPool::grab_frame() {
    // Free frame first.
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].in_use) return i;
    }
    // LRU among unpinned frames — a pinned frame is never a victim, so its
    // data span (captured by live PageRefs) stays valid.
    std::size_t victim = frames_.size();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (frames_[i].pin_count == 0 &&
            (victim == frames_.size() ||
             frames_[i].last_use < frames_[victim].last_use)) {
            victim = i;
        }
    }
    PGF_CHECK(victim < frames_.size(),
              "BufferPool exhausted: every frame is pinned");
    Frame& f = frames_[victim];
    if (f.dirty) {
        file_.write(f.page_id, f.data);
        writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
    table_.erase(f.page_id);
    f.in_use = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return victim;
}

void BufferPool::unpin(std::size_t frame) {
    MutexLock lock(latch_);
    Frame& f = frames_[frame];
    PGF_CHECK(f.pin_count > 0, "unpin of an unpinned frame");
    --f.pin_count;
}

std::size_t BufferPool::resident() const {
    MutexLock lock(latch_);
    return table_.size();
}

std::size_t BufferPool::pinned_frames() const {
    MutexLock lock(latch_);
    std::size_t pinned = 0;
    for (const Frame& f : frames_) {
        if (f.in_use && f.pin_count > 0) ++pinned;
    }
    return pinned;
}

BufferPool::Stats BufferPool::reset() {
    return Stats{hits_.exchange(0, std::memory_order_relaxed),
                 misses_.exchange(0, std::memory_order_relaxed),
                 evictions_.exchange(0, std::memory_order_relaxed),
                 writebacks_.exchange(0, std::memory_order_relaxed)};
}

void BufferPool::flush_all() {
    MutexLock lock(latch_);
    for (Frame& f : frames_) {
        if (f.in_use && f.dirty) {
            file_.write(f.page_id, f.data);
            f.dirty = false;
            writebacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    file_.sync();
}

}  // namespace pgf
