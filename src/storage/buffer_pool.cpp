#include "pgf/storage/buffer_pool.hpp"

#include <algorithm>

namespace pgf {

BufferPool::BufferPool(PageFile& file, std::size_t capacity,
                       BufferPoolConfig config)
    : file_(file), capacity_(capacity), config_(config) {
    PGF_CHECK(capacity_ >= 1, "BufferPool needs at least one frame");
    frames_.resize(capacity_);
    evictable_.resize(capacity_);
    policy_ = make_replacer(config_, capacity_);
}

BufferPool::~BufferPool() {
    // Best-effort flush; failures here cannot throw out of a destructor.
    try {
        flush_all();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void BufferPool::PageRef::mark_dirty() {
    pool_->mark_dirty_frame(frame_);
}

void BufferPool::mark_dirty_frame(std::size_t frame) {
    MutexLock lock(latch_);
    frames_[frame].dirty = true;
}

BufferPool::PageRef BufferPool::fetch(std::uint64_t id) {
    MutexLock lock(latch_);
    auto it = table_.find(id);
    if (it != table_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Frame& f = frames_[it->second];
        if (f.prefetched) {
            // First demand pin of a staged page: the read-ahead paid off.
            // Graduate the frame out of the first-eviction class.
            prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
            f.prefetched = false;
        }
        ++f.pin_count;
        policy_->on_access(it->second, latch_);
        return PageRef(this, it->second, std::span<std::byte>(f.data),
                       f.page_id);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    file_.read(id, f.data);
    f.pin_count = 1;
    f.dirty = false;
    f.in_use = true;
    f.prefetched = false;
    table_[id] = frame;
    policy_->on_insert(frame, id, latch_);
    return PageRef(this, frame, std::span<std::byte>(f.data), id);
}

BufferPool::PageRef BufferPool::allocate() {
    MutexLock lock(latch_);
    std::uint64_t id = file_.allocate();
    std::size_t frame = grab_frame();
    Frame& f = frames_[frame];
    f.page_id = id;
    f.data.assign(file_.page_size(), std::byte{0});
    f.pin_count = 1;
    f.dirty = false;
    f.in_use = true;
    f.prefetched = false;
    table_[id] = frame;
    policy_->on_insert(frame, id, latch_);
    return PageRef(this, frame, std::span<std::byte>(f.data), id);
}

void BufferPool::prefetch(std::span<const std::uint64_t> pages) {
    MutexLock lock(latch_);
    for (std::uint64_t id : pages) {
        if (table_.find(id) != table_.end()) continue;  // already resident
        std::size_t frame = grab_frame_for_prefetch();
        if (frame == frames_.size()) return;  // pool under pressure: stop
        Frame& f = frames_[frame];
        f.page_id = id;
        f.data.assign(file_.page_size(), std::byte{0});
        file_.read(id, f.data);
        f.pin_count = 0;
        f.dirty = false;
        f.in_use = true;
        f.prefetched = true;
        f.prefetch_stamp = ++prefetch_clock_;
        table_[id] = frame;
        policy_->on_insert(frame, id, latch_);
        prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
    }
}

void BufferPool::evict_frame(std::size_t frame) {
    Frame& f = frames_[frame];
    if (f.dirty) {
        file_.write(f.page_id, f.data);
        writebacks_.fetch_add(1, std::memory_order_relaxed);
    }
    table_.erase(f.page_id);
    policy_->on_evict(frame, f.page_id, latch_);
    f.in_use = false;
    f.prefetched = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::grab_frame() {
    // Free frame first.
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].in_use) return i;
    }
    // First-eviction class: prefetched pages nobody pinned are the
    // speculation that did not pay off yet — reclaim them FIFO before
    // disturbing the policy's demand-driven order. (Inert unless
    // prefetch() is in use, so the default path is untouched.)
    std::size_t staged = frames_.size();
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        const Frame& f = frames_[i];
        if (f.prefetched && f.pin_count == 0 &&
            (staged == frames_.size() ||
             f.prefetch_stamp < frames_[staged].prefetch_stamp)) {
            staged = i;
        }
    }
    std::size_t victim = staged;
    if (victim == frames_.size()) {
        // Policy victim among unpinned frames — a pinned frame is never a
        // victim, so its data span (captured by live PageRefs) stays valid.
        for (std::size_t i = 0; i < frames_.size(); ++i) {
            evictable_[i] = frames_[i].pin_count == 0;
        }
        victim = policy_->victim(evictable_, latch_);
    }
    PGF_CHECK(victim < frames_.size(),
              "BufferPool exhausted: every frame is pinned");
    evict_frame(victim);
    return victim;
}

std::size_t BufferPool::grab_frame_for_prefetch() {
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        if (!frames_[i].in_use) return i;
    }
    // Read-ahead may displace cached demand pages (the policy decides
    // which) but never a pinned frame and never an earlier still-unused
    // prefetch — a long staging list cannot cannibalize its own head.
    for (std::size_t i = 0; i < frames_.size(); ++i) {
        const Frame& f = frames_[i];
        evictable_[i] = f.pin_count == 0 && !f.prefetched;
    }
    std::size_t victim = policy_->victim(evictable_, latch_);
    if (victim == frames_.size()) return victim;  // stop staging, no throw
    evict_frame(victim);
    return victim;
}

void BufferPool::unpin(std::size_t frame) {
    MutexLock lock(latch_);
    Frame& f = frames_[frame];
    PGF_CHECK(f.pin_count > 0, "unpin of an unpinned frame");
    --f.pin_count;
}

std::size_t BufferPool::resident() const {
    MutexLock lock(latch_);
    return table_.size();
}

std::size_t BufferPool::pinned_frames() const {
    MutexLock lock(latch_);
    std::size_t pinned = 0;
    for (const Frame& f : frames_) {
        if (f.in_use && f.pin_count > 0) ++pinned;
    }
    return pinned;
}

std::vector<std::uint64_t> BufferPool::resident_pages() const {
    MutexLock lock(latch_);
    std::vector<std::uint64_t> pages;
    pages.reserve(table_.size());
    for (const auto& [page, frame] : table_) pages.push_back(page);
    std::sort(pages.begin(), pages.end());
    return pages;
}

BufferPool::Stats BufferPool::reset() {
    return Stats{hits_.exchange(0, std::memory_order_relaxed),
                 misses_.exchange(0, std::memory_order_relaxed),
                 evictions_.exchange(0, std::memory_order_relaxed),
                 writebacks_.exchange(0, std::memory_order_relaxed),
                 prefetch_issued_.exchange(0, std::memory_order_relaxed),
                 prefetch_hits_.exchange(0, std::memory_order_relaxed)};
}

void BufferPool::flush_all() {
    MutexLock lock(latch_);
    for (Frame& f : frames_) {
        if (f.in_use && f.dirty) {
            file_.write(f.page_id, f.data);
            f.dirty = false;
            writebacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    file_.sync();
}

}  // namespace pgf
