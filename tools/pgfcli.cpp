// pgfcli — command-line front end over the pgf library.
//
//   pgfcli gen --dataset hot2d --out pts.csv [--points N] [--seed S]
//              [--format csv|bin]
//       Generate one of the built-in datasets as CSV (or as the binary
//       point-file format pgf/core/point_source.hpp defines, for buildx).
//   pgfcli build --input pts.csv --out store.pgf [--capacity 56]
//       Load a CSV of points (1-4 numeric columns) into a grid file and
//       persist it. The domain is the data's bounding box.
//   pgfcli buildx --dataset uniform2d --points N --out store.pgf
//                 [--input pts.bin] [--seed S] [--capacity 56]
//                 [--pool-pages 1024] [--chunk-records 1048576]
//                 [--threads 0] [--wal store.wal]
//                 [--crash-after-writes N]
//       Out-of-core build: stream the points (generated on the fly, or
//       from a binary point file written by `gen --format bin`), sort them
//       externally along the Hilbert curve (runs spilled to temp files,
//       k-way merged), and bulk-load the sorted stream into a disk-backed
//       grid file whose memory is bounded by --pool-pages. The persisted
//       snapshot is byte-compatible with `build`'s and validates the same
//       way. Scales to 10^7-10^8 records without materializing them.
//       With --wal the working paged file journals every operation to a
//       write-ahead log and is kept next to the snapshot (as
//       <out>.staging) so `recover` can reopen it; --crash-after-writes N
//       injects a torn-page crash at the Nth page write after setup (the
//       process exits with code 9 and leaves the crash state behind —
//       durability-test hook).
//   pgfcli recover --file store.pgf.staging --wal store.wal
//                  [--level fast|standard|deep] [--pool-pages 128]
//       Crash recovery: replays the committed prefix of the write-ahead
//       log over the paged data file (torn tail truncated, uncommitted
//       suffix discarded), rebuilds the access structure, reports what the
//       replay did, and audits the recovered file. Exit 0 = recovered and
//       clean, 1 = unrecoverable or audit findings.
//   pgfcli info --file store.pgf
//       Structural summary of a persisted grid file.
//   pgfcli query --file store.pgf --lo "x,y" --hi "x,y" [--print]
//       Range query; prints the match count (and rows with --print).
//   pgfcli decluster --file store.pgf --disks 16 [--method minimax]
//                    [--out assignment.csv]
//       Decluster the file's buckets and report the quality metrics; the
//       optional CSV maps bucket id -> disk.
//   pgfcli partition --file store.pgf --disks 16 --out prefix
//                    [--method minimax] [--page-size 4096]
//       Full deployment: decluster, rebuild the records as one-bucket-per-
//       page stores, and write one page file per disk (prefix.disk<k>).
//   pgfcli validate --file store.pgf [--level fast|standard|deep]
//                   [--backend memory|paged] [--page-size N]
//                   [--assignment a.csv --disks M]
//       Runs the pgf::analysis invariant checkers over a persisted grid
//       file (and optionally a bucket->disk assignment CSV as written by
//       `decluster --out`). With --backend paged the records are also
//       rebuilt in a temporary disk-backed grid file and the page-level
//       checkers (page ownership, scale reconstruction, header/roundtrip)
//       run against it. Exit 0 = clean, 1 = findings or unreadable.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "pgf/analysis/grid_file_audit.hpp"
#include "pgf/analysis/paged_audit.hpp"
#include "pgf/analysis/validate.hpp"
#include "pgf/core/declusterer.hpp"
#include "pgf/core/extsort.hpp"
#include "pgf/core/point_source.hpp"
#include "pgf/storage/fault_injection.hpp"
#include "pgf/storage/gridfile_io.hpp"
#include "pgf/storage/paged_grid_file.hpp"
#include "pgf/storage/partition.hpp"
#include "pgf/storage/recovery.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/points_io.hpp"
#include "pgf/util/table.hpp"
#include "pgf/util/thread_pool.hpp"
#include "pgf/workload/datasets.hpp"

namespace {

using namespace pgf;

int usage() {
    std::cerr << "usage: pgfcli "
                 "<gen|build|buildx|recover|info|query|decluster|partition|"
                 "validate> [flags]\n"
              << "run with a command and no flags for its required flags\n";
    return 2;
}

std::vector<double> parse_tuple(const std::string& text, std::size_t dims) {
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos) end = text.size();
        values.push_back(std::strtod(text.substr(start, end - start).c_str(),
                                     nullptr));
        start = end + 1;
    }
    PGF_CHECK(values.size() == dims,
              "expected " + std::to_string(dims) + " comma-separated values "
              "in '" + text + "'");
    return values;
}

int cmd_gen(const Cli& cli) {
    std::string name = cli.get_string("dataset", "");
    std::string out = cli.get_string("out", "");
    if (name.empty() || out.empty()) {
        std::cerr << "gen requires --dataset <name> --out <csv>\n"
                  << "datasets: uniform2d hot2d correl2d dsmc3d stock3d "
                  << "mhd3d\n";
        return 2;
    }
    const std::string format = cli.get_string("format", "csv");
    if (format != "csv" && format != "bin") {
        std::cerr << "unknown --format '" << format
                  << "' (expected csv|bin)\n";
        return 2;
    }
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    auto n = static_cast<std::size_t>(cli.get_int("points", 0));
    std::vector<std::vector<double>> rows;
    auto emit2 = [&](const Dataset<2>& ds) {
        for (const auto& p : ds.points) rows.push_back({p[0], p[1]});
    };
    auto emit3 = [&](const Dataset<3>& ds) {
        for (const auto& p : ds.points) rows.push_back({p[0], p[1], p[2]});
    };
    if (name == "uniform2d") {
        emit2(make_uniform2d(rng, n ? n : 10000));
    } else if (name == "hot2d") {
        emit2(make_hotspot2d(rng, n ? n : 10000));
    } else if (name == "correl2d") {
        emit2(make_correl2d(rng, n ? n : 10000));
    } else if (name == "dsmc3d") {
        emit3(make_dsmc3d(rng, n ? n : 52857));
    } else if (name == "stock3d") {
        emit3(make_stock3d(rng, n ? n : 127026));
    } else if (name == "mhd3d") {
        emit3(make_mhd3d(rng, n ? n : 60000));
    } else {
        std::cerr << "unknown dataset '" << name << "'\n";
        return 2;
    }
    if (format == "bin") {
        auto write_bin = [&]<std::size_t D>() {
            std::vector<Point<D>> pts(rows.size());
            for (std::size_t r = 0; r < rows.size(); ++r) {
                for (std::size_t i = 0; i < D; ++i) pts[r][i] = rows[r][i];
            }
            write_binary_points<D>(out, std::span<const Point<D>>(pts));
        };
        if (rows.front().size() == 2) {
            write_bin.template operator()<2>();
        } else {
            write_bin.template operator()<3>();
        }
    } else {
        write_csv_points(out, rows);
    }
    std::cout << "wrote " << rows.size() << " points to " << out << "\n";
    return 0;
}

template <std::size_t D>
int build_impl(const std::vector<std::vector<double>>& rows,
               const std::string& out, std::size_t capacity) {
    Rect<D> domain;
    for (std::size_t i = 0; i < D; ++i) {
        domain.lo[i] = rows.front()[i];
        domain.hi[i] = rows.front()[i];
    }
    for (const auto& row : rows) {
        for (std::size_t i = 0; i < D; ++i) {
            domain.lo[i] = std::min(domain.lo[i], row[i]);
            domain.hi[i] = std::max(domain.hi[i], row[i]);
        }
    }
    for (std::size_t i = 0; i < D; ++i) {
        // Half-open domain: pad the upper bound so max points stay inside.
        double span = domain.hi[i] - domain.lo[i];
        domain.hi[i] += span > 0 ? span * 1e-9 : 1.0;
    }
    typename GridFile<D>::Config cfg;
    cfg.bucket_capacity = capacity;
    GridFile<D> gf(domain, cfg);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        Point<D> p;
        for (std::size_t i = 0; i < D; ++i) p[i] = rows[r][i];
        gf.insert(p, r);
    }
    std::uint64_t pages = save_grid_file(gf, out);
    std::cout << "built " << gf.record_count() << " records into "
              << gf.bucket_count() << " buckets ("
              << gf.merged_bucket_count() << " merged), saved " << pages
              << " pages to " << out << "\n";
    return 0;
}

int cmd_build(const Cli& cli) {
    std::string input = cli.get_string("input", "");
    std::string out = cli.get_string("out", "");
    if (input.empty() || out.empty()) {
        std::cerr << "build requires --input <csv> --out <pgf>\n";
        return 2;
    }
    auto rows = read_csv_points(input);
    PGF_CHECK(!rows.empty(), "no points in " + input);
    auto capacity = static_cast<std::size_t>(cli.get_int("capacity", 56));
    switch (rows.front().size()) {
        case 1: return build_impl<1>(rows, out, capacity);
        case 2: return build_impl<2>(rows, out, capacity);
        case 3: return build_impl<3>(rows, out, capacity);
        case 4: return build_impl<4>(rows, out, capacity);
        default:
            std::cerr << "only 1-4 dimensions supported (got "
                      << rows.front().size() << " columns)\n";
            return 2;
    }
}

/// Dimensionality recorded in a binary point file (for buildx dispatch).
std::uint32_t binary_points_dims(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    PGF_CHECK(in.good(), "cannot open " + path);
    char magic[8] = {};
    in.read(magic, 8);
    PGF_CHECK(in.good() && std::string(magic, 8) ==
                               std::string(binary_points::kMagic, 8),
              "not a binary point file: " + path);
    return static_cast<std::uint32_t>(binary_points::read_u64le(in));
}

/// Bounding box of a binary point file, streamed in bounded blocks (the
/// out-of-core build never materializes the input). The upper bound is
/// padded the same way `build` pads it, so max points stay inside the
/// half-open domain.
template <std::size_t D>
Rect<D> binary_points_bbox(const std::string& path) {
    BinaryFilePointSource<D> src(path);
    PGF_CHECK(src.remaining() > 0, "no points in " + path);
    Rect<D> box;
    std::vector<Point<D>> block(1 << 14);
    bool first = true;
    for (;;) {
        const std::size_t got =
            src.next(std::span<Point<D>>(block.data(), block.size()));
        if (got == 0) break;
        for (std::size_t k = 0; k < got; ++k) {
            for (std::size_t i = 0; i < D; ++i) {
                if (first) {
                    box.lo[i] = box.hi[i] = block[k][i];
                } else {
                    box.lo[i] = std::min(box.lo[i], block[k][i]);
                    box.hi[i] = std::max(box.hi[i], block[k][i]);
                }
            }
            first = false;
        }
    }
    for (std::size_t i = 0; i < D; ++i) {
        const double span = box.hi[i] - box.lo[i];
        box.hi[i] += span > 0 ? span * 1e-9 : 1.0;
    }
    return box;
}

/// The out-of-core build: external Hilbert sort of the stream, then the
/// batched streaming bulk load into a pool-bounded paged grid file, then
/// the regular snapshot save (so `info`/`query`/`validate` all work on
/// the result).
template <std::size_t D>
int buildx_impl(const Cli& cli, PointSource<D>& source, const Rect<D>& domain,
                std::size_t capacity, const std::string& out) {
    extsort::ExtSortConfig cfg;
    cfg.chunk_records =
        static_cast<std::size_t>(cli.get_int("chunk-records", 1 << 20));
    const auto threads =
        static_cast<unsigned>(cli.get_int("threads", 0));
    ThreadPool pool(threads);
    cfg.pool = &pool;

    extsort::ExtSorter<D> sorter(source, domain, cfg);

    typename PagedGridFile<D>::Config pcfg;
    pcfg.page_size = PagedBucketStore<D>::page_size_for(capacity);
    pcfg.pool_pages =
        static_cast<std::size_t>(cli.get_int("pool-pages", 1024));
    pcfg.wal_path = cli.get_string("wal", "");
    FaultInjector injector;
    const long long crash_after =
        static_cast<long long>(cli.get_int("crash-after-writes", -1));
    if (crash_after >= 0) {
        PGF_CHECK(!pcfg.wal_path.empty(),
                  "buildx: --crash-after-writes requires --wal");
        pcfg.fault_injector = &injector;
    }
    const std::string staging = out + ".staging";
    std::uint64_t loaded = 0;
    std::uint64_t pages = 0;
    std::uint32_t buckets = 0;
    {
        PagedGridFile<D> pf(staging, domain, pcfg);
        // Setup (superblock, genesis, root bucket) is not crash-protected,
        // like a real system's mkfs; arm the injector only now.
        if (crash_after >= 0) {
            injector.arm(static_cast<std::uint64_t>(crash_after));
        }
        try {
            loaded = pf.bulk_load_stream(sorter);
            pf.flush();
        } catch (const CrashError& e) {
            std::cerr << "crash injected: " << e.what() << "\n"
                      << "crash state kept in " << staging << " + "
                      << pcfg.wal_path << " (run `pgfcli recover`)\n";
            return 9;
        }
        buckets = static_cast<std::uint32_t>(pf.bucket_count());
        pages = save_grid_file(pf, out);
    }
    if (pcfg.wal_path.empty()) {
        std::remove(staging.c_str());
    } else {
        std::cout << "durable paged file kept at " << staging << " (wal "
                  << pcfg.wal_path << ")\n";
    }

    const auto& stats = sorter.stats();
    std::cout << "built " << loaded << " records into " << buckets
              << " buckets via " << stats.initial_runs << " sorted runs ("
              << stats.spill_bytes << " spill bytes, " << stats.merge_passes
              << " merge passes, fan-in " << stats.final_fan_in
              << "), saved " << pages << " pages to " << out << "\n";
    return 0;
}

int cmd_buildx(const Cli& cli) {
    const std::string out = cli.get_string("out", "");
    const std::string input = cli.get_string("input", "");
    const std::string dataset = cli.get_string("dataset", "");
    if (out.empty() || (input.empty() && dataset.empty())) {
        std::cerr << "buildx requires --out <pgf> and either --dataset "
                     "<name> --points N or --input <bin>\n"
                  << "datasets: uniform2d hot2d dsmc3d\n";
        return 2;
    }
    auto capacity = static_cast<std::size_t>(cli.get_int("capacity", 56));
    if (!input.empty()) {
        switch (binary_points_dims(input)) {
            case 2: {
                BinaryFilePointSource<2> src(input);
                return buildx_impl<2>(cli, src, binary_points_bbox<2>(input),
                                      capacity, out);
            }
            case 3: {
                BinaryFilePointSource<3> src(input);
                return buildx_impl<3>(cli, src, binary_points_bbox<3>(input),
                                      capacity, out);
            }
            default:
                std::cerr << "only 2-d and 3-d binary point files "
                             "supported\n";
                return 2;
        }
    }
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    const auto n =
        static_cast<std::uint64_t>(cli.get_int("points", 1000000));
    if (dataset == "uniform2d") {
        StreamDataset<2> ds = make_uniform2d_stream(rng, n);
        return buildx_impl<2>(cli, *ds.source, ds.domain, capacity, out);
    }
    if (dataset == "hot2d") {
        StreamDataset<2> ds = make_hotspot2d_stream(rng, n);
        return buildx_impl<2>(cli, *ds.source, ds.domain, capacity, out);
    }
    if (dataset == "dsmc3d") {
        StreamDataset<3> ds = make_dsmc3d_stream(rng, n);
        return buildx_impl<3>(cli, *ds.source, ds.domain, capacity, out);
    }
    std::cerr << "unknown dataset '" << dataset
              << "' (streaming datasets: uniform2d hot2d dsmc3d)\n";
    return 2;
}

/// Crash recovery: replay the committed WAL prefix over the paged data
/// file, then audit the result. The recovered file is left ready for new
/// operations (its log stays open until this process exits).
template <std::size_t D>
int recover_impl(const Cli& cli, const std::string& file,
                 const std::string& wal) {
    analysis::ValidationLevel level = analysis::ValidationLevel::kDeep;
    const std::string level_text = cli.get_string("level", "deep");
    if (!analysis::parse_validation_level(level_text, &level)) {
        std::cerr << "unknown --level '" << level_text
                  << "' (expected fast|standard|deep)\n";
        return 2;
    }
    typename PagedGridFile<D>::Config cfg;
    cfg.wal_path = wal;
    cfg.pool_pages =
        static_cast<std::size_t>(cli.get_int("pool-pages", 128));
    PagedGridFile<D> gf(typename PagedGridFile<D>::RecoverTag{}, file, cfg);

    const ReplayStats& st = gf.recovery_stats();
    TextTable t({"metric", "value"});
    t.add("wal records (valid prefix)", st.wal_records);
    t.add("applied (committed)", st.applied_records);
    t.add("discarded (uncommitted)", st.discarded_records);
    t.add("pages replayed", st.pages_replayed);
    t.add("pages already durable", st.pages_skipped);
    t.add("last commit lsn", st.last_commit_lsn);
    t.add("records", gf.record_count());
    t.add("buckets", gf.bucket_count());
    t.print(std::cout);

    analysis::ValidationReport report =
        analysis::audit_paged_grid_file(gf, level);
    std::cout << report.summary() << "\n";
    if (!report.ok()) {
        std::cerr << "recover: replay succeeded but the recovered file "
                     "fails "
                  << report.findings.size() << " invariant check(s)\n";
        return 1;
    }
    std::cout << "recover: OK (" << report.checks_run
              << " checks at level " << analysis::to_string(level) << ")\n";
    return 0;
}

int cmd_recover(const Cli& cli) {
    const std::string file = cli.get_string("file", "");
    const std::string wal = cli.get_string("wal", "");
    if (file.empty() || wal.empty()) {
        std::cerr << "recover requires --file <paged data file> "
                     "--wal <log> [--level deep]\n";
        return 2;
    }
    switch (wal_probe_dims(wal)) {
        case 1: return recover_impl<1>(cli, file, wal);
        case 2: return recover_impl<2>(cli, file, wal);
        case 3: return recover_impl<3>(cli, file, wal);
        case 4: return recover_impl<4>(cli, file, wal);
        default:
            std::cerr << "unsupported dimensionality in " << wal << "\n";
            return 2;
    }
}

template <std::size_t D>
int info_impl(const std::string& file) {
    GridFile<D> gf = load_grid_file<D>(file);
    TextTable t({"property", "value"});
    t.add("dimensions", D);
    t.add("records", gf.record_count());
    t.add("buckets", gf.bucket_count());
    t.add("merged buckets", gf.merged_bucket_count());
    t.add("bucket capacity", gf.config().bucket_capacity);
    std::string shape;
    for (std::size_t i = 0; i < D; ++i) {
        if (i) shape += "x";
        shape += std::to_string(gf.grid_shape()[i]);
    }
    t.add("grid", shape);
    for (std::size_t i = 0; i < D; ++i) {
        t.add("axis " + std::to_string(i),
              format_double(gf.domain().lo[i], 4, true) + " .. " +
                  format_double(gf.domain().hi[i], 4, true));
    }
    t.print(std::cout);
    return 0;
}

template <std::size_t D>
int query_impl(const Cli& cli, const std::string& file) {
    GridFile<D> gf = load_grid_file<D>(file);
    auto lo = parse_tuple(cli.get_string("lo", ""), D);
    auto hi = parse_tuple(cli.get_string("hi", ""), D);
    Rect<D> q;
    for (std::size_t i = 0; i < D; ++i) {
        q.lo[i] = lo[i];
        q.hi[i] = hi[i];
    }
    auto buckets = gf.query_buckets(q);
    auto records = gf.query_records(q);
    std::cout << records.size() << " records from " << buckets.size()
              << " buckets\n";
    if (cli.get_bool("print", false)) {
        for (const auto& r : records) {
            std::cout << r.id;
            for (std::size_t i = 0; i < D; ++i) std::cout << "," << r.point[i];
            std::cout << "\n";
        }
    }
    return 0;
}

template <std::size_t D>
int decluster_impl(const Cli& cli, const std::string& file) {
    GridFile<D> gf = load_grid_file<D>(file);
    auto method = parse_method(cli.get_string("method", "minimax"));
    if (!method) {
        std::cerr << "unknown method; try dm fx hcam mst ssp simgraph "
                  << "minimax\n";
        return 2;
    }
    auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 16));
    Declusterer dec(gf.structure());
    DeclusterReport report = dec.run(
        *method, disks,
        {.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1))});
    TextTable t({"metric", "value"});
    t.add("method", to_string(*method));
    t.add("disks", disks);
    t.add("data balance", format_double(report.data_balance));
    t.add("area balance", format_double(report.area_balance));
    t.add("closest pairs on one disk", report.closest_pairs);
    t.print(std::cout);
    std::string out = cli.get_string("out", "");
    if (!out.empty()) {
        TextTable a({"bucket", "disk"});
        for (std::size_t b = 0; b < report.assignment.disk_of.size(); ++b) {
            a.add(b, report.assignment.disk_of[b]);
        }
        PGF_CHECK(a.write_csv(out), "cannot write " + out);
        std::cout << "assignment written to " << out << "\n";
    }
    return 0;
}

template <std::size_t D>
int partition_impl(const Cli& cli, const std::string& file) {
    std::string out = cli.get_string("out", "");
    if (out.empty()) {
        std::cerr << "partition requires --out <prefix>\n";
        return 2;
    }
    GridFile<D> gf = load_grid_file<D>(file);
    auto method = parse_method(cli.get_string("method", "minimax"));
    if (!method) {
        std::cerr << "unknown method\n";
        return 2;
    }
    auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 16));

    // Rebuild the records in a one-bucket-per-page store (same insertion
    // order, so the structure matches the snapshot's behavior closely).
    std::string staging = out + ".staging";
    typename PagedGridFile<D>::Config cfg;
    cfg.page_size = static_cast<std::size_t>(cli.get_int("page-size", 4096));
    PagedGridFile<D> paged(staging, gf.domain(), cfg);
    for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
        for (const auto& rec : gf.bucket(b).records) {
            paged.insert(rec.point, rec.id);
        }
    }
    paged.flush();

    Assignment assignment = decluster(
        paged.structure(), *method, disks,
        {.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1))});
    std::vector<std::uint64_t> pages;
    for (std::uint32_t b = 0; b < paged.bucket_count(); ++b) {
        pages.push_back(paged.bucket_page(b));
    }
    PartitionResult result =
        partition_pages(staging, pages, assignment, out);
    std::remove(staging.c_str());

    TextTable t({"disk", "file", "pages"});
    for (std::uint32_t d = 0; d < disks; ++d) {
        t.add(d, result.paths[d], result.pages_per_disk[d]);
    }
    t.print(std::cout);
    std::cout << paged.bucket_count() << " buckets ("
              << paged.record_count() << " records) partitioned with "
              << to_string(*method) << "\n";
    return 0;
}

/// Reads a bucket->disk CSV (as written by `decluster --out`): optional
/// header line, then "bucket,disk" rows. Buckets the CSV never names stay
/// unassigned, which the audit reports.
Assignment read_assignment_csv(const std::string& path,
                               std::uint32_t num_disks) {
    std::ifstream in(path);
    PGF_CHECK(in.good(), "cannot open assignment CSV " + path);
    Assignment a;
    a.num_disks = num_disks;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::size_t comma = line.find(',');
        if (comma == std::string::npos) continue;
        char* end = nullptr;
        const std::string bucket_text = line.substr(0, comma);
        std::uint64_t bucket = std::strtoull(bucket_text.c_str(), &end, 10);
        if (end == bucket_text.c_str()) continue;  // header or junk row
        std::uint64_t disk =
            std::strtoull(line.c_str() + comma + 1, nullptr, 10);
        if (bucket >= a.disk_of.size()) {
            a.disk_of.resize(bucket + 1, ~std::uint32_t{0});
        }
        a.disk_of[bucket] = static_cast<std::uint32_t>(disk);
    }
    // A truncated CSV stays shorter than the structure (the audit flags the
    // size mismatch); don't pad it into looking complete.
    return a;
}

template <std::size_t D>
int validate_impl(const Cli& cli, const std::string& file) {
    analysis::ValidationLevel level = analysis::ValidationLevel::kDeep;
    const std::string level_text = cli.get_string("level", "deep");
    if (!analysis::parse_validation_level(level_text, &level)) {
        std::cerr << "unknown --level '" << level_text
                  << "' (expected fast|standard|deep)\n";
        return 2;
    }

    const std::string backend = cli.get_string("backend", "memory");
    if (backend != "memory" && backend != "paged") {
        std::cerr << "unknown --backend '" << backend
                  << "' (expected memory|paged)\n";
        return 2;
    }

    GridFile<D> gf = load_grid_file<D>(file);
    analysis::ValidationReport report = analysis::audit_grid_file(gf, level);
    GridStructure gs = gf.structure();
    report.merge(analysis::audit_structure(gs, level));

    if (backend == "paged") {
        if (gf.oversized_bucket_count() > 0) {
            std::cerr << "validate: snapshot has oversized buckets "
                         "(inseparable duplicates) — the strict-capacity "
                         "paged backend cannot hold them\n";
            return 1;
        }
        // Rebuild the snapshot's records in a disk-backed file (bucket
        // order, page capacity matching the snapshot's bucket capacity by
        // default) and run the page-level checkers against it.
        const std::size_t default_page = PagedBucketStore<D>::page_size_for(
            gf.config().bucket_capacity);
        typename PagedGridFile<D>::Config cfg;
        cfg.page_size = static_cast<std::size_t>(
            cli.get_int("page-size", static_cast<long long>(default_page)));
        cfg.pool_pages =
            static_cast<std::size_t>(cli.get_int("pool-pages", 128));
        cfg.split_policy = gf.config().split_policy;
        const std::string staging = file + ".paged-validate";
        {
            PagedGridFile<D> paged(staging, gf.domain(), cfg);
            for (std::uint32_t b = 0; b < gf.bucket_count(); ++b) {
                for (const auto& rec : gf.bucket(b).records) {
                    paged.insert(rec.point, rec.id);
                }
            }
            paged.flush();
            report.merge(analysis::audit_paged_grid_file(paged, level));
            report.require(paged.record_count() == gf.record_count(),
                           "paged.records.total",
                           "paged rebuild lost or duplicated records");
            std::cout << "paged backend: rebuilt " << paged.record_count()
                      << " records in " << paged.bucket_count()
                      << " page buckets (page size " << cfg.page_size
                      << ")\n";
            const BufferPool::Stats stats = paged.pool().stats();
            std::cout << "paged pool: policy "
                      << to_string(paged.pool().config().policy) << ", "
                      << stats.hits << " hits / " << stats.misses
                      << " misses (hit rate "
                      << format_double(stats.hit_rate(), 3) << "), "
                      << stats.evictions << " evictions, "
                      << stats.writebacks << " writebacks, "
                      << stats.prefetch_issued << " prefetched ("
                      << stats.prefetch_hits << " used)\n";
        }
        std::remove(staging.c_str());
    }

    std::string assignment_csv = cli.get_string("assignment", "");
    if (!assignment_csv.empty()) {
        auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 0));
        if (disks == 0) {
            std::cerr << "validate --assignment requires --disks <M>\n";
            return 2;
        }
        Assignment a = read_assignment_csv(assignment_csv, disks);
        report.merge(analysis::audit_assignment(gs, a, level));
    }

    std::cout << report.summary() << "\n";
    if (!report.ok()) {
        std::cerr << "validate: " << report.findings.size()
                  << " invariant violation(s) in " << file << "\n";
        return 1;
    }
    std::cout << "validate: OK (" << report.checks_run << " checks at level "
              << analysis::to_string(level) << ")\n";
    return 0;
}

int cmd_partition(const Cli& cli) {
    std::string file = cli.get_string("file", "");
    if (file.empty()) {
        std::cerr << "partition requires --file <pgf> --out <prefix>\n";
        return 2;
    }
    switch (stored_grid_file_dims(file)) {
        case 1: return partition_impl<1>(cli, file);
        case 2: return partition_impl<2>(cli, file);
        case 3: return partition_impl<3>(cli, file);
        case 4: return partition_impl<4>(cli, file);
        default: std::cerr << "unsupported dimensionality\n"; return 2;
    }
}

template <int (*Fn2)(const Cli&, const std::string&),
          int (*Fn3)(const Cli&, const std::string&),
          int (*Fn4)(const Cli&, const std::string&),
          int (*Fn1)(const Cli&, const std::string&)>
int dispatch_dims(const Cli& cli, const std::string& file) {
    switch (stored_grid_file_dims(file)) {
        case 1: return Fn1(cli, file);
        case 2: return Fn2(cli, file);
        case 3: return Fn3(cli, file);
        case 4: return Fn4(cli, file);
        default:
            std::cerr << "unsupported dimensionality in " << file << "\n";
            return 2;
    }
}

int cmd_validate(const Cli& cli) {
    std::string file = cli.get_string("file", "");
    if (file.empty()) {
        std::cerr << "validate requires --file <pgf> [--level deep] "
                     "[--backend memory|paged] [--page-size N] "
                     "[--assignment a.csv --disks M]\n";
        return 2;
    }
    return dispatch_dims<validate_impl<2>, validate_impl<3>,
                         validate_impl<4>, validate_impl<1>>(cli, file);
}

int cmd_info(const Cli& cli) {
    std::string file = cli.get_string("file", "");
    if (file.empty()) {
        std::cerr << "info requires --file <pgf>\n";
        return 2;
    }
    switch (stored_grid_file_dims(file)) {
        case 1: return info_impl<1>(file);
        case 2: return info_impl<2>(file);
        case 3: return info_impl<3>(file);
        case 4: return info_impl<4>(file);
        default: std::cerr << "unsupported dimensionality\n"; return 2;
    }
}

int cmd_query(const Cli& cli) {
    std::string file = cli.get_string("file", "");
    if (file.empty() || !cli.has("lo") || !cli.has("hi")) {
        std::cerr << "query requires --file <pgf> --lo \"..\" --hi \"..\"\n";
        return 2;
    }
    return dispatch_dims<query_impl<2>, query_impl<3>, query_impl<4>,
                         query_impl<1>>(cli, file);
}

int cmd_decluster(const Cli& cli) {
    std::string file = cli.get_string("file", "");
    if (file.empty()) {
        std::cerr << "decluster requires --file <pgf> [--disks M]\n";
        return 2;
    }
    return dispatch_dims<decluster_impl<2>, decluster_impl<3>,
                         decluster_impl<4>, decluster_impl<1>>(cli, file);
}

}  // namespace

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    if (cli.positional().empty()) return usage();
    const std::string& command = cli.positional().front();
    try {
        if (command == "gen") return cmd_gen(cli);
        if (command == "build") return cmd_build(cli);
        if (command == "buildx") return cmd_buildx(cli);
        if (command == "recover") return cmd_recover(cli);
        if (command == "info") return cmd_info(cli);
        if (command == "query") return cmd_query(cli);
        if (command == "decluster") return cmd_decluster(cli);
        if (command == "partition") return cmd_partition(cli);
        if (command == "validate") return cmd_validate(cli);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
