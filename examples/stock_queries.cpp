// stock_queries — a market-data analyst's workload on a declustered grid
// file: two years of (stock id, price, day) quotes, queried with the kinds
// of ad-hoc range predicates a spatial index makes cheap, e.g. "stocks in
// this id range that traded between $20 and $40 during the spring".
//
// Compares how every declustering algorithm in the library spreads that
// workload over a disk farm.
//
//   $ ./stock_queries [--disks 16] [--records 60000] [--queries 400]
#include <iostream>

#include "pgf/core/declusterer.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    const auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 16));
    const auto records =
        static_cast<std::size_t>(cli.get_int("records", 60000));
    const auto n_queries =
        static_cast<std::size_t>(cli.get_int("queries", 400));

    pgf::Rng rng(5);
    pgf::Dataset<3> ds = pgf::make_stock3d(rng, records);
    pgf::GridFile<3> gf = ds.build();
    std::cout << "loaded " << gf.record_count() << " quotes into "
              << gf.bucket_count() << " buckets\n";

    // One concrete analyst query, answered exactly.
    pgf::Rect<3> spring_mid_caps{{{100.0, 20.0, 120.0}},
                                 {{160.0, 40.0, 180.0}}};
    auto hits = gf.query_records(spring_mid_caps);
    std::cout << "example query [ids 100-160, price $20-$40, days 120-180]: "
              << hits.size() << " quotes from "
              << gf.query_buckets(spring_mid_caps).size() << " buckets\n\n";

    // A workload of square range queries at the paper's r = 0.01.
    pgf::Rng qrng(9);
    auto workload = pgf::collect_query_buckets(
        gf, pgf::square_queries(ds.domain, 0.01, n_queries, qrng));

    pgf::Declusterer declusterer(gf.structure());
    pgf::TextTable table({"method", "avg response", "optimal", "data balance",
                          "closest pairs"});
    for (pgf::Method m : pgf::all_methods()) {
        pgf::DeclusterReport report = declusterer.run(m, disks, {.seed = 21});
        pgf::WorkloadStats stats =
            pgf::evaluate_workload(workload, report.assignment);
        table.add(pgf::to_string(m), pgf::format_double(stats.avg_response),
                  pgf::format_double(stats.optimal),
                  pgf::format_double(report.data_balance),
                  report.closest_pairs);
    }
    table.print(std::cout);
    std::cout << "\n(avg response = mean over " << n_queries
              << " queries of the max buckets fetched from any one of "
              << disks << " disks)\n";
    return 0;
}
