// dsmc_animation — the paper's motivating scenario end to end: a
// time-dependent particle simulation dumps periodic snapshots into a 4-d
// (t, x, y, z) parallel grid file; an analyst then animates the volume,
// which turns into a stream of range queries against a shared-nothing
// cluster.
//
//   $ ./dsmc_animation [--nodes 8] [--snapshots 12] [--particles 20000]
//                      [--ratio 0.1] [--method minimax]
#include <iostream>

#include "pgf/core/declusterer.hpp"
#include "pgf/parallel/pgf_server.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 8));
    const auto snapshots =
        static_cast<std::size_t>(cli.get_int("snapshots", 12));
    const auto particles =
        static_cast<std::size_t>(cli.get_int("particles", 20000));
    const double ratio = cli.get_double("ratio", 0.1);
    const std::string method_name = cli.get_string("method", "minimax");
    auto method = pgf::parse_method(method_name);
    if (!method) {
        std::cerr << "unknown method '" << method_name << "'\n";
        return 1;
    }

    std::cout << "simulating " << snapshots << " DSMC snapshots x "
              << particles << " particles...\n";
    pgf::Rng rng(3);
    pgf::Dataset<4> ds = pgf::make_dsmc4d(rng, snapshots, particles);
    pgf::GridFile<4> gf = ds.build();
    auto shape = gf.grid_shape();
    std::cout << "grid file: " << gf.record_count() << " records, "
              << gf.bucket_count() << " buckets, grid " << shape[0] << "x"
              << shape[1] << "x" << shape[2] << "x" << shape[3] << "\n";

    pgf::Assignment assignment =
        pgf::decluster(gf.structure(), *method, nodes, {.seed = 17});
    pgf::ClusterConfig cfg;
    cfg.nodes = nodes;
    pgf::ParallelGridFileServer<4> server(gf, assignment, cfg);

    auto queries = pgf::animation_queries(ds.domain, snapshots, ratio);
    std::cout << "animating: " << queries.size() << " range queries ("
              << pgf::to_string(*method) << " declustering, " << nodes
              << " nodes)\n";
    pgf::BatchResult r = server.execute(queries);

    pgf::TextTable table({"metric", "value"});
    table.add("queries", r.queries);
    table.add("response blocks (sum of max/disk)", r.response_blocks);
    table.add("total blocks touched", r.total_blocks);
    table.add("records shipped to coordinator", r.records_returned);
    table.add("physical disk reads", r.physical_reads);
    table.add("block cache hits", r.cache_hits);
    table.add("communication time (s)", pgf::format_double(r.comm_time_s));
    table.add("elapsed simulated time (s)", pgf::format_double(r.elapsed_s));
    table.print(std::cout);

    double frames_per_sec =
        static_cast<double>(snapshots) / (r.elapsed_s > 0 ? r.elapsed_s : 1);
    std::cout << "animation rate: " << pgf::format_double(frames_per_sec)
              << " frames/s of simulated wall-clock\n";
    return 0;
}
