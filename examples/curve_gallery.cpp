// curve_gallery — visual intuition for the index-based allocation methods:
// renders, for a small 2-d grid, the disk assigned to every cell by DM, FX
// and each space-filling-curve method, as ASCII maps. Two cells with the
// same character share a disk; a good declustering never gives neighbors
// the same character.
//
//   $ ./curve_gallery [--size 16] [--disks 4]
#include <iostream>

#include "pgf/decluster/index_based.hpp"
#include "pgf/decluster/registry.hpp"
#include "pgf/sfc/curve.hpp"
#include "pgf/util/cli.hpp"

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    const auto size = static_cast<std::uint32_t>(cli.get_int("size", 16));
    const auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 4));

    pgf::GridStructure gs = pgf::make_cartesian_structure(
        {size, size}, {0.0, 0.0},
        {static_cast<double>(size), static_cast<double>(size)});

    for (pgf::Method m : {pgf::Method::kDiskModulo, pgf::Method::kFieldwiseXor,
                          pgf::Method::kHilbert, pgf::Method::kMorton,
                          pgf::Method::kGrayCode, pgf::Method::kScan}) {
        auto cell_disk = pgf::cell_disks(gs, m, disks);
        std::cout << "\n" << pgf::to_string(m) << " on " << disks
                  << " disks (" << size << "x" << size << " cells):\n";
        // Count how often 4-neighbors share a disk — the quality at a
        // glance number.
        std::size_t bad_neighbors = 0, neighbor_pairs = 0;
        for (std::uint32_t y = size; y-- > 0;) {
            for (std::uint32_t x = 0; x < size; ++x) {
                std::uint32_t d = cell_disk[x * size + y];
                std::cout << static_cast<char>(d < 10 ? '0' + d
                                                      : 'a' + (d - 10));
                if (x + 1 < size) {
                    ++neighbor_pairs;
                    bad_neighbors +=
                        d == cell_disk[(x + 1) * size + y] ? 1u : 0u;
                }
                if (y + 1 < size) {
                    ++neighbor_pairs;
                    bad_neighbors += d == cell_disk[x * size + y + 1] ? 1u : 0u;
                }
            }
            std::cout << "\n";
        }
        std::cout << bad_neighbors << "/" << neighbor_pairs
                  << " adjacent cell pairs share a disk\n";
    }

    std::cout << "\nHilbert traversal order (first-order intuition, 8x8):\n";
    std::vector<std::uint32_t> shape{8, 8};
    auto order = pgf::sfc::curve_order(pgf::sfc::CurveKind::kHilbert, shape);
    std::vector<std::size_t> rank(64);
    for (std::size_t r = 0; r < order.size(); ++r) {
        rank[order[r][0] * 8 + order[r][1]] = r;
    }
    for (std::uint32_t y = 8; y-- > 0;) {
        for (std::uint32_t x = 0; x < 8; ++x) {
            std::printf("%3zu", rank[x * 8 + y]);
        }
        std::cout << "\n";
    }
    return 0;
}
