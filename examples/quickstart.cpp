// Quickstart — the whole pgf pipeline in one page:
//   1. generate a multidimensional dataset,
//   2. load it into a grid file,
//   3. decluster the buckets over M disks with the minimax algorithm,
//   4. run a range query and see how the I/O spreads across disks.
//
//   $ ./quickstart [--disks 8] [--points 10000]
#include <iostream>

#include "pgf/core/declusterer.hpp"
#include "pgf/disksim/simulator.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/workload/datasets.hpp"
#include "pgf/workload/query_gen.hpp"

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    const auto disks = static_cast<std::uint32_t>(cli.get_int("disks", 8));
    const auto points = static_cast<std::size_t>(cli.get_int("points", 10000));

    // 1. A skewed synthetic dataset: uniform background + central hot spot.
    pgf::Rng rng(7);
    pgf::Dataset<2> dataset = pgf::make_hotspot2d(rng, points);

    // 2. Load it into a grid file (4 KB buckets).
    pgf::GridFile<2> gf = dataset.build();
    std::cout << "grid file: " << gf.record_count() << " records in "
              << gf.bucket_count() << " buckets ("
              << gf.merged_bucket_count() << " merged), grid "
              << gf.grid_shape()[0] << "x" << gf.grid_shape()[1] << "\n";

    // 3. Decluster with the paper's minimax spanning-tree algorithm.
    pgf::Declusterer declusterer(gf.structure());
    pgf::DeclusterReport report =
        declusterer.run(pgf::Method::kMinimax, disks, {.seed = 42});
    std::cout << "minimax over " << disks
              << " disks: data balance = " << report.data_balance
              << ", closest pairs on one disk = " << report.closest_pairs
              << "\n";

    // 4. One range query: which buckets, on which disks?
    pgf::Rect<2> query{{{800.0, 800.0}}, {{1200.0, 1200.0}}};
    auto buckets = gf.query_buckets(query);
    std::vector<std::size_t> per_disk(disks, 0);
    for (auto b : buckets) ++per_disk[report.assignment.disk_of[b]];
    pgf::TextTable table({"disk", "buckets fetched"});
    for (std::uint32_t d = 0; d < disks; ++d) table.add(d, per_disk[d]);
    table.print(std::cout);
    std::cout << "query touches " << buckets.size() << " buckets; response "
              << "time (max per disk) = "
              << pgf::response_time(buckets, report.assignment)
              << " bucket reads vs " << buckets.size()
              << " if everything sat on one disk\n";

    // Bonus: compare the average response of minimax and disk modulo over a
    // realistic workload.
    pgf::Rng qrng(11);
    auto workload = pgf::collect_query_buckets(
        gf, pgf::square_queries(dataset.domain, 0.05, 300, qrng));
    for (pgf::Method m : {pgf::Method::kDiskModulo, pgf::Method::kMinimax}) {
        auto a = pgf::decluster(gf.structure(), m, disks, {.seed = 42});
        auto stats = pgf::evaluate_workload(workload, a);
        std::cout << pgf::to_string(m) << ": avg response "
                  << pgf::format_double(stats.avg_response)
                  << " buckets (optimal "
                  << pgf::format_double(stats.optimal) << ")\n";
    }
    return 0;
}
