// persistence — build a grid file once, keep it on disk, reload and query:
// the life cycle of a snapshot archive between analysis sessions.
//
//   $ ./persistence [--path /tmp/snapshots.pgf] [--points 20000]
#include <filesystem>
#include <iostream>

#include "pgf/core/declusterer.hpp"
#include "pgf/storage/gridfile_io.hpp"
#include "pgf/util/cli.hpp"
#include "pgf/util/table.hpp"
#include "pgf/workload/datasets.hpp"

int main(int argc, char** argv) {
    pgf::Cli cli(argc, argv);
    const std::string path = cli.get_string(
        "path",
        (std::filesystem::temp_directory_path() / "pgf_example.pgf").string());
    const auto points = static_cast<std::size_t>(cli.get_int("points", 20000));

    // Session 1: ingest a snapshot and persist the whole file.
    {
        pgf::Rng rng(13);
        pgf::Dataset<3> ds = pgf::make_dsmc3d(rng, points);
        pgf::GridFile<3> gf = ds.build();
        std::uint64_t pages = pgf::save_grid_file(gf, path);
        std::cout << "session 1: built " << gf.bucket_count()
                  << " buckets from " << gf.record_count()
                  << " particles, persisted as " << pages << " pages ("
                  << std::filesystem::file_size(path) / 1024 << " KiB) at "
                  << path << "\n";
    }

    // Session 2 (possibly weeks later): reload, decluster, query, extend.
    pgf::GridFile<3> gf = pgf::load_grid_file<3>(path);
    std::cout << "session 2: reloaded " << gf.record_count() << " records, "
              << gf.bucket_count() << " buckets\n";

    pgf::Declusterer dec(gf.structure());
    auto report = dec.run(pgf::Method::kMinimax, 8, {.seed = 99});
    std::cout << "declustered over 8 disks: balance = "
              << pgf::format_double(report.data_balance)
              << ", closest pairs on one disk = " << report.closest_pairs
              << "\n";

    pgf::Rect<3> probe{{{0.40, 0.30, 0.30}}, {{0.60, 0.70, 0.70}}};
    auto hits = gf.query_records(probe);
    std::cout << "probe query around the compression front: " << hits.size()
              << " particles from " << gf.query_buckets(probe).size()
              << " buckets\n";

    // The reloaded file is fully mutable: append a fresh burst of particles
    // and persist again.
    pgf::Rng rng(17);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        gf.insert({{rng.uniform(), rng.uniform(), rng.uniform()}},
                  1000000 + i);
    }
    pgf::save_grid_file(gf, path);
    std::cout << "appended 5000 records and re-persisted ("
              << gf.record_count() << " total)\n";
    std::filesystem::remove(path);
    return 0;
}
