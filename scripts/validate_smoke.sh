#!/usr/bin/env bash
# End-to-end smoke test for `pgfcli validate`.
#
# Usage: scripts/validate_smoke.sh <path-to-pgfcli>
#
# Generates a dataset, builds a grid file, and checks that:
#   1. a healthy file passes a deep audit (exit 0),
#   2. the same file passes a deep paged-backend audit (rebuilds the
#      records disk-backed and runs the page-level checkers, exit 0),
#   3. a complete round-robin assignment passes (exit 0),
#   4. a truncated assignment is flagged as incomplete (exit 1),
#   5. an assignment naming an out-of-range disk is flagged (exit 1),
#   6. a truncated .pgf fails loudly rather than validating (exit != 0),
#   7. an out-of-core streamed build (buildx: external Hilbert sort +
#      pool-bounded bulk load of ${PGF_SMOKE_POINTS:-1000000} points)
#      passes the same deep paged-backend audit as an in-memory build,
#   8. a single flipped byte mid-file trips the page checksum (exit != 0),
#   9. a crash-injected durable build (buildx --wal --crash-after-writes)
#      exits 9 and `pgfcli recover` replays the committed WAL prefix into
#      a deep-audit-clean file — twice, since replay must be idempotent.
set -u

PGFCLI="${1:?usage: validate_smoke.sh <path-to-pgfcli>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/pgf-validate-smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

fail() {
    echo "validate_smoke: FAIL — $1" >&2
    exit 1
}

"${PGFCLI}" gen --dataset hot2d --points 4000 --seed 7 \
    --out "${WORK}/pts.csv" > /dev/null || fail "gen"
"${PGFCLI}" build --input "${WORK}/pts.csv" --out "${WORK}/data.pgf" \
    --capacity 32 > /dev/null || fail "build"

# 1. Healthy file, deepest audit.
"${PGFCLI}" validate --file "${WORK}/data.pgf" --level deep \
    || fail "healthy file did not validate"

# 2. Paged backend: rebuild disk-backed, run the page-level checkers too.
"${PGFCLI}" validate --file "${WORK}/data.pgf" --level deep \
    --backend paged > "${WORK}/paged.out" 2>&1 \
    || fail "healthy file did not validate on the paged backend"
grep -q 'paged backend: rebuilt' "${WORK}/paged.out" \
    || fail "paged validate did not run the page-level checkers"
[ ! -e "${WORK}/data.pgf.paged-validate" ] \
    || fail "paged validate left its staging file behind"

# 3. Complete round-robin assignment over 8 disks.
buckets=$("${PGFCLI}" info --file "${WORK}/data.pgf" \
    | sed -n 's/.*buckets *\([0-9][0-9]*\).*/\1/p' | head -1)
[ -n "${buckets}" ] || fail "could not read bucket count from pgfcli info"
{
    echo "bucket,disk"
    for ((b = 0; b < buckets; ++b)); do echo "${b},$((b % 8))"; done
} > "${WORK}/assign.csv"
"${PGFCLI}" validate --file "${WORK}/data.pgf" --level standard \
    --assignment "${WORK}/assign.csv" --disks 8 \
    || fail "complete assignment did not validate"

# 4. Truncated assignment: the audit must flag it incomplete.
head -n "$((buckets / 2))" "${WORK}/assign.csv" > "${WORK}/short.csv"
if "${PGFCLI}" validate --file "${WORK}/data.pgf" --level standard \
    --assignment "${WORK}/short.csv" --disks 8 > "${WORK}/short.out" 2>&1; then
    fail "truncated assignment validated"
fi
grep -q 'decluster.assignment.incomplete' "${WORK}/short.out" \
    || fail "truncated assignment not reported as incomplete"

# 5. Out-of-range disk id.
sed '2s/,.*/,99/' "${WORK}/assign.csv" > "${WORK}/bad-disk.csv"
if "${PGFCLI}" validate --file "${WORK}/data.pgf" --level standard \
    --assignment "${WORK}/bad-disk.csv" --disks 8 > "${WORK}/bad.out" 2>&1; then
    fail "out-of-range disk validated"
fi
grep -q 'decluster.assignment.disk_range' "${WORK}/bad.out" \
    || fail "out-of-range disk not reported"

# 6. Corrupted (truncated) grid file must not validate.
cp "${WORK}/data.pgf" "${WORK}/corrupt.pgf"
truncate -s -200 "${WORK}/corrupt.pgf"
if "${PGFCLI}" validate --file "${WORK}/corrupt.pgf" > /dev/null 2>&1; then
    fail "truncated grid file validated"
fi

# 7. Out-of-core streamed build at scale, deep-audited on the paged
#    backend. PGF_SMOKE_POINTS shrinks the build for slow (sanitizer)
#    lanes; the default is the acceptance-scale 10^6.
SMOKE_N="${PGF_SMOKE_POINTS:-1000000}"
# --chunk-records below the point count forces several sorted runs, so
# the k-way merge path is exercised, not just a single-run passthrough.
"${PGFCLI}" buildx --dataset uniform2d --points "${SMOKE_N}" --seed 11 \
    --out "${WORK}/stream.pgf" --pool-pages 1024 --chunk-records 65536 \
    > "${WORK}/buildx.out" \
    || fail "buildx (streamed build)"
grep -q 'sorted runs' "${WORK}/buildx.out" \
    || fail "buildx did not report its external-sort stats"
[ ! -e "${WORK}/stream.pgf.staging" ] \
    || fail "buildx left its staging file behind"
"${PGFCLI}" validate --file "${WORK}/stream.pgf" --level deep \
    --backend paged > /dev/null \
    || fail "stream-built file did not pass the deep paged audit"

# 8. One flipped byte mid-file: no length change, no magic change — only
#    the per-page checksum can catch it.
cp "${WORK}/data.pgf" "${WORK}/bitrot.pgf"
size=$(wc -c < "${WORK}/bitrot.pgf")
printf '\xff' | dd of="${WORK}/bitrot.pgf" bs=1 seek="$((size / 2 + 3))" \
    conv=notrunc status=none || fail "could not flip a byte"
if "${PGFCLI}" validate --file "${WORK}/bitrot.pgf" > /dev/null 2>&1; then
    fail "bit-rotted grid file validated"
fi

# 9. Crash-injected durable build, then recovery. The injected crash
#    (exit 9) leaves a torn staging file + WAL; recover must replay the
#    committed prefix and pass a deep audit, and a second recover of the
#    same pair must succeed too (idempotent replay).
"${PGFCLI}" buildx --dataset uniform2d --points 20000 --seed 13 \
    --out "${WORK}/crash.pgf" --pool-pages 64 --chunk-records 4096 \
    --wal "${WORK}/crash.wal" --crash-after-writes 120 \
    > "${WORK}/crash.out" 2>&1
[ $? -eq 9 ] || fail "crash-injected buildx did not exit 9"
grep -q 'crash injected' "${WORK}/crash.out" \
    || fail "crash-injected buildx did not report the injection"
for attempt in 1 2; do
    "${PGFCLI}" recover --file "${WORK}/crash.pgf.staging" \
        --wal "${WORK}/crash.wal" --level deep > "${WORK}/recover.out" \
        || fail "recover attempt ${attempt} failed"
done
grep -q 'recover: OK' "${WORK}/recover.out" \
    || fail "recover did not report a clean deep audit"

echo "validate_smoke: OK"
