#!/usr/bin/env bash
# Rebuilds the repository, runs the full test suite, and regenerates every
# paper table/figure (plus ablations and extensions) into results/.
#
#   scripts/reproduce.sh            # reduced SP-2 scale (laptop friendly)
#   PGF_FULL_SCALE=1 scripts/reproduce.sh   # the paper's 59x~51k records
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  case "$name" in
    lib*) continue ;;
    micro_benchmarks) "$b" | tee "results/$name.txt" ;;
    *) "$b" --csv-dir results | tee "results/$name.txt" ;;
  esac
done

echo
echo "Done. Text outputs and CSV series are in results/;"
echo "EXPERIMENTS.md maps every file to its paper table or figure."
