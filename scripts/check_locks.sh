#!/usr/bin/env bash
# Lock-discipline gate for the pgf library.
#
# Usage: scripts/check_locks.sh
#
# Complements the Clang -Wthread-safety build (see PGF_THREAD_SAFETY in
# CMakeLists.txt and the clang-threadsafety CI job) with textual checks the
# capability analysis cannot express:
#
#   1. Raw standard-library synchronization primitives must not appear in
#      src/ outside pgf/util/annotations.hpp. A raw std::mutex is invisible
#      to the analysis — everything must latch through pgf::Mutex /
#      pgf::MutexLock so every acquisition is capability-checked.
#      (std::condition_variable stays allowed: waits go through
#      MutexLock::wait, which the wrapper owns.)
#
#   2. Every file declaring a pgf::Mutex member must annotate at least one
#      member with PGF_GUARDED_BY — a latch that guards nothing is either
#      dead or undocumented.
#
#   3. The named shared-state classes (ThreadPool, BuildCache, BufferPool,
#      SweepRunner) keep their specific invariant annotations — the
#      acceptance bar of the thread-safety refactor. This catches an edit
#      that quietly drops an annotation on a gcc-only box where the macros
#      compile to nothing.
#
# Exits non-zero on the first class of violation found; runs anywhere (no
# compiler needed), so it is cheap enough for every CI lane.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
wrapper='src/include/pgf/util/annotations.hpp'

# -- 1. raw primitives confined to the annotated wrappers --------------------
raw_re='std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b'
offenders=$(grep -rnE --include='*.hpp' --include='*.cpp' "${raw_re}" src \
            | grep -v "^${wrapper}:" || true)
if [ -n "${offenders}" ]; then
    echo "check_locks.sh: raw synchronization primitives outside ${wrapper}:" >&2
    echo "${offenders}" >&2
    echo "check_locks.sh: use pgf::Mutex / pgf::MutexLock (capability-annotated)." >&2
    fail=1
fi

# -- 2. every Mutex member guards something ----------------------------------
mutex_files=$(grep -rlE --include='*.hpp' --include='*.cpp' \
              '\bMutex [A-Za-z_]+_( |;|\t)' src | grep -v "^${wrapper}$" || true)
for f in ${mutex_files}; do
    if ! grep -q 'PGF_GUARDED_BY' "${f}"; then
        echo "check_locks.sh: ${f} declares a pgf::Mutex member but no" \
             "PGF_GUARDED_BY annotation — what does the latch guard?" >&2
        fail=1
    fi
done

# -- 3. the named shared-state classes stay fully annotated ------------------
require() {
    local file="$1" pattern="$2" what="$3"
    if ! grep -qE "${pattern}" "${file}"; then
        echo "check_locks.sh: ${file}: missing annotation: ${what}" \
             "(expected /${pattern}/)" >&2
        fail=1
    fi
}

tp='src/include/pgf/util/thread_pool.hpp'
require "${tp}" 'task_ PGF_GUARDED_BY\(mutex_\)'       'ThreadPool::task_ guarded by mutex_'
require "${tp}" 'shutdown_ PGF_GUARDED_BY\(mutex_\)'   'ThreadPool::shutdown_ guarded by mutex_'
require "${tp}" 'submit_mutex_ PGF_ACQUIRED_BEFORE\(mutex_\)' 'ThreadPool lock ordering'

bc='src/include/pgf/core/build_cache.hpp'
require "${bc}" 'PGF_GUARDED_BY\(mutex_\)'             'BuildCache entries_/stats_ guarded by mutex_'

bp='src/include/pgf/storage/buffer_pool.hpp'
require "${bp}" 'frames_ PGF_GUARDED_BY\(latch_\)'     'BufferPool::frames_ guarded by latch_'
require "${bp}" 'PGF_GUARDED_BY\(latch_\);  // page -> frame' 'BufferPool::table_ guarded by latch_'
require "${bp}" 'policy_ PGF_GUARDED_BY\(latch_\)'     'BufferPool::policy_ guarded by latch_'
require "${bp}" 'prefetch_clock_ PGF_GUARDED_BY\(latch_\)' 'BufferPool::prefetch_clock_ guarded'
require "${bp}" 'grab_frame\(\) PGF_REQUIRES\(latch_\)' 'BufferPool::grab_frame requires latch_'

# Replacement policies run entirely under the pool's latch, expressed as a
# capability-by-parameter: every Replacer hook (4 base virtuals + the 4
# overrides in each of the 4 policies = 20 declarations) must demand the
# caller-held latch via PGF_REQUIRES(latch).
rp='src/include/pgf/storage/replacement.hpp'
require "${rp}" 'Mutex& latch\b'                       'Replacer hooks take the pool latch by parameter'
requires_count=$(grep -cE 'PGF_REQUIRES\(latch\)' "${rp}" || true)
if [ "${requires_count}" -lt 20 ]; then
    echo "check_locks.sh: ${rp}: only ${requires_count} PGF_REQUIRES(latch)" \
         "annotations (expected >= 20 — every Replacer hook and override)." >&2
    fail=1
fi

# The write-ahead log's append buffer and LSN bookkeeping live under its
# own latch; the buffer pool enforces WAL-before-data by flushing the log
# up to a dirty page's LSN before every write-back (eviction and
# flush_all). Losing either the annotations or the ordering calls silently
# voids the recovery guarantee on gcc-only boxes.
wal='src/include/pgf/storage/wal.hpp'
require "${wal}" 'buf_ PGF_GUARDED_BY\(latch_\)'        'WriteAheadLog::buf_ guarded by latch_'
require "${wal}" 'last_lsn_ PGF_GUARDED_BY\(latch_\)'   'WriteAheadLog::last_lsn_ guarded by latch_'
require "${wal}" 'flush_locked\(\) PGF_REQUIRES\(latch_\)' 'WriteAheadLog::flush_locked requires latch_'
bpc='src/storage/buffer_pool.cpp'
ordering_count=$(grep -cE 'wal_->flush_up_to\(' "${bpc}" || true)
if [ "${ordering_count}" -lt 2 ]; then
    echo "check_locks.sh: ${bpc}: only ${ordering_count} wal_->flush_up_to" \
         "call(s) (expected >= 2 — WAL-before-data on both the eviction" \
         "and the flush_all write-back paths)." >&2
    fail=1
fi

sw='src/include/pgf/core/sweep.hpp'
require "${sw}" 'last_ PGF_GUARDED_BY\(stats_mutex_\)' 'SweepRunner::last_ guarded by stats_mutex_'
require "${sw}" 'total_wall_ms_ PGF_GUARDED_BY\(stats_mutex_\)' 'SweepRunner::total_wall_ms_ guarded'

bq='src/include/pgf/util/bounded_queue.hpp'
require "${bq}" 'items_ PGF_GUARDED_BY\(mutex_\)'      'BoundedMpmcQueue::items_ guarded by mutex_'
require "${bq}" 'closed_ PGF_GUARDED_BY\(mutex_\)'     'BoundedMpmcQueue::closed_ guarded by mutex_'

qe='src/include/pgf/parallel/query_engine.hpp'
require "${qe}" 'PGF_GUARDED_BY\(stats_mutex_\)'       'QueryEngine batch state guarded by stats_mutex_'
require "${qe}" 'submitted_ PGF_GUARDED_BY\(stats_mutex_\)' 'QueryEngine::submitted_ guarded'
require "${qe}" 'completed_ PGF_GUARDED_BY\(stats_mutex_\)' 'QueryEngine::completed_ guarded'
require "${qe}" 'latencies_ms_ PGF_GUARDED_BY\(stats_mutex_\)' 'QueryEngine::latencies_ms_ guarded'

if [ "${fail}" -ne 0 ]; then
    echo "check_locks.sh: FAILED — see findings above." >&2
    exit 1
fi
echo "check_locks.sh: clean (raw primitives confined, shared state annotated)."
