#!/usr/bin/env bash
# clang-tidy gate over the library sources.
#
# Usage: scripts/run_tidy.sh [build-dir]
#
# Configures (if needed) a build tree with compile_commands.json, then runs
# clang-tidy with the repo-root .clang-tidy over every translation unit
# under src/. WarningsAsErrors='*' in .clang-tidy makes any finding fatal,
# so this script exits non-zero on the first diagnostic — CI treats that as
# a failed gate.
#
# When clang-tidy is not installed (e.g. a gcc-only container) the gate is
# skipped with exit 0 and a loud notice, so the script stays usable as an
# unconditional CI step: install clang-tidy to arm it.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "${TIDY}" ]; then
    for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                     clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "${candidate}" > /dev/null 2>&1; then
            TIDY="${candidate}"
            break
        fi
    done
fi
if [ -z "${TIDY}" ]; then
    echo "run_tidy.sh: clang-tidy not found — SKIPPING the tidy gate." >&2
    echo "run_tidy.sh: install clang-tidy (or set CLANG_TIDY) to arm it." >&2
    exit 0
fi

BUILD_DIR="${1:-build-tidy}"
if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    cmake -B "${BUILD_DIR}" -S . \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DPGF_BUILD_TESTS=OFF -DPGF_BUILD_BENCH=OFF -DPGF_BUILD_EXAMPLES=OFF \
        > /dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_tidy.sh: ${TIDY} over ${#sources[@]} files in src/ (database: ${BUILD_DIR})"

# Run in modest batches so diagnostics stream out as they are found.
status=0
"${TIDY}" -p "${BUILD_DIR}" --quiet "${sources[@]}" || status=$?
if [ "${status}" -ne 0 ]; then
    echo "run_tidy.sh: clang-tidy reported findings (exit ${status})." >&2
    exit "${status}"
fi
echo "run_tidy.sh: clean."
