#include "pgf/decluster/conflict.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pgf/util/check.hpp"

namespace pgf {
namespace {

/// Structure with `merged` buckets of one cell-strip each plus filler
/// single-cell buckets, handy for exercising the heuristics directly.
GridStructure strip_structure(std::uint32_t strips, std::uint32_t cols) {
    GridStructure gs;
    gs.shape = {strips, cols};
    gs.domain_lo = {0.0, 0.0};
    gs.domain_hi = {static_cast<double>(strips), static_cast<double>(cols)};
    for (std::uint32_t i = 0; i < strips; ++i) {
        BucketInfo b;
        b.cell_lo = {i, 0};
        b.cell_hi = {i + 1, cols};
        b.region_lo = {static_cast<double>(i), 0.0};
        b.region_hi = {static_cast<double>(i) + 1.0,
                       static_cast<double>(cols)};
        b.record_count = 1;
        gs.buckets.push_back(std::move(b));
    }
    gs.validate();
    return gs;
}

CandidateSet singleton(std::uint32_t d) { return {{d}, {1}}; }

TEST(ResolveConflicts, SingletonsKeepTheirDisk) {
    auto gs = strip_structure(3, 1);
    std::vector<CandidateSet> cands{singleton(2), singleton(0), singleton(1)};
    Rng rng(1);
    for (auto h : {ConflictHeuristic::kRandom, ConflictHeuristic::kMostFrequent,
                   ConflictHeuristic::kDataBalance,
                   ConflictHeuristic::kAreaBalance}) {
        Assignment a = resolve_conflicts(gs, cands, 3, h, rng);
        EXPECT_EQ(a.disk_of, (std::vector<std::uint32_t>{2, 0, 1}))
            << to_string(h);
    }
}

TEST(ResolveConflicts, ResultAlwaysWithinCandidates) {
    auto gs = strip_structure(4, 3);
    std::vector<CandidateSet> cands{
        {{0, 1}, {2, 1}}, {{1, 2}, {1, 2}}, {{0, 2}, {1, 1}}, {{2}, {3}}};
    Rng rng(7);
    for (auto h : {ConflictHeuristic::kRandom, ConflictHeuristic::kMostFrequent,
                   ConflictHeuristic::kDataBalance,
                   ConflictHeuristic::kAreaBalance}) {
        Assignment a = resolve_conflicts(gs, cands, 3, h, rng);
        for (std::size_t b = 0; b < cands.size(); ++b) {
            EXPECT_TRUE(std::find(cands[b].disks.begin(), cands[b].disks.end(),
                                  a.disk_of[b]) != cands[b].disks.end())
                << to_string(h) << " bucket " << b;
        }
    }
}

TEST(ResolveConflicts, MostFrequentPicksHighestMultiplicity) {
    auto gs = strip_structure(1, 4);
    std::vector<CandidateSet> cands{{{0, 3}, {3, 1}}};
    Rng rng(3);
    Assignment a = resolve_conflicts(gs, cands, 4,
                                     ConflictHeuristic::kMostFrequent, rng);
    EXPECT_EQ(a.disk_of[0], 0u);  // multiplicity 3 beats 1
}

TEST(ResolveConflicts, MostFrequentBreaksTiesWithinTiedSet) {
    auto gs = strip_structure(1, 4);
    std::vector<CandidateSet> cands{{{1, 2}, {2, 2}}};
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        Assignment a = resolve_conflicts(
            gs, cands, 4, ConflictHeuristic::kMostFrequent, rng);
        EXPECT_TRUE(a.disk_of[0] == 1 || a.disk_of[0] == 2);
    }
}

TEST(ResolveConflicts, DataBalanceAlgorithm1Order) {
    // Algorithm 1: singletons commit first, then conflicting buckets pick
    // the least-loaded candidate in bucket order.
    auto gs = strip_structure(4, 2);
    std::vector<CandidateSet> cands{
        singleton(0),          // load(0) = 1
        singleton(0),          // load(0) = 2
        {{0, 1}, {1, 1}},      // picks 1 (load 0 < 2)
        {{0, 1}, {1, 1}},      // picks 1 (load 1 < 2)
    };
    Rng rng(5);
    Assignment a = resolve_conflicts(gs, cands, 2,
                                     ConflictHeuristic::kDataBalance, rng);
    EXPECT_EQ(a.disk_of, (std::vector<std::uint32_t>{0, 0, 1, 1}));
}

TEST(ResolveConflicts, DataBalanceTieGoesToLowerDisk) {
    auto gs = strip_structure(1, 2);
    std::vector<CandidateSet> cands{{{1, 2}, {1, 1}}};
    Rng rng(5);
    Assignment a = resolve_conflicts(gs, cands, 3,
                                     ConflictHeuristic::kDataBalance, rng);
    EXPECT_EQ(a.disk_of[0], 1u);
}

TEST(ResolveConflicts, AreaBalanceWeighsVolume) {
    // Bucket 0 (singleton, disk 0) is huge; the conflicting bucket must
    // avoid disk 0 under area balance even though counts favor neither.
    GridStructure gs;
    gs.shape = {2, 1};
    gs.domain_lo = {0.0, 0.0};
    gs.domain_hi = {10.0, 1.0};
    BucketInfo big;
    big.cell_lo = {0, 0};
    big.cell_hi = {1, 1};
    big.region_lo = {0.0, 0.0};
    big.region_hi = {9.0, 1.0};  // volume 9
    BucketInfo small;
    small.cell_lo = {1, 0};
    small.cell_hi = {2, 1};
    small.region_lo = {9.0, 0.0};
    small.region_hi = {10.0, 1.0};  // volume 1
    gs.buckets = {big, small};
    gs.validate();
    std::vector<CandidateSet> cands{singleton(0), {{0, 1}, {1, 1}}};
    Rng rng(9);
    Assignment area = resolve_conflicts(gs, cands, 2,
                                        ConflictHeuristic::kAreaBalance, rng);
    EXPECT_EQ(area.disk_of[1], 1u);
}

TEST(ResolveConflicts, RandomIsSeedDeterministic) {
    auto gs = strip_structure(6, 3);
    std::vector<CandidateSet> cands(6, CandidateSet{{0, 1, 2}, {1, 1, 1}});
    Rng r1(42), r2(42), r3(43);
    auto a1 = resolve_conflicts(gs, cands, 3, ConflictHeuristic::kRandom, r1);
    auto a2 = resolve_conflicts(gs, cands, 3, ConflictHeuristic::kRandom, r2);
    auto a3 = resolve_conflicts(gs, cands, 3, ConflictHeuristic::kRandom, r3);
    EXPECT_EQ(a1.disk_of, a2.disk_of);
    EXPECT_NE(a1.disk_of, a3.disk_of);  // overwhelmingly likely for 6 picks
}

TEST(ResolveConflicts, RejectsMalformedInput) {
    auto gs = strip_structure(2, 1);
    std::vector<CandidateSet> too_few{singleton(0)};
    Rng rng(1);
    EXPECT_THROW(resolve_conflicts(gs, too_few, 2,
                                   ConflictHeuristic::kDataBalance, rng),
                 CheckError);
    std::vector<CandidateSet> empty_set{singleton(0), CandidateSet{}};
    EXPECT_THROW(resolve_conflicts(gs, empty_set, 2,
                                   ConflictHeuristic::kDataBalance, rng),
                 CheckError);
}

TEST(DeclusterIndexBased, EndToEndOnCartesianMatchesCellDisks) {
    // On a Cartesian structure there are no conflicts: the assignment must
    // equal the per-cell mapping regardless of heuristic.
    auto gs = make_cartesian_structure({6, 6}, {0, 0}, {1, 1});
    Rng rng(11);
    auto direct = cell_disks(gs, Method::kFieldwiseXor, 4);
    Assignment a = decluster_index_based(gs, Method::kFieldwiseXor, 4,
                                         ConflictHeuristic::kRandom, rng);
    for (std::size_t b = 0; b < gs.bucket_count(); ++b) {
        EXPECT_EQ(a.disk_of[b], direct[b]);
    }
}

}  // namespace
}  // namespace pgf
