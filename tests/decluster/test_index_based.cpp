#include "pgf/decluster/index_based.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pgf/gridfile/grid_file.hpp"
#include "pgf/sfc/curve.hpp"
#include "pgf/util/check.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

GridStructure cartesian(std::uint32_t nx, std::uint32_t ny) {
    return make_cartesian_structure({nx, ny}, {0.0, 0.0},
                                    {static_cast<double>(nx),
                                     static_cast<double>(ny)});
}

TEST(CellDisks, DiskModuloFormula) {
    auto gs = cartesian(4, 4);
    auto disks = cell_disks(gs, Method::kDiskModulo, 3);
    // Cell (i, j) flattened row-major at i*4+j must be (i+j) mod 3.
    for (std::uint32_t i = 0; i < 4; ++i) {
        for (std::uint32_t j = 0; j < 4; ++j) {
            EXPECT_EQ(disks[i * 4 + j], (i + j) % 3) << i << "," << j;
        }
    }
}

TEST(CellDisks, FieldwiseXorFormula) {
    auto gs = cartesian(8, 8);
    auto disks = cell_disks(gs, Method::kFieldwiseXor, 4);
    for (std::uint32_t i = 0; i < 8; ++i) {
        for (std::uint32_t j = 0; j < 8; ++j) {
            EXPECT_EQ(disks[i * 8 + j], (i ^ j) % 4);
        }
    }
}

TEST(CellDisks, ThreeDimensionalFormulas) {
    auto gs = make_cartesian_structure({2, 3, 2}, {0, 0, 0}, {1, 1, 1});
    auto dm = cell_disks(gs, Method::kDiskModulo, 5);
    auto fx = cell_disks(gs, Method::kFieldwiseXor, 5);
    std::size_t flat = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
        for (std::uint32_t j = 0; j < 3; ++j) {
            for (std::uint32_t k = 0; k < 2; ++k, ++flat) {
                EXPECT_EQ(dm[flat], (i + j + k) % 5);
                EXPECT_EQ(fx[flat], (i ^ j ^ k) % 5);
            }
        }
    }
}

TEST(CellDisks, CurveMethodsAreStrictRoundRobin) {
    // On any grid (power-of-two or not), sorting cells along the curve must
    // give disks 0,1,2,...,M-1,0,1,... — i.e. each disk gets either
    // floor(C/M) or ceil(C/M) cells.
    auto gs = make_cartesian_structure({5, 3}, {0, 0}, {1, 1});
    for (Method m : {Method::kHilbert, Method::kMorton, Method::kGrayCode,
                     Method::kScan}) {
        auto disks = cell_disks(gs, m, 4);
        std::array<std::size_t, 4> count{};
        for (auto d : disks) ++count[d];
        for (auto c : count) {
            EXPECT_GE(c, 15u / 4);
            EXPECT_LE(c, (15u + 3) / 4);
        }
    }
}

TEST(CellDisks, HilbertNeighborsOnCurveGetConsecutiveDisks) {
    auto gs = cartesian(8, 8);
    auto disks = cell_disks(gs, Method::kHilbert, 5);
    // Walk the Hilbert order; the disk sequence must cycle 0..4.
    auto order = sfc::curve_order(sfc::CurveKind::kHilbert,
                                  std::vector<std::uint32_t>{8, 8});
    for (std::size_t r = 0; r < order.size(); ++r) {
        std::uint64_t flat = order[r][0] * 8 + order[r][1];
        EXPECT_EQ(disks[flat], r % 5);
    }
}

TEST(CellDisks, RejectsNonIndexMethodsAndZeroDisks) {
    auto gs = cartesian(2, 2);
    EXPECT_THROW(cell_disks(gs, Method::kMinimax, 4), CheckError);
    EXPECT_THROW(cell_disks(gs, Method::kSsp, 4), CheckError);
    EXPECT_THROW(cell_disks(gs, Method::kDiskModulo, 0), CheckError);
}

TEST(BucketCandidates, SingleCellBucketsHaveSingletons) {
    auto gs = cartesian(4, 4);
    auto cands = index_candidates(gs, Method::kDiskModulo, 3);
    ASSERT_EQ(cands.size(), 16u);
    for (const auto& cs : cands) {
        EXPECT_EQ(cs.disks.size(), 1u);
        EXPECT_EQ(cs.counts[0], 1u);
        EXPECT_FALSE(cs.conflicting());
    }
}

TEST(BucketCandidates, MergedBucketCollectsAllCellDisks) {
    // Build a structure with one merged bucket covering a 1x3 strip.
    GridStructure gs;
    gs.shape = {1, 3};
    gs.domain_lo = {0.0, 0.0};
    gs.domain_hi = {1.0, 3.0};
    BucketInfo b;
    b.cell_lo = {0, 0};
    b.cell_hi = {1, 3};
    b.region_lo = {0.0, 0.0};
    b.region_hi = {1.0, 3.0};
    gs.buckets.push_back(b);
    gs.validate();
    // DM on 3 disks assigns cells (0,0),(0,1),(0,2) to disks 0,1,2.
    auto cands = index_candidates(gs, Method::kDiskModulo, 3);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].disks, (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(cands[0].counts, (std::vector<std::uint32_t>{1, 1, 1}));
    EXPECT_TRUE(cands[0].conflicting());
}

TEST(BucketCandidates, MultiplicitiesAreCorrect) {
    // 2x2 merged bucket under DM with M=2: diagonal cells agree.
    GridStructure gs;
    gs.shape = {2, 2};
    gs.domain_lo = {0.0, 0.0};
    gs.domain_hi = {2.0, 2.0};
    BucketInfo b;
    b.cell_lo = {0, 0};
    b.cell_hi = {2, 2};
    b.region_lo = {0.0, 0.0};
    b.region_hi = {2.0, 2.0};
    gs.buckets.push_back(b);
    auto cands = index_candidates(gs, Method::kDiskModulo, 2);
    // Cells: (0,0)->0, (0,1)->1, (1,0)->1, (1,1)->0.
    EXPECT_EQ(cands[0].disks, (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(cands[0].counts, (std::vector<std::uint32_t>{2, 2}));
}

TEST(BucketCandidates, RealGridFileCandidatesCoverAllBuckets) {
    Rng rng(5);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 4;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < 500; ++i) {
        gf.insert({{rng.uniform() * rng.uniform(), rng.uniform()}}, i);
    }
    GridStructure gs = gf.structure();
    for (Method m : {Method::kDiskModulo, Method::kFieldwiseXor,
                     Method::kHilbert}) {
        auto cands = index_candidates(gs, m, 7);
        ASSERT_EQ(cands.size(), gs.bucket_count());
        for (std::size_t b = 0; b < cands.size(); ++b) {
            ASSERT_FALSE(cands[b].disks.empty());
            // Distinct disks never exceed the bucket's cell count or M.
            EXPECT_LE(cands[b].disks.size(),
                      std::min<std::uint64_t>(gs.buckets[b].cell_count(), 7));
            // Counts sum to the cell count.
            std::uint64_t sum = 0;
            for (auto c : cands[b].counts) sum += c;
            EXPECT_EQ(sum, gs.buckets[b].cell_count());
            // Disks sorted and unique.
            std::set<std::uint32_t> unique(cands[b].disks.begin(),
                                           cands[b].disks.end());
            EXPECT_EQ(unique.size(), cands[b].disks.size());
        }
    }
}

TEST(BucketCandidates, MismatchedCellDiskVectorThrows) {
    auto gs = cartesian(2, 2);
    std::vector<std::uint32_t> wrong(3, 0);
    EXPECT_THROW(bucket_candidates(gs, wrong), CheckError);
}

}  // namespace
}  // namespace pgf
