#include "pgf/decluster/minimax.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pgf/disksim/metrics.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

GridStructure grid_structure(std::uint64_t seed, std::size_t n_points,
                             std::size_t capacity = 5) {
    Rng rng(seed);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = capacity;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < n_points; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    return gf.structure();
}

// Balance guarantee of Algorithm 2: ceil(N/M) per disk, swept over M.
class MinimaxBalance : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MinimaxBalance, PerfectBalanceForEveryM) {
    const std::uint32_t m = GetParam();
    GridStructure gs = grid_structure(101, 600);
    Assignment a = minimax_decluster(gs, m, {.seed = 9});
    ASSERT_EQ(a.disk_of.size(), gs.bucket_count());
    auto load = a.load();
    const std::size_t n = gs.bucket_count();
    const std::size_t cap = (n + m - 1) / m;
    for (std::uint32_t d = 0; d < m; ++d) {
        EXPECT_LE(load[d], cap) << "disk " << d << " with M=" << m;
    }
    // The degree of data balance must be (essentially) perfect.
    EXPECT_LE(degree_of_data_balance(a),
              static_cast<double>(cap) * m / static_cast<double>(n) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DiskSweep, MinimaxBalance,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u, 31u,
                                           32u));

TEST(Minimax, DeterministicForEqualSeeds) {
    GridStructure gs = grid_structure(5, 400);
    Assignment a = minimax_decluster(gs, 8, {.seed = 77});
    Assignment b = minimax_decluster(gs, 8, {.seed = 77});
    EXPECT_EQ(a.disk_of, b.disk_of);
    Assignment c = minimax_decluster(gs, 8, {.seed = 78});
    EXPECT_NE(a.disk_of, c.disk_of);
}

TEST(Minimax, HandlesMoreDisksThanBuckets) {
    GridStructure gs = grid_structure(7, 20, 8);
    const auto n = static_cast<std::uint32_t>(gs.bucket_count());
    Assignment a = minimax_decluster(gs, n + 10, {.seed = 3});
    auto load = a.load();
    for (std::size_t d = 0; d < load.size(); ++d) {
        EXPECT_LE(load[d], 1u);
    }
}

TEST(Minimax, SingleDiskPutsEverythingOnDiskZero) {
    GridStructure gs = grid_structure(9, 100);
    Assignment a = minimax_decluster(gs, 1, {});
    for (auto d : a.disk_of) EXPECT_EQ(d, 0u);
}

TEST(Minimax, SeparatesNearestNeighborsAlmostAlways) {
    // The paper's Tables 2-3 property: the number of closest pairs on the
    // same disk is (near) zero for minimax.
    GridStructure gs = grid_structure(13, 800);
    Assignment a = minimax_decluster(gs, 8, {.seed = 5});
    std::size_t same = closest_pairs_same_disk(gs, a);
    // Tolerate a couple of unlucky pairs, mirroring the paper's "rarely
    // above zero".
    EXPECT_LE(same, 3u) << "of " << gs.bucket_count() << " buckets";
}

TEST(Minimax, BeatsRoundRobinScanOnClusteredData) {
    // Quality check: total same-disk proximity of minimax must be well
    // below that of a naive bucket-id round-robin.
    GridStructure gs = grid_structure(17, 700);
    BucketWeights w(gs);
    Assignment mm = minimax_decluster(gs, 6, {.seed = 21});
    Assignment rr;
    rr.num_disks = 6;
    rr.disk_of.resize(gs.bucket_count());
    for (std::size_t b = 0; b < gs.bucket_count(); ++b) {
        rr.disk_of[b] = static_cast<std::uint32_t>(b % 6);
    }
    EXPECT_LT(closest_pairs_same_disk(gs, mm),
              closest_pairs_same_disk(gs, rr) + 1);
}

TEST(MinimaxPartition, RoundRobinAssignmentOrderMatchesAlgorithm2) {
    // Hand-traced instance: 4 collinear points, 2 disks, cost = closeness.
    // Seeds fixed by choosing a crafted cost functor and checking the
    // invariant that the two closest points never share a disk.
    auto cost = [](std::size_t i, std::size_t j) {
        double d = std::abs(static_cast<double>(i) - static_cast<double>(j));
        return 1.0 / (1.0 + d);
    };
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        auto disks = minimax_partition(4, 2, cost, rng);
        ASSERT_EQ(disks.size(), 4u);
        // Balance: exactly two per disk.
        int zero = 0;
        for (auto d : disks) zero += d == 0 ? 1 : 0;
        EXPECT_EQ(zero, 2);
        // Neighbors 0-1 and 2-3 are each other's closest pairs; at least
        // one of the two must be separated (both, for most seeds).
        EXPECT_TRUE(disks[0] != disks[1] || disks[2] != disks[3]);
    }
}

TEST(MinimaxPartition, EmptyAndTrivialInputs) {
    auto unit = [](std::size_t, std::size_t) { return 1.0; };
    Rng rng(1);
    EXPECT_TRUE(minimax_partition(0, 4, unit, rng).empty());
    auto one = minimax_partition(1, 4, unit, rng);
    EXPECT_EQ(one, (std::vector<std::uint32_t>{0}));
    EXPECT_THROW(minimax_partition(3, 0, unit, rng), CheckError);
}

TEST(Minimax, FarthestFirstSeedingAlsoBalanced) {
    GridStructure gs = grid_structure(23, 500);
    MinimaxOptions opt;
    opt.seed = 4;
    opt.seeding = MinimaxSeeding::kFarthestFirst;
    Assignment a = minimax_decluster(gs, 10, opt);
    auto load = a.load();
    std::size_t cap = (gs.bucket_count() + 9) / 10;
    for (auto l : load) EXPECT_LE(l, cap);
}

TEST(Minimax, EuclideanWeightVariantRuns) {
    GridStructure gs = grid_structure(29, 300);
    MinimaxOptions opt;
    opt.weight = WeightKind::kCenterSimilarity;
    Assignment a = minimax_decluster(gs, 5, opt);
    EXPECT_EQ(a.disk_of.size(), gs.bucket_count());
    auto load = a.load();
    std::size_t cap = (gs.bucket_count() + 4) / 5;
    for (auto l : load) EXPECT_LE(l, cap);
}

TEST(Minimax, ParallelResultsBitIdenticalToSerial) {
    // The thread-pool variant chunks the O(N^2) sweeps; the assignment must
    // not depend on the pool or its size (deterministic reductions). Use a
    // structure above the parallel threshold (>= 2048 buckets).
    Rng data_rng(41);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 3;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < 6000; ++i) {
        gf.insert({{data_rng.uniform(), data_rng.uniform()}}, i);
    }
    GridStructure gs = gf.structure();
    ASSERT_GE(gs.bucket_count(), 2048u);

    MinimaxOptions serial_opt;
    serial_opt.seed = 77;
    Assignment serial = minimax_decluster(gs, 16, serial_opt);
    for (unsigned threads : {1u, 3u, 8u}) {
        ThreadPool pool(threads);
        MinimaxOptions par_opt;
        par_opt.seed = 77;
        par_opt.pool = &pool;
        Assignment parallel = minimax_decluster(gs, 16, par_opt);
        ASSERT_EQ(parallel.disk_of, serial.disk_of)
            << threads << " worker threads";
    }
}

TEST(Minimax, ClusterSpreadProperty) {
    // Nine tight clusters of 4 buckets each (via 4 duplicate-ish points per
    // cluster region): with M=4, every cluster should be spread over all 4
    // disks by minimax.
    Rng rng(31);
    Rect<2> domain{{{0.0, 0.0}}, {{3.0, 3.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 2;
    GridFile<2> gf(domain, cfg);
    std::uint64_t id = 0;
    for (int cx = 0; cx < 3; ++cx) {
        for (int cy = 0; cy < 3; ++cy) {
            for (int k = 0; k < 8; ++k) {
                gf.insert({{cx + 0.4 + 0.2 * rng.uniform(),
                            cy + 0.4 + 0.2 * rng.uniform()}},
                          id++);
            }
        }
    }
    GridStructure gs = gf.structure();
    Assignment a = minimax_decluster(gs, 4, {.seed = 2});
    // Closest-pair separation should be high-quality. The paper itself
    // reports a handful of same-disk closest pairs at M=4 (Table 2: 10 of
    // 444 buckets), so demand "few", not zero, at this tiny scale.
    EXPECT_LE(closest_pairs_same_disk(gs, a),
              gs.bucket_count() / 4);
}

}  // namespace
}  // namespace pgf
