#include "pgf/decluster/similarity.hpp"

#include <gtest/gtest.h>

#include "pgf/decluster/weights.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

GridStructure grid_structure(std::uint64_t seed, std::size_t n_points) {
    Rng rng(seed);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 5;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < n_points; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    return gf.structure();
}

TEST(Ssp, PerfectlyBalanced) {
    GridStructure gs = grid_structure(3, 500);
    for (std::uint32_t m : {2u, 3u, 5u, 8u, 16u}) {
        Assignment a = ssp_decluster(gs, m, {.seed = 1});
        auto load = a.load();
        std::size_t cap = (gs.bucket_count() + m - 1) / m;
        for (auto l : load) EXPECT_LE(l, cap) << "M=" << m;
    }
}

TEST(Ssp, DeterministicPerSeed) {
    GridStructure gs = grid_structure(5, 300);
    Assignment a = ssp_decluster(gs, 4, {.seed = 10});
    Assignment b = ssp_decluster(gs, 4, {.seed = 10});
    EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST(Ssp, PathNeighborsLandOnDifferentDisks) {
    // Path positions are dealt round-robin, so for M >= 2 any two buckets
    // adjacent on the spanning path differ in disk; spot-check via the
    // closest-pair metric being much lower than random.
    GridStructure gs = grid_structure(7, 600);
    Assignment ssp = ssp_decluster(gs, 8, {.seed = 3});
    Rng rng(99);
    Assignment random;
    random.num_disks = 8;
    random.disk_of.resize(gs.bucket_count());
    for (auto& d : random.disk_of) d = rng.below(8);
    EXPECT_LT(closest_pairs_same_disk(gs, ssp),
              closest_pairs_same_disk(gs, random));
}

TEST(Ssp, SingleDiskAndSingleBucket) {
    GridStructure gs = grid_structure(9, 300);
    Assignment one = ssp_decluster(gs, 1, {});
    for (auto d : one.disk_of) EXPECT_EQ(d, 0u);
    auto tiny = make_cartesian_structure({1, 1}, {0, 0}, {1, 1});
    Assignment a = ssp_decluster(tiny, 4, {});
    EXPECT_EQ(a.disk_of.size(), 1u);
    EXPECT_EQ(a.disk_of[0], 0u);
}

TEST(Mst, SeparatesParentChildPairs) {
    GridStructure gs = grid_structure(11, 400);
    Assignment a = mst_decluster(gs, 4, {.seed = 6});
    // The defining property: low closest-pair count (parent in the
    // max-similarity tree is usually the nearest neighbor).
    Rng rng(1);
    Assignment random;
    random.num_disks = 4;
    random.disk_of.resize(gs.bucket_count());
    for (auto& d : random.disk_of) d = rng.below(4);
    EXPECT_LT(closest_pairs_same_disk(gs, a),
              closest_pairs_same_disk(gs, random));
}

TEST(Mst, BalanceNotGuaranteedButBounded) {
    GridStructure gs = grid_structure(13, 500);
    Assignment a = mst_decluster(gs, 6, {.seed = 2});
    auto load = a.load();
    std::size_t total = 0;
    for (auto l : load) total += l;
    EXPECT_EQ(total, gs.bucket_count());
    // Every disk is used (cyclic cursor guarantees coverage for n >> M).
    for (auto l : load) EXPECT_GT(l, 0u);
}

TEST(Mst, SingleDiskDegenerate) {
    GridStructure gs = grid_structure(17, 200);
    Assignment a = mst_decluster(gs, 1, {});
    for (auto d : a.disk_of) EXPECT_EQ(d, 0u);
}

TEST(SimilarityGraph, PerfectlyBalanced) {
    GridStructure gs = grid_structure(31, 500);
    for (std::uint32_t m : {2u, 4u, 8u}) {
        Assignment a = similarity_graph_decluster(gs, m, {.seed = 2});
        auto load = a.load();
        std::size_t cap = (gs.bucket_count() + m - 1) / m;
        for (auto l : load) EXPECT_LE(l, cap) << "M=" << m;
    }
}

TEST(SimilarityGraph, RefinementBeatsItsRandomStart) {
    // With zero KL passes the result is the balanced random partition;
    // the refined partition must separate closest pairs strictly better.
    GridStructure gs = grid_structure(37, 600);
    Assignment raw = similarity_graph_decluster(gs, 8, {.seed = 4},
                                                /*max_passes=*/0);
    Assignment refined = similarity_graph_decluster(gs, 8, {.seed = 4});
    EXPECT_LT(closest_pairs_same_disk(gs, refined),
              closest_pairs_same_disk(gs, raw));
}

TEST(SimilarityGraph, DeterministicPerSeed) {
    GridStructure gs = grid_structure(41, 300);
    Assignment a = similarity_graph_decluster(gs, 5, {.seed = 9});
    Assignment b = similarity_graph_decluster(gs, 5, {.seed = 9});
    EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST(SimilarityGraph, SingleDiskDegenerate) {
    GridStructure gs = grid_structure(43, 100);
    Assignment a = similarity_graph_decluster(gs, 1, {});
    for (auto d : a.disk_of) EXPECT_EQ(d, 0u);
}

TEST(SimilarityMethods, RejectZeroDisks) {
    GridStructure gs = grid_structure(19, 100);
    EXPECT_THROW(ssp_decluster(gs, 0, {}), CheckError);
    EXPECT_THROW(mst_decluster(gs, 0, {}), CheckError);
    EXPECT_THROW(similarity_graph_decluster(gs, 0, {}), CheckError);
}

TEST(SimilarityMethods, EuclideanWeightVariant) {
    GridStructure gs = grid_structure(23, 300);
    SimilarityOptions opt;
    opt.weight = WeightKind::kCenterSimilarity;
    Assignment s = ssp_decluster(gs, 4, opt);
    Assignment m = mst_decluster(gs, 4, opt);
    EXPECT_EQ(s.disk_of.size(), gs.bucket_count());
    EXPECT_EQ(m.disk_of.size(), gs.bucket_count());
}

}  // namespace
}  // namespace pgf
