#include "pgf/decluster/online.hpp"

#include <gtest/gtest.h>

#include "pgf/decluster/minimax.hpp"
#include "pgf/disksim/metrics.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

GridStructure grid_structure(std::uint64_t seed, std::size_t n_points) {
    Rng rng(seed);
    Rect<2> domain{{{0.0, 0.0}}, {{1.0, 1.0}}};
    GridFile<2> gf(domain, {.bucket_capacity = 5});
    for (std::uint64_t i = 0; i < n_points; ++i) {
        gf.insert({{rng.uniform(), rng.uniform()}}, i);
    }
    return gf.structure();
}

/// Streams every bucket of `gs` through an OnlineMinimax in id order.
Assignment stream_all(const GridStructure& gs, std::uint32_t m) {
    OnlineMinimax online(gs.domain_lo, gs.domain_hi, m);
    Assignment a;
    a.num_disks = m;
    a.disk_of.reserve(gs.bucket_count());
    for (const auto& b : gs.buckets) {
        a.disk_of.push_back(online.place(b));
    }
    return a;
}

TEST(OnlineMinimax, BalanceCapHoldsAtEveryPrefix) {
    GridStructure gs = grid_structure(3, 600);
    const std::uint32_t m = 7;
    OnlineMinimax online(gs.domain_lo, gs.domain_hi, m);
    for (std::size_t n = 0; n < gs.bucket_count(); ++n) {
        online.place(gs.buckets[n]);
        std::size_t cap = (n + 1 + m - 1) / m;
        for (std::uint32_t d = 0; d < m; ++d) {
            ASSERT_LE(online.load()[d], cap) << "after " << n + 1;
        }
    }
    EXPECT_EQ(online.placed(), gs.bucket_count());
}

TEST(OnlineMinimax, FirstPlacementsFillEmptyDisksFirst) {
    GridStructure gs = grid_structure(5, 200);
    OnlineMinimax online(gs.domain_lo, gs.domain_hi, 4);
    std::set<std::uint32_t> used;
    for (std::size_t b = 0; b < 4; ++b) {
        used.insert(online.place(gs.buckets[b]));
    }
    // Empty disks have weight 0, the global minimum, so the first M
    // buckets land on M distinct disks.
    EXPECT_EQ(used.size(), 4u);
}

TEST(OnlineMinimax, QualityCloseToOffline) {
    GridStructure gs = grid_structure(7, 800);
    const std::uint32_t m = 8;
    Assignment online = stream_all(gs, m);
    Assignment offline = minimax_decluster(gs, m, {.seed = 3});
    std::size_t cp_online = closest_pairs_same_disk(gs, online);
    std::size_t cp_offline = closest_pairs_same_disk(gs, offline);
    // Streaming loses some freedom but must stay in the same quality
    // regime (paper-scale offline numbers are near zero).
    EXPECT_LE(cp_online, cp_offline + gs.bucket_count() / 20);
}

TEST(OnlineMinimax, SeededFromExistingAssignmentExtendsIt) {
    GridStructure gs = grid_structure(9, 500);
    const std::uint32_t m = 6;
    Assignment offline = minimax_decluster(gs, m, {.seed = 5});
    OnlineMinimax online(gs, offline);
    EXPECT_EQ(online.placed(), gs.bucket_count());
    auto before = online.load();
    // Place a few synthetic new buckets (as if splits created them).
    Rng rng(11);
    for (int k = 0; k < 30; ++k) {
        double x = rng.uniform(0.0, 0.9), y = rng.uniform(0.0, 0.9);
        std::uint32_t d = online.place({x, y}, {x + 0.05, y + 0.05});
        ASSERT_LT(d, m);
    }
    std::size_t cap = (gs.bucket_count() + 30 + m - 1) / m;
    for (std::uint32_t d = 0; d < m; ++d) {
        EXPECT_LE(online.load()[d], cap);
        EXPECT_GE(online.load()[d], before[d]);
    }
}

TEST(OnlineMinimax, AvoidsTheDiskOfAnIdenticalRegion) {
    OnlineMinimax online({0.0, 0.0}, {1.0, 1.0}, 3);
    std::uint32_t first = online.place({0.1, 0.1}, {0.2, 0.2});
    // The same region again must go to a different disk (max proximity to
    // its twin is maximal).
    std::uint32_t second = online.place({0.1, 0.1}, {0.2, 0.2});
    EXPECT_NE(first, second);
}

TEST(OnlineMinimax, DeterministicPlacement) {
    GridStructure gs = grid_structure(13, 300);
    Assignment a = stream_all(gs, 5);
    Assignment b = stream_all(gs, 5);
    EXPECT_EQ(a.disk_of, b.disk_of);
}

TEST(OnlineMinimax, RejectsMalformedInput) {
    EXPECT_THROW(OnlineMinimax({0.0}, {1.0}, 0), CheckError);
    EXPECT_THROW(OnlineMinimax({0.0, 0.0}, {1.0}, 2), CheckError);
    EXPECT_THROW(OnlineMinimax({0.0}, {0.0}, 2), CheckError);
    OnlineMinimax ok({0.0, 0.0}, {1.0, 1.0}, 2);
    EXPECT_THROW(ok.place({0.1}, {0.2}), CheckError);
    GridStructure gs = grid_structure(15, 100);
    Assignment short_a;
    short_a.num_disks = 2;
    short_a.disk_of.assign(1, 0);
    EXPECT_THROW(OnlineMinimax(gs, short_a), CheckError);
}

TEST(OnlineMinimax, EuclideanWeightVariant) {
    GridStructure gs = grid_structure(17, 300);
    OnlineMinimax online(gs.domain_lo, gs.domain_hi, 4,
                         WeightKind::kCenterSimilarity);
    for (const auto& b : gs.buckets) online.place(b);
    std::size_t cap = (gs.bucket_count() + 3) / 4;
    for (auto l : online.load()) EXPECT_LE(l, cap);
}

}  // namespace
}  // namespace pgf
