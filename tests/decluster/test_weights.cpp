#include "pgf/decluster/weights.hpp"

#include <gtest/gtest.h>

#include "pgf/geom/proximity.hpp"
#include "pgf/gridfile/grid_file.hpp"
#include "pgf/util/rng.hpp"

namespace pgf {
namespace {

/// Rebuilds Rect<2>s from a structure bucket for the reference formulas.
Rect<2> rect_of(const BucketInfo& b) {
    return Rect<2>{{{b.region_lo[0], b.region_lo[1]}},
                   {{b.region_hi[0], b.region_hi[1]}}};
}

GridStructure random_structure(std::uint64_t seed, std::size_t n_points) {
    Rng rng(seed);
    Rect<2> domain{{{0.0, 0.0}}, {{100.0, 50.0}}};
    GridFile<2>::Config cfg;
    cfg.bucket_capacity = 4;
    GridFile<2> gf(domain, cfg);
    for (std::uint64_t i = 0; i < n_points; ++i) {
        gf.insert({{rng.uniform(0.0, 100.0), rng.uniform(0.0, 50.0)}}, i);
    }
    return gf.structure();
}

TEST(BucketWeights, MatchesProximityIndexExactly) {
    GridStructure gs = random_structure(3, 400);
    BucketWeights w(gs, WeightKind::kProximityIndex);
    Rect<2> domain{{{0.0, 0.0}}, {{100.0, 50.0}}};
    ASSERT_EQ(w.size(), gs.bucket_count());
    for (std::size_t i = 0; i < gs.bucket_count(); i += 3) {
        for (std::size_t j = 0; j < gs.bucket_count(); j += 5) {
            double expected = proximity_index(rect_of(gs.buckets[i]),
                                              rect_of(gs.buckets[j]), domain);
            ASSERT_DOUBLE_EQ(w(i, j), expected) << i << "," << j;
        }
    }
}

TEST(BucketWeights, MatchesCenterSimilarityExactly) {
    GridStructure gs = random_structure(7, 300);
    BucketWeights w(gs, WeightKind::kCenterSimilarity);
    Rect<2> domain{{{0.0, 0.0}}, {{100.0, 50.0}}};
    for (std::size_t i = 0; i < gs.bucket_count(); i += 4) {
        for (std::size_t j = 0; j < gs.bucket_count(); j += 7) {
            double expected = center_similarity(rect_of(gs.buckets[i]),
                                                rect_of(gs.buckets[j]), domain);
            ASSERT_NEAR(w(i, j), expected, 1e-12);
        }
    }
}

TEST(BucketWeights, SymmetricPositiveBounded) {
    GridStructure gs = random_structure(11, 500);
    for (WeightKind kind : {WeightKind::kProximityIndex,
                            WeightKind::kCenterSimilarity}) {
        BucketWeights w(gs, kind);
        for (std::size_t i = 0; i < w.size(); i += 6) {
            for (std::size_t j = i; j < w.size(); j += 9) {
                double v = w(i, j);
                ASSERT_DOUBLE_EQ(v, w(j, i));
                ASSERT_GT(v, 0.0);
                ASSERT_LE(v, 1.0);
            }
        }
    }
}

TEST(BucketWeights, SelfWeightDominatesRow) {
    GridStructure gs = random_structure(13, 350);
    BucketWeights w(gs, WeightKind::kProximityIndex);
    for (std::size_t i = 0; i < w.size(); i += 5) {
        for (std::size_t j = 0; j < w.size(); ++j) {
            if (j != i) {
                ASSERT_GE(w(i, i), w(i, j));
            }
        }
    }
}

/// Asserts every batched entry point (fill_row, fill_row_range over an
/// uneven sub-range, fill_tile) reproduces operator() bit-for-bit. EXPECT_EQ
/// on doubles is exact comparison — that is the contract, not a tolerance.
void expect_kernels_bit_equal(const GridStructure& gs, WeightKind kind) {
    BucketWeights w(gs, kind);
    const std::size_t n = w.size();
    ASSERT_GE(n, 2u);
    std::vector<double> row(n);
    for (std::size_t i = 0; i < n; ++i) {
        w.fill_row(i, row.data());
        for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(row[j], w(i, j)) << "row " << i << ", col " << j;
        }
    }
    // Sub-range with offsets that don't align to anything.
    const std::size_t begin = 1, end = n - 1;
    std::vector<double> part(end - begin);
    w.fill_row_range(0, begin, end, part.data());
    for (std::size_t j = begin; j < end; ++j) {
        ASSERT_EQ(part[j - begin], w(0, j));
    }
    // A tile crossing the interior.
    const std::size_t r0 = 0, r1 = std::min<std::size_t>(n, 5);
    std::vector<double> tile((r1 - r0) * (end - begin));
    w.fill_tile(r0, r1, begin, end, tile.data());
    for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t j = begin; j < end; ++j) {
            ASSERT_EQ(tile[(r - r0) * (end - begin) + (j - begin)], w(r, j))
                << "tile row " << r << ", col " << j;
        }
    }
}

TEST(BucketWeightsKernels, BitEqual2d) {
    GridStructure gs = random_structure(17, 400);
    expect_kernels_bit_equal(gs, WeightKind::kProximityIndex);
    expect_kernels_bit_equal(gs, WeightKind::kCenterSimilarity);
}

TEST(BucketWeightsKernels, BitEqual3d) {
    auto gs = make_cartesian_structure({6, 6, 6}, {0.0, 0.0, 0.0},
                                       {60.0, 30.0, 12.0});
    expect_kernels_bit_equal(gs, WeightKind::kProximityIndex);
    expect_kernels_bit_equal(gs, WeightKind::kCenterSimilarity);
}

TEST(BucketWeightsKernels, BitEqual4d) {
    auto gs = make_cartesian_structure({4, 4, 4, 4}, {0.0, 0.0, 0.0, 0.0},
                                       {16.0, 8.0, 4.0, 2.0});
    expect_kernels_bit_equal(gs, WeightKind::kProximityIndex);
    expect_kernels_bit_equal(gs, WeightKind::kCenterSimilarity);
}

TEST(BucketWeightsKernels, BitEqualGenericDimsFallback) {
    // D = 5 exercises the runtime-dims kernel instead of the unrolled ones.
    auto gs = make_cartesian_structure({3, 3, 3, 3, 3},
                                       {0.0, 0.0, 0.0, 0.0, 0.0},
                                       {9.0, 6.0, 3.0, 3.0, 3.0});
    expect_kernels_bit_equal(gs, WeightKind::kProximityIndex);
    expect_kernels_bit_equal(gs, WeightKind::kCenterSimilarity);
}

TEST(BucketWeightsKernels, NegatedViewIsExactNegation) {
    GridStructure gs = random_structure(19, 300);
    BucketWeights w(gs);
    NegatedBucketWeights neg(w);
    ASSERT_EQ(neg.size(), w.size());
    std::vector<double> row(w.size());
    for (std::size_t i = 0; i < w.size(); i += 3) {
        neg.fill_row_range(i, 0, w.size(), row.data());
        for (std::size_t j = 0; j < w.size(); ++j) {
            ASSERT_EQ(neg(i, j), -w(i, j));
            ASSERT_EQ(row[j], -w(i, j));
        }
    }
}

TEST(BucketWeights, AdjacentBucketsOutweighDistantOnes) {
    // Cartesian structure: neighbor (0,1) of bucket (0,0) must be closer
    // than the far corner.
    auto gs = make_cartesian_structure({8, 8}, {0.0, 0.0}, {8.0, 8.0});
    BucketWeights w(gs);
    std::size_t origin = 0;        // cell (0,0)
    std::size_t neighbor = 1;      // cell (0,1)
    std::size_t corner = 63;       // cell (7,7)
    EXPECT_GT(w(origin, neighbor), w(origin, corner));
}

}  // namespace
}  // namespace pgf
